//! Criterion timings behind **Table 2**: hierarchical vs flat analysis
//! of partitioned ISCAS-like circuits.
//!
//! The paper's observation at these sizes: flat analysis is fast enough
//! that hierarchical analysis does not always win on CPU — its
//! advantage is scalability (false-path analysis runs on single leaf
//! modules instead of the whole circuit).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfta_bench::{build_iscas_like, IscasLike};
use hfta_core::{DemandDrivenAnalyzer, DemandOptions};
use hfta_fta::DelayAnalyzer;
use hfta_netlist::partition::cascade_bipartition_min_cut;
use hfta_netlist::Time;

fn bench_iscas_like(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_iscas_like");
    group.sample_size(10);
    for (gates, seed) in [(160usize, 432u64), (383, 880)] {
        let w = IscasLike {
            name: format!("c{seed}_like"),
            gates,
            seed,
        };
        let flat = build_iscas_like(&w);
        let design = cascade_bipartition_min_cut(&flat, 0.25, 0.75).expect("partitions");
        let top = format!("{}_top", w.name);
        let arrivals = vec![Time::ZERO; flat.inputs().len()];

        group.bench_with_input(BenchmarkId::new("hier_demand", gates), &gates, |b, _| {
            b.iter(|| {
                let mut an = DemandDrivenAnalyzer::new(&design, &top, DemandOptions::default())
                    .expect("valid");
                an.analyze(&arrivals).expect("analyzes").delay
            });
        });
        group.bench_with_input(BenchmarkId::new("flat_xbd0", gates), &gates, |b, _| {
            b.iter(|| {
                let mut an = DelayAnalyzer::new_sat(&flat, &arrivals).expect("valid");
                an.circuit_delay()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iscas_like);
criterion_main!(benches);
