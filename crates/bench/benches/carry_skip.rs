//! Criterion timings behind **Table 1**: hierarchical (demand-driven)
//! vs flat vs topological analysis of carry-skip adder cascades.
//!
//! The paper's claim: on regular hierarchical circuits the flat
//! analyzer's cost explodes with size while hierarchical analysis
//! amortizes one block characterization across all instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfta_core::{DemandDrivenAnalyzer, DemandOptions};
use hfta_fta::{DelayAnalyzer, TopoSta};
use hfta_netlist::gen::carry_skip_adder;
use hfta_netlist::Time;

fn bench_carry_skip(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_carry_skip");
    group.sample_size(10);
    for bits in [8usize, 16, 32] {
        let name = format!("csa{bits}.2");
        let design = carry_skip_adder(bits, 2, Default::default());
        let flat = design.flatten(&name).expect("flattens");
        let arrivals = vec![Time::ZERO; 2 * bits + 1];

        group.bench_with_input(BenchmarkId::new("hier_demand", bits), &bits, |b, _| {
            b.iter(|| {
                let mut an = DemandDrivenAnalyzer::new(&design, &name, DemandOptions::default())
                    .expect("valid");
                an.analyze(&arrivals).expect("analyzes").delay
            });
        });
        group.bench_with_input(BenchmarkId::new("flat_xbd0", bits), &bits, |b, _| {
            b.iter(|| {
                let mut an = DelayAnalyzer::new_sat(&flat, &arrivals).expect("valid");
                an.circuit_delay()
            });
        });
        group.bench_with_input(BenchmarkId::new("topological", bits), &bits, |b, _| {
            b.iter(|| {
                let sta = TopoSta::new(&flat).expect("valid");
                sta.circuit_delay(&arrivals)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_carry_skip);
criterion_main!(benches);
