//! Regenerates **Table 2** of the paper: timing analysis of ISCAS
//! circuits partitioned into two-module cascades, hierarchical vs flat.
//!
//! The original ISCAS-85 netlists are substituted by seeded ISCAS-like
//! random logic with matching gate counts (see DESIGN.md). Paper's
//! claims to reproduce: accuracy preserved well with occasional small
//! overestimation (only *local* false paths are visible to the
//! hierarchical analysis), and hierarchical CPU can exceed flat CPU at
//! these modest sizes.
//!
//! Run with: `cargo run --release -p hfta-bench --bin table2`

use hfta_bench::{table2_row, table2_workloads, Row};

fn main() {
    println!("Table 2: partitioned ISCAS-like circuits — hierarchical vs flat\n");
    Row::print_header();
    let mut exact = 0usize;
    let mut over = 0usize;
    let mut total = 0usize;
    for w in table2_workloads() {
        let row = table2_row(&w);
        row.print();
        assert!(row.hier_delay >= row.flat_delay, "Theorem 1 violated");
        assert!(row.hier_delay <= row.topological, "worse than topological");
        total += 1;
        if row.hier_delay == row.flat_delay {
            exact += 1;
        } else {
            over += 1;
        }
    }
    println!();
    println!("rows with accuracy fully preserved: {exact}/{total}");
    println!("rows with (small, conservative) overestimation: {over}/{total}");
    println!("(global false paths spanning both modules are invisible to hierarchical");
    println!(" analysis — the paper reports the same occasional overestimation)");
}
