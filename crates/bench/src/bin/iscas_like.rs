//! Timings behind **Table 2**: hierarchical vs flat analysis of
//! partitioned ISCAS-like circuits.
//!
//! The paper's observation at these sizes: flat analysis is fast enough
//! that hierarchical analysis does not always win on CPU — its
//! advantage is scalability (false-path analysis runs on single leaf
//! modules instead of the whole circuit).
//!
//! Run with `cargo run --release -p hfta-bench --bin iscas_like`; see
//! [`hfta_testkit::Harness`] for the environment knobs.

use hfta_bench::{build_iscas_like, IscasLike};
use hfta_core::{DemandDrivenAnalyzer, DemandOptions};
use hfta_fta::DelayAnalyzer;
use hfta_netlist::partition::cascade_bipartition_min_cut;
use hfta_netlist::Time;
use hfta_testkit::Harness;

fn main() {
    let mut harness = Harness::new("iscas_like");
    {
        let mut group = harness.group("table2_iscas_like");
        for (gates, seed) in [(160usize, 432u64), (383, 880)] {
            let w = IscasLike {
                name: format!("c{seed}_like"),
                gates,
                seed,
            };
            let flat = build_iscas_like(&w);
            let design = cascade_bipartition_min_cut(&flat, 0.25, 0.75).expect("partitions");
            let top = format!("{}_top", w.name);
            let arrivals = vec![Time::ZERO; flat.inputs().len()];

            group.bench(&format!("hier_demand/{gates}"), || {
                let mut an = DemandDrivenAnalyzer::new(&design, &top, DemandOptions::default())
                    .expect("valid");
                an.analyze(&arrivals).expect("analyzes").delay
            });
            group.bench(&format!("flat_xbd0/{gates}"), || {
                let mut an = DelayAnalyzer::new_sat(&flat, &arrivals).expect("valid");
                an.circuit_delay()
            });
        }
    }
    harness.finish();
}
