//! Regenerates **Table 1** of the paper: timing analysis of carry-skip
//! adders, hierarchical (demand-driven, Section 5) vs flat.
//!
//! Paper's claims to reproduce: estimated accuracy fully preserved
//! (hier == flat, both below topological), and significant CPU savings
//! for hierarchical analysis on these regular circuits.
//!
//! Run with: `cargo run --release -p hfta-bench --bin table1`

use hfta_bench::{table1_configs, table1_row, Row};

fn main() {
    println!("Table 1: carry-skip adders — hierarchical vs flat (all inputs at t = 0)\n");
    Row::print_header();
    let mut preserved = true;
    let mut speedups = Vec::new();
    for cfg in table1_configs() {
        let row = table1_row(&cfg);
        row.print();
        preserved &= row.hier_delay == row.flat_delay;
        if row.hier_cpu.as_secs_f64() > 0.0 {
            speedups.push(row.flat_cpu.as_secs_f64() / row.hier_cpu.as_secs_f64().max(1e-9));
        }
    }
    println!();
    println!(
        "accuracy fully preserved: {}",
        if preserved {
            "yes (hier == flat on every row)"
        } else {
            "NO"
        }
    );
    let gm = geometric_mean(&speedups);
    println!("geometric-mean CPU ratio flat/hier: {gm:.1}x");
}

fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}
