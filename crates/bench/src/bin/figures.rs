//! Regenerates the data behind the paper's **Figures 1–5**.
//!
//! * Figures 1–2 are circuit schematics — their structural generators
//!   are exercised and summarized here.
//! * Figure 3: the timing model `T_cout` of the 2-bit block as a
//!   "polygon" (one effective delay per input).
//! * Figure 4: stacked-polygon propagation through the 4-bit cascade
//!   (arrival series at tmp and c4), plus the parametric series
//!   `delay(c_{2n}) = 2n + 6` checked against flat analysis.
//! * Figure 5: the block under `arr(c_in)=5`, others 0 — delay 8,
//!   functional slack(c_in) = +1 vs topological −3.
//!
//! Run with: `cargo run --release -p hfta-bench --bin figures`

use hfta_core::{CharacterizeOptions, HierAnalyzer, HierOptions, ModelSource, ModuleTiming};
use hfta_fta::DelayAnalyzer;
use hfta_netlist::gen::{carry_skip_adder, carry_skip_adder_flat, carry_skip_block, CsaDelays};
use hfta_netlist::Time;

fn t(v: i64) -> Time {
    Time::new(v)
}

fn main() {
    let delays = CsaDelays::default();

    // Figures 1–2: the circuits themselves.
    let block = carry_skip_block(2, delays);
    println!(
        "Figure 1: 2-bit carry-skip adder block — {} gates, ports ({} in, {} out)",
        block.gate_count(),
        block.inputs().len(),
        block.outputs().len()
    );
    let cascade = carry_skip_adder(4, 2, delays);
    let flat4 = cascade.flatten("csa4.2").expect("flattens");
    println!(
        "Figure 2: 4-bit cascade of two blocks — {} gates flat\n",
        flat4.gate_count()
    );

    // Figure 3: T_cout polygon.
    let timing = ModuleTiming::characterize(
        &block,
        ModelSource::Functional,
        CharacterizeOptions::default(),
    )
    .expect("characterizes");
    println!("Figure 3: timing model T_cout (effective delay per input):");
    let t_cout = timing.model(2);
    for (name, &d) in timing.input_names().iter().zip(t_cout.tuples()[0].delays()) {
        println!("  {name:<5} {d}");
    }
    println!();

    // Figure 4: stacked propagation, all inputs at 0.
    let mut hier = HierAnalyzer::new(&cascade, "csa4.2", HierOptions::default()).expect("valid");
    let analysis = hier.analyze(&[t(0); 9]).expect("analyzes");
    let top = cascade.composite("csa4.2").expect("exists");
    let tmp = top.find_net("c2").expect("exists");
    let c4 = top.find_net("c4").expect("exists");
    println!(
        "Figure 4: arrival(tmp) = {}, arrival(c4) = {}",
        analysis.net_arrivals[tmp.index()],
        analysis.net_arrivals[c4.index()]
    );

    println!("\nparametric series: delay of the last carry, n cascaded 2-bit blocks");
    println!("  n | hier | flat | 2n+6");
    for blocks in 1usize..=8 {
        let bits = 2 * blocks;
        let name = format!("csa{bits}.2");
        let design = carry_skip_adder(bits, 2, delays);
        let mut hier = HierAnalyzer::new(&design, &name, HierOptions::default()).expect("valid");
        let analysis = hier.analyze(&vec![t(0); 2 * bits + 1]).expect("analyzes");
        let topc = design.composite(&name).expect("exists");
        let carry = topc.find_net(&format!("c{bits}")).expect("exists");
        let hier_carry = analysis.net_arrivals[carry.index()];

        let flat = carry_skip_adder_flat(bits, 2, delays).expect("flattens");
        let mut an = DelayAnalyzer::new_sat(&flat, &vec![t(0); 2 * bits + 1]).expect("valid");
        let flat_carry = an.output_arrival(flat.find_net(&format!("c{bits}")).expect("exists"));
        let formula = t(2 * blocks as i64 + 6);
        println!("  {blocks} | {hier_carry:>4} | {flat_carry:>4} | {formula:>4}");
        assert_eq!(hier_carry, formula);
        assert_eq!(flat_carry, formula);
    }

    // Figure 5: skewed arrivals and the slack of c_in.
    println!("\nFigure 5: arr(c_in)=5, other inputs 0");
    let arrivals = vec![t(5), t(0), t(0), t(0), t(0)];
    let stable = t_cout.stable_time(&arrivals);
    let mut flat_an = DelayAnalyzer::new_sat(&block, &arrivals).expect("valid");
    let flat_stable = flat_an.output_arrival(block.find_net("c_out").expect("exists"));
    println!("  delay(c_out): hierarchical model {stable}, flat {flat_stable}");
    let func_slack = t_cout.input_slack(&arrivals, stable, 0);
    let topo = ModuleTiming::characterize(
        &block,
        ModelSource::Topological,
        CharacterizeOptions::default(),
    )
    .expect("characterizes");
    let topo_slack = topo.model(2).input_slack(&arrivals, stable, 0);
    println!("  slack(c_in): functional {func_slack}, topological {topo_slack}");
    assert_eq!(stable, t(8));
    assert_eq!(flat_stable, t(8));
    assert_eq!(func_slack, t(1));
    assert_eq!(topo_slack, t(-3));
    println!("\nAll figure data reproduced.");
}
