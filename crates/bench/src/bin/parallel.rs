//! Parallel-scaling benchmark on the large generated modular design.
//!
//! Measures hierarchical (step-1 characterization) and demand-driven
//! analysis at 1/2/4/8 threads on the ~100k-gate layered design from
//! [`hfta_netlist::gen::modular_design`], asserting every parallel
//! result equals the serial one. The thread clamp stays ON for the
//! `*_t{n}` cases — on a box with fewer cores than requested the pool
//! is never built, because oversubscribing cores is exactly the
//! regression this bench guards against (the medians then record
//! honest serial parity, not fantasy speedups). The `*_t4_forced`
//! cases disable the clamp and inject a real 4-worker pool regardless
//! of core count, so the work-stealing path itself is exercised (and
//! its determinism asserted) even on a 1-core CI runner; they are not
//! part of the CI gate.
//!
//! Pools are built once, outside the timed closures: worker spawning is
//! a per-process cost, not a per-analysis one.
//!
//! Run with `cargo run --release -p hfta-bench --bin parallel`; see
//! [`hfta_testkit::Harness`] for the environment knobs. Setting
//! `HFTA_PARALLEL_SMOKE` shrinks the design (fewer leaf flavors, fewer
//! instances) to a seconds-long pass for `scripts/check.sh` and CI,
//! whose `trajectory_gate` asserts parallel medians never regress past
//! serial ones.

use hfta_core::{DemandDrivenAnalyzer, DemandOptions, HierAnalyzer, HierOptions, Scheduler};
use hfta_netlist::gen::{modular_design, ModularDesignSpec};
use hfta_netlist::{Design, Time};
use hfta_sched::effective_parallelism;
use hfta_testkit::Harness;

const THREAD_STEPS: [usize; 4] = [1, 2, 4, 8];

fn spec() -> ModularDesignSpec {
    if std::env::var_os("HFTA_PARALLEL_SMOKE").is_some() {
        // Characterization cost scales with flavors, so the smoke
        // workload shrinks those, not just the instance count.
        ModularDesignSpec {
            flavors: 4,
            instances: 100,
            gates_per_module: 60,
            layers: 6,
            seed: 98,
            mix: Default::default(),
        }
    } else {
        ModularDesignSpec::sized(100_000, 98)
    }
}

/// A clamped pool for `threads`: `None` when the machine cannot
/// actually run that wide (the analysis then takes its serial path).
fn clamped_pool(threads: usize) -> Option<Scheduler> {
    Some(effective_parallelism(threads, true))
        .filter(|&e| e > 1 && threads > 1)
        .map(Scheduler::new)
}

fn case_id(kind: &str, threads: usize) -> String {
    if threads == 1 {
        format!("{kind}_serial")
    } else {
        format!("{kind}_t{threads}")
    }
}

fn bench_hier(
    harness: &mut Harness,
    design: &Design,
    top: &str,
    arrivals: &[Time],
    serial_delay: Time,
) {
    let mut group = harness.group("parallel_scaling");
    for threads in THREAD_STEPS {
        let pool = clamped_pool(threads);
        let opts = HierOptions::default().with_threads(threads);
        group.bench_at_least(&case_id("hier", threads), 3, || {
            let mut an = HierAnalyzer::new(design, top, opts).expect("valid");
            if let Some(p) = &pool {
                an.set_scheduler(p.clone());
            }
            let r = an.analyze(arrivals).expect("analyzes");
            assert_eq!(
                r.delay, serial_delay,
                "hier t{threads} diverged from serial"
            );
            r.delay
        });
    }
    // Forced-pool case: 4 genuine workers even on a narrower machine.
    let pool = Scheduler::new(4);
    let opts = HierOptions::default()
        .with_threads(4)
        .with_thread_clamp(false);
    group.bench_at_least("hier_t4_forced", 3, || {
        let mut an = HierAnalyzer::new(design, top, opts).expect("valid");
        an.set_scheduler(pool.clone());
        let r = an.analyze(arrivals).expect("analyzes");
        assert_eq!(
            r.delay, serial_delay,
            "forced hier pool diverged from serial"
        );
        r.delay
    });
}

fn bench_demand(
    harness: &mut Harness,
    design: &Design,
    top: &str,
    arrivals: &[Time],
    serial_delay: Time,
) {
    let mut group = harness.group("parallel_scaling");
    for threads in THREAD_STEPS {
        // One analyzer per thread count, built and warmed outside the
        // timed closure; iterations measure steady-state refinement.
        let opts = DemandOptions::default().with_threads(threads);
        let mut an = DemandDrivenAnalyzer::new(design, top, opts).expect("valid");
        if let Some(p) = clamped_pool(threads) {
            an.set_scheduler(p);
        }
        group.bench_at_least(&case_id("demand", threads), 3, || {
            an.reset_refinement();
            let r = an.analyze(arrivals).expect("analyzes");
            assert_eq!(
                r.delay, serial_delay,
                "demand t{threads} diverged from serial"
            );
            r.delay
        });
    }
    let opts = DemandOptions::default()
        .with_threads(4)
        .with_thread_clamp(false);
    let mut an = DemandDrivenAnalyzer::new(design, top, opts).expect("valid");
    an.set_scheduler(Scheduler::new(4));
    group.bench_at_least("demand_t4_forced", 3, || {
        an.reset_refinement();
        let r = an.analyze(arrivals).expect("analyzes");
        assert_eq!(
            r.delay, serial_delay,
            "forced demand pool diverged from serial"
        );
        r.delay
    });
}

fn main() {
    let spec = spec();
    let design = modular_design(spec);
    let top = spec.top_name();
    let n_inputs = design.composite(&top).expect("top exists").inputs().len();
    let arrivals = vec![Time::ZERO; n_inputs];
    eprintln!(
        "design: {} ({} gates, {} instances x {} flavors)",
        top,
        spec.total_gates(),
        spec.instances,
        spec.flavors
    );

    // Reference answers every measured case must reproduce. Hier and
    // demand each check against their own serial baseline — the two
    // algorithms bound the true delay differently (demand refines only
    // while critical), so their answers need not coincide.
    let hier_delay = {
        let mut an = HierAnalyzer::new(&design, &top, HierOptions::default()).expect("valid");
        an.analyze(&arrivals).expect("analyzes").delay
    };
    let demand_delay = {
        let mut an =
            DemandDrivenAnalyzer::new(&design, &top, DemandOptions::default()).expect("valid");
        an.analyze(&arrivals).expect("analyzes").delay
    };

    let mut harness = Harness::new("parallel");
    bench_hier(&mut harness, &design, &top, &arrivals, hier_delay);
    bench_demand(&mut harness, &design, &top, &arrivals, demand_delay);
    harness.finish();
}
