//! CI gate: the "fast" variant of each gated pair must not be slower
//! than its baseline.
//!
//! Reads a benchmark JSON-lines file (as written by
//! [`hfta_testkit::Harness`] under `HFTA_BENCH_JSON`), takes the *last*
//! record per `(bench, case)`, and asserts each gated median stays
//! within `HFTA_PAR_GATE_TOL` (default 1.25) of its baseline:
//!
//! * `parallel_scaling/hier_t4`   vs `parallel_scaling/hier_serial`
//! * `parallel_scaling/demand_t4` vs `parallel_scaling/demand_serial`
//! * `ablation_stability_oracle/persistent_oracle_4_threads` vs
//!   `ablation_stability_oracle/persistent_oracle`
//! * `warm_start/warm_from_db` vs `warm_start/cold_characterize`
//!   (a model-database warm start that is not faster than
//!   re-characterizing from scratch means persistence regressed)
//! * `serve_throughput/whatif_oracle_rebind` vs
//!   `serve_throughput/whatif_fresh_analysis` (a warm daemon whose
//!   persistent-oracle what-if path is not faster than re-encoding a
//!   fresh analysis per request means the daemon's warmth regressed)
//! * `ablation_shared_solver/flat_xbd0_shared` vs
//!   `ablation_shared_solver/flat_xbd0_per_cone`, and
//!   `ablation_shared_solver/demand_cascade_shared` vs
//!   `ablation_shared_solver/demand_cascade_per_cone` (the shared
//!   module-level SAT instance must not regress past fresh per-cone
//!   solvers)
//! * `serve_load/concurrent_4conn` vs `serve_load/serial_1conn` (four
//!   concurrent unix-socket clients replay the same transcript as one
//!   pipelined connection; the multiplexing machinery must not make
//!   them slower)
//!
//! The tolerance absorbs timer noise on small medians (a 1-core CI
//! runner measures parity, not speedup — requested threads clamp to
//! the machine); the gate exists to catch the failure mode this
//! workspace once shipped, where a 4-thread run was *several times*
//! slower than serial. Exits 1 on violation, 2 when a gated case is
//! missing from the file (a silently skipped gate is no gate).
//!
//! Usage: `trajectory_gate [BENCH_smoke.json]`.

use std::collections::HashMap;
use std::process::ExitCode;

const GATES: [(&str, &str, &str); 8] = [
    (
        "serve_load",
        "serve_load/concurrent_4conn",
        "serve_load/serial_1conn",
    ),
    (
        "ablation",
        "ablation_shared_solver/flat_xbd0_shared",
        "ablation_shared_solver/flat_xbd0_per_cone",
    ),
    (
        "ablation",
        "ablation_shared_solver/demand_cascade_shared",
        "ablation_shared_solver/demand_cascade_per_cone",
    ),
    (
        "warm_start",
        "warm_start/warm_from_db",
        "warm_start/cold_characterize",
    ),
    (
        "serve_throughput",
        "serve_throughput/whatif_oracle_rebind",
        "serve_throughput/whatif_fresh_analysis",
    ),
    (
        "parallel",
        "parallel_scaling/hier_t4",
        "parallel_scaling/hier_serial",
    ),
    (
        "parallel",
        "parallel_scaling/demand_t4",
        "parallel_scaling/demand_serial",
    ),
    (
        "ablation",
        "ablation_stability_oracle/persistent_oracle_4_threads",
        "ablation_stability_oracle/persistent_oracle",
    ),
];

/// Pulls the string value of `"key":"…"` out of one JSON line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Pulls the numeric value of `"key":…` out of one JSON line.
fn num_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_smoke.json".to_string());
    let tol: f64 = std::env::var("HFTA_PAR_GATE_TOL")
        .ok()
        .map(|v| v.trim().parse().expect("HFTA_PAR_GATE_TOL is a number"))
        .unwrap_or(1.25);
    assert!(
        tol >= 1.0,
        "a tolerance below 1.0 gates serial against itself"
    );

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trajectory_gate: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    // Last record per (bench, case) wins: trajectory files append.
    let mut medians: HashMap<(String, String), u64> = HashMap::new();
    for line in text.lines() {
        let (Some(bench), Some(case), Some(median)) = (
            str_field(line, "bench"),
            str_field(line, "case"),
            num_field(line, "median_ns"),
        ) else {
            continue;
        };
        medians.insert((bench, case), median);
    }

    let mut failed = false;
    for (bench, par, ser) in GATES {
        let key = |case: &str| (bench.to_string(), case.to_string());
        let (Some(&p), Some(&s)) = (medians.get(&key(par)), medians.get(&key(ser))) else {
            eprintln!("trajectory_gate: MISSING {bench}: need both {par} and {ser} in {path}");
            return ExitCode::from(2);
        };
        let ratio = p as f64 / s as f64;
        let verdict = if ratio <= tol { "ok" } else { "FAIL" };
        println!(
            "{verdict}: {bench}/{par} {:.3}ms vs {ser} {:.3}ms (ratio {ratio:.2}, tol {tol:.2})",
            p as f64 / 1e6,
            s as f64 / 1e6,
        );
        failed |= ratio > tol;
    }
    if failed {
        eprintln!("trajectory_gate: parallel regressed past serial — see FAIL lines above");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
