//! Engine-level benchmarks: the SAT vs BDD tautology backends for
//! stability checks (a DESIGN.md ablation), plus raw solver/BDD
//! throughput on classic workloads.
//!
//! Run with `cargo run --release -p hfta-bench --bin engines`; see
//! [`hfta_testkit::Harness`] for the environment knobs.

use hfta_bdd::BddManager;
use hfta_fta::{BddAlg, SatAlg, StabilityAnalyzer};
use hfta_netlist::gen::{carry_skip_block, CsaDelays};
use hfta_netlist::Time;
use hfta_sat::{SatResult, Solver};
use hfta_testkit::Harness;

fn main() {
    let mut harness = Harness::new("engines");

    {
        let mut group = harness.group("stability_backend");
        let block = carry_skip_block(4, CsaDelays::default());
        let arrivals = vec![Time::ZERO; block.inputs().len()];
        let c_out = block.find_net("c_out").expect("exists");

        group.bench("sat", || {
            let mut an = StabilityAnalyzer::new(&block, &arrivals, SatAlg::new()).expect("valid");
            (0..14)
                .filter(|&t| an.is_stable_at(c_out, Time::new(t)))
                .count()
        });
        group.bench("bdd", || {
            let mut an = StabilityAnalyzer::new(&block, &arrivals, BddAlg::new()).expect("valid");
            (0..14)
                .filter(|&t| an.is_stable_at(c_out, Time::new(t)))
                .count()
        });
    }

    {
        let mut group = harness.group("sat_solver");
        group.bench("pigeonhole_7_into_6", || {
            let n = 7;
            let m = 6;
            let mut s = Solver::new();
            let p: Vec<Vec<_>> = (0..n)
                .map(|_| (0..m).map(|_| s.new_var()).collect())
                .collect();
            for row in &p {
                let clause: Vec<_> = row.iter().map(|v| v.positive()).collect();
                s.add_clause(&clause);
            }
            #[allow(clippy::needless_range_loop)] // j enumerates holes
            for j in 0..m {
                for i1 in 0..n {
                    for i2 in (i1 + 1)..n {
                        s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                    }
                }
            }
            assert_eq!(s.solve(), SatResult::Unsat);
        });
    }

    {
        let mut group = harness.group("bdd");
        group.bench("parity_16", || {
            let mut m = BddManager::new();
            let mut acc = m.constant(false);
            for i in 0..16 {
                let v = m.var(i);
                acc = m.xor(acc, v);
            }
            assert_eq!(m.sat_count(acc, 16), 1 << 15);
        });
    }

    harness.finish();
}
