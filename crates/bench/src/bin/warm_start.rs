//! Warm-start benchmark: cold characterization versus reloading models
//! from a persistent on-disk database.
//!
//! The `cold_characterize` case runs a full two-step analysis of the
//! generated modular design, emitting every (undegraded) model into a
//! fresh model database. The `warm_from_db` case then analyzes the
//! same design in a *new* analyzer that only reads that database —
//! measuring what a cold process pays when an earlier run already did
//! the solver work. The bench asserts the warm path performs **zero**
//! characterizations, serves every module from disk (nonzero hit rate,
//! aborting otherwise, like the cone-signature benches), and returns a
//! bit-identical delay.
//!
//! Run with `cargo run --release -p hfta-bench --bin warm_start`; see
//! [`hfta_testkit::Harness`] for the environment knobs. Setting
//! `HFTA_WARMSTART_SMOKE` (or `HFTA_ABLATION_SMOKE`) shrinks the
//! design to a seconds-long pass for `scripts/check.sh` and CI, whose
//! `trajectory_gate` asserts the warm median never regresses past the
//! cold one.

use hfta_core::{AnalysisConfig, HierAnalyzer};
use hfta_netlist::gen::{modular_design, ModularDesignSpec};
use hfta_netlist::Time;
use hfta_testkit::Harness;

fn spec() -> ModularDesignSpec {
    let smoke = std::env::var_os("HFTA_WARMSTART_SMOKE").is_some()
        || std::env::var_os("HFTA_ABLATION_SMOKE").is_some();
    if smoke {
        ModularDesignSpec {
            flavors: 4,
            instances: 40,
            gates_per_module: 60,
            layers: 4,
            seed: 41,
            mix: Default::default(),
        }
    } else {
        ModularDesignSpec::sized(20_000, 41)
    }
}

fn main() {
    let spec = spec();
    let design = modular_design(spec);
    let top = spec.top_name();
    let n_inputs = design.composite(&top).expect("top exists").inputs().len();
    let arrivals = vec![Time::ZERO; n_inputs];
    let dir = std::env::temp_dir().join(format!("hfta-warm-start-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "design: {} ({} gates); model db: {}",
        top,
        spec.total_gates(),
        dir.display()
    );

    let mut harness = Harness::new("warm_start");
    let mut group = harness.group("warm_start");

    // Cold: full characterization, models emitted to the database.
    // Repeat iterations re-characterize (a fresh analyzer each time)
    // but re-store nothing — existing records are skipped.
    let emit_config = AnalysisConfig::default().with_emit_models(&dir);
    let mut cold_delay = None;
    group.bench_at_least("cold_characterize", 2, || {
        let mut an = HierAnalyzer::with_config(&design, &top, &emit_config).expect("valid");
        let r = an.analyze(&arrivals).expect("analyzes");
        assert!(r.stats.modules_characterized > 0, "cold run did no work");
        cold_delay = Some(r.delay);
        r.delay
    });
    let cold_delay = cold_delay.expect("cold case ran");

    // Warm: a brand-new analyzer whose only head start is the
    // database on disk.
    let use_config = AnalysisConfig::default().with_use_models(&dir);
    let mut warm_hits = 0u64;
    group.bench_at_least("warm_from_db", 2, || {
        let mut an = HierAnalyzer::with_config(&design, &top, &use_config).expect("valid");
        let r = an.analyze(&arrivals).expect("analyzes");
        assert_eq!(
            r.stats.modules_characterized, 0,
            "warm start characterized modules"
        );
        assert_eq!(r.delay, cold_delay, "warm delay diverged from cold");
        warm_hits = r.stats.stability.model_db_hits;
        r.delay
    });
    drop(group);

    assert!(warm_hits > 0, "warm start served nothing from the model db");
    println!("\nmodel-reuse hits per warm analysis: {warm_hits}");
    harness.finish();
    let _ = std::fs::remove_dir_all(&dir);
}
