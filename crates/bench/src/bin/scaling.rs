//! Scalability study — the paper's closing argument made quantitative:
//! "Given that false path analysis can only be applied up to circuits
//! of a certain size, it is clear that hierarchical analysis is more
//! scalable."
//!
//! Sweeps carry-skip cascades up to 128 bits and reports hierarchical
//! (demand-driven) vs flat CPU; flat cost grows super-linearly with the
//! cascade length while hierarchical cost stays flat.
//!
//! Run with: `cargo run --release -p hfta-bench --bin scaling`

use hfta_bench::{table1_row, CsaConfig};

fn main() {
    println!("scalability: carry-skip cascades of 2-bit blocks, all inputs at t = 0\n");
    println!(
        "{:<10} {:>6} | {:>6} | {:>10} | {:>10} | {:>8}",
        "circuit", "gates", "delay", "hier CPU", "flat CPU", "ratio"
    );
    println!("{}", "-".repeat(66));
    let mut last_ratio = 0.0f64;
    for bits in [8usize, 16, 32, 64, 128] {
        let cfg = CsaConfig { bits, block: 2 };
        let row = table1_row(&cfg);
        assert_eq!(row.hier_delay, row.flat_delay, "accuracy preserved");
        let ratio = row.flat_cpu.as_secs_f64() / row.hier_cpu.as_secs_f64().max(1e-6);
        println!(
            "{:<10} {:>6} | {:>6} | {:>9.4}s | {:>9.4}s | {:>7.0}x",
            cfg.name(),
            row.gates,
            row.flat_delay,
            row.hier_cpu.as_secs_f64(),
            row.flat_cpu.as_secs_f64(),
            ratio
        );
        last_ratio = ratio;
    }
    println!(
        "\nflat/hier CPU ratio at 128 bits: {last_ratio:.0}x and growing — the paper's\n\
         scalability claim: false-path analysis on leaf modules only."
    );
}
