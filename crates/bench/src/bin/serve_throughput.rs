//! Daemon throughput benchmark: what keeping the analysis warm buys.
//!
//! Two gated comparisons on a ~20k-gate modular design:
//!
//! * `delay_batched` vs `delay_one_at_a_time` — the same delay-query
//!   transcript answered by one daemon invocation (requests batched
//!   through the transport loop, responses flushed per batch) versus
//!   one transport invocation per request (per-request wakeup,
//!   channel, flush). Batching amortizes the per-request transport
//!   overhead; both paths produce byte-identical responses.
//! * `whatif_oracle_rebind` vs `whatif_fresh_analysis` — a sweep of
//!   what-if arrival changes against one leaf module, answered by the
//!   warm session's persistent [`StabilityOracle`] (arrival rebind
//!   keeps the SAT encoding and learnt clauses) versus a brand-new
//!   `DelayAnalyzer` per request (re-encode, re-learn, every time).
//!   The bench asserts both paths return identical arrivals;
//!   `trajectory_gate` asserts the rebind median never regresses past
//!   the fresh one — the whole point of running a daemon.
//!
//! Run with `cargo run --release -p hfta-bench --bin serve_throughput`;
//! see [`hfta_testkit::Harness`] for the environment knobs. Setting
//! `HFTA_SERVE_SMOKE` (or `HFTA_ABLATION_SMOKE`) shrinks the design to
//! a seconds-long pass for `scripts/check.sh` and CI. Requests/second
//! for each case print after the medians.
//!
//! [`StabilityOracle`]: hfta_fta::StabilityOracle

use std::io::Cursor;

use hfta_fta::{AnalysisConfig, DelayAnalyzer};
use hfta_netlist::gen::{modular_design, ModularDesignSpec};
use hfta_netlist::Time;
use hfta_serve::protocol::time_to_json;
use hfta_serve::{serve_lines, ServeSession};
use hfta_testkit::{Harness, Record};
use hfta_trace::TraceSink;

fn spec() -> ModularDesignSpec {
    let smoke = std::env::var_os("HFTA_SERVE_SMOKE").is_some()
        || std::env::var_os("HFTA_ABLATION_SMOKE").is_some();
    if smoke {
        ModularDesignSpec {
            flavors: 4,
            instances: 40,
            gates_per_module: 60,
            layers: 4,
            seed: 77,
            mix: Default::default(),
        }
    } else {
        ModularDesignSpec::sized(20_000, 77)
    }
}

fn smoke() -> bool {
    std::env::var_os("HFTA_SERVE_SMOKE").is_some()
        || std::env::var_os("HFTA_ABLATION_SMOKE").is_some()
}

/// A warm session over the benchmark design.
fn warm_session(top: &str) -> ServeSession {
    let design = modular_design(spec());
    let mut session =
        ServeSession::new(design, top, &AnalysisConfig::default()).expect("valid design");
    session.warm().expect("warms");
    session
}

fn requests_per_sec(n: usize, r: &Record) -> f64 {
    n as f64 / r.median.as_secs_f64().max(1e-12)
}

fn main() {
    let spec = spec();
    let top = spec.top_name();
    let design = modular_design(spec);
    let composite = design.composite(&top).expect("top exists");
    eprintln!("design: {top} ({} gates)", spec.total_gates());

    // The delay transcript cycles over the design's primary outputs.
    let n_delay = if smoke() { 24 } else { 192 };
    let delay_lines: Vec<String> = (0..n_delay)
        .map(|i| {
            let po = composite.outputs()[i % composite.outputs().len()];
            format!(
                r#"{{"id":{i},"kind":"delay","output":"{}"}}"#,
                composite.net_name(po)
            )
        })
        .collect();

    // The what-if sweep slides one pin's arrival over a window against
    // the first instantiated leaf flavor.
    let module = composite.instances()[0].module.clone();
    let leaf = design.leaf(&module).expect("instantiated leaf").clone();
    let pin = leaf.net_name(leaf.inputs()[0]).to_string();
    let out_net = leaf.outputs()[0];
    let out = leaf.net_name(out_net).to_string();
    let n_whatif = if smoke() { 12 } else { 48 };
    let whatif_lines: Vec<String> = (0..n_whatif)
        .map(|i| {
            format!(
                r#"{{"id":{i},"kind":"whatif","module":"{module}","output":"{out}","arrivals":{{"{pin}":{}}}}}"#,
                i % 7
            )
        })
        .collect();

    let mut harness = Harness::new("serve_throughput");
    let mut group = harness.group("serve_throughput");

    // One transport invocation per request: every query pays the full
    // per-request wakeup (reader thread, channel, flush).
    let mut session = warm_session(&top);
    let one = group.bench_at_least("delay_one_at_a_time", 2, || {
        let mut bytes = 0usize;
        for line in &delay_lines {
            let mut out = Vec::new();
            serve_lines(
                &mut session,
                Cursor::new(format!("{line}\n").into_bytes()),
                &mut out,
                None,
                &TraceSink::disabled(),
            )
            .expect("serves");
            bytes += out.len();
        }
        bytes
    });

    // The same transcript in one invocation: the transport batches
    // whatever is queued and flushes once per batch.
    let mut session = warm_session(&top);
    let transcript = format!("{}\n", delay_lines.join("\n"));
    let mut batched_out = Vec::new();
    let batched = group.bench_at_least("delay_batched", 2, || {
        batched_out.clear();
        serve_lines(
            &mut session,
            Cursor::new(transcript.clone().into_bytes()),
            &mut batched_out,
            None,
            &TraceSink::disabled(),
        )
        .expect("serves");
        batched_out.len()
    });
    assert_eq!(
        batched_out.iter().filter(|&&b| b == b'\n').count(),
        n_delay,
        "batched run answered every request"
    );

    // Warm path: one persistent oracle, arrivals rebound per request.
    let mut session = warm_session(&top);
    let mut rebind_answers: Vec<String> = Vec::new();
    let rebind = group.bench_at_least("whatif_oracle_rebind", 2, || {
        rebind_answers.clear();
        for line in &whatif_lines {
            let (resp, _) = session.handle_line(line);
            rebind_answers.push(resp.expect("whatif answers"));
        }
    });

    // Cold path: a brand-new analyzer (fresh SAT encoding, no learnt
    // clauses, no memo) per request — the daemonless cost.
    let mut fresh_answers: Vec<Time> = Vec::new();
    let fresh = group.bench_at_least("whatif_fresh_analysis", 2, || {
        fresh_answers.clear();
        for i in 0..n_whatif {
            let mut arrivals = vec![Time::ZERO; leaf.inputs().len()];
            arrivals[0] = Time::new((i % 7) as i64);
            let mut an = DelayAnalyzer::new_sat(&leaf, &arrivals).expect("acyclic");
            fresh_answers.push(an.output_arrival(out_net));
        }
    });
    drop(group);

    // Bit-identity: the warm rebind answers exactly what a fresh
    // analysis answers, request by request.
    assert_eq!(rebind_answers.len(), fresh_answers.len());
    for (resp, want) in rebind_answers.iter().zip(&fresh_answers) {
        let parsed = hfta_serve::json::parse(resp).expect("response is JSON");
        assert_eq!(
            parsed.get("arrival").map(ToString::to_string),
            Some(time_to_json(*want).to_string()),
            "oracle rebind diverged from fresh analysis: {resp}"
        );
    }

    println!(
        "\ndelay queries:  one-at-a-time {:.0} req/s, batched {:.0} req/s",
        requests_per_sec(n_delay, &one),
        requests_per_sec(n_delay, &batched),
    );
    println!(
        "whatif queries: oracle rebind {:.0} req/s, fresh analysis {:.0} req/s",
        requests_per_sec(n_whatif, &rebind),
        requests_per_sec(n_whatif, &fresh),
    );
    harness.finish();
}
