//! Ablations called out in DESIGN.md:
//!
//! 1. **Demand-driven vs full two-step characterization** — the paper's
//!    Section 5 motivation: the two-step algorithm characterizes every
//!    pin pair of every module even when never critical.
//! 2. **Tuple-set size cap** — how many greedy relaxation passes the
//!    characterization runs (1 tuple vs several incomparable tuples).
//! 3. **Fixed vs min-cut partitioning** of the Table 2 workloads.
//! 4. **Serial vs parallel characterization** of a mixed design.
//! 5. **Fresh solver per probe vs persistent stability oracle** — the
//!    demand-driven refinement loop answers many stability queries per
//!    cone; the oracle keeps one incremental SAT solver (plus the
//!    `(net, t)` memo and learnt clauses) alive across all of them.
//! 6. **Structural cone signatures on vs off** — hash-consed cone
//!    signatures share characterization across renamed module copies
//!    and stability verdicts across isomorphic cones. Measured on a
//!    replicated-block fixture (where sharing should approach the copy
//!    count) and an ISCAS-like partition (where it usually cannot).
//!
//! 7. **Shared module-level SAT instance vs per-cone solvers** — see
//!    [`bench_shared_solver`].
//!
//! Run with `cargo run --release -p hfta-bench --bin ablation`; see
//! [`hfta_testkit::Harness`] for the environment knobs. Setting
//! `HFTA_ABLATION_SMOKE` shrinks the workload and runs only the
//! oracle, cone-signature and shared-solver ablations — a seconds-long
//! sanity pass used by `scripts/check.sh` and CI, which also asserts
//! the signature cache actually hits on the replicated fixture.

use hfta_bench::{build_iscas_like, IscasLike};
use hfta_core::{
    CharacterizeOptions, DemandDrivenAnalyzer, DemandOptions, HierAnalyzer, HierOptions, Scheduler,
    TraceSink,
};
use hfta_netlist::gen::carry_skip_adder;
use hfta_netlist::partition::{cascade_bipartition, cascade_bipartition_min_cut};
use hfta_netlist::Time;
use hfta_testkit::Harness;

fn bench_demand_vs_twostep(harness: &mut Harness) {
    let mut group = harness.group("ablation_demand_vs_twostep");
    let design = carry_skip_adder(32, 4, Default::default());
    let arrivals = vec![Time::ZERO; 65];

    group.bench("demand_driven", || {
        let mut an =
            DemandDrivenAnalyzer::new(&design, "csa32.4", DemandOptions::default()).expect("valid");
        an.analyze(&arrivals).expect("analyzes").delay
    });
    group.bench("two_step_full", || {
        let mut an = HierAnalyzer::new(&design, "csa32.4", HierOptions::default()).expect("valid");
        an.analyze(&arrivals).expect("analyzes").delay
    });
}

fn bench_tuple_cap(harness: &mut Harness) {
    let mut group = harness.group("ablation_tuple_cap");
    let design = carry_skip_adder(16, 2, Default::default());
    let arrivals = vec![Time::ZERO; 33];
    for max_tuples in [1usize, 4] {
        let opts = HierOptions {
            characterize: CharacterizeOptions {
                max_tuples,
                ..CharacterizeOptions::default()
            },
            ..HierOptions::default()
        };
        group.bench(&format!("max_tuples_{max_tuples}"), || {
            let mut an = HierAnalyzer::new(&design, "csa16.2", opts).expect("valid");
            an.analyze(&arrivals).expect("analyzes").delay
        });
    }
}

fn bench_partition_strategy(harness: &mut Harness) {
    let mut group = harness.group("ablation_partition");
    let w = IscasLike {
        name: "c432_like".into(),
        gates: 160,
        seed: 432,
    };
    let flat = build_iscas_like(&w);
    let arrivals = vec![Time::ZERO; flat.inputs().len()];

    let fixed = cascade_bipartition(&flat, 0.5).expect("partitions");
    group.bench("fixed_half_split", || {
        let mut an =
            DemandDrivenAnalyzer::new(&fixed, "c432_like_top", Default::default()).expect("valid");
        an.analyze(&arrivals).expect("analyzes").delay
    });
    let mincut = cascade_bipartition_min_cut(&flat, 0.25, 0.75).expect("partitions");
    group.bench("min_cut_split", || {
        let mut an =
            DemandDrivenAnalyzer::new(&mincut, "c432_like_top", Default::default()).expect("valid");
        an.analyze(&arrivals).expect("analyzes").delay
    });
}

fn bench_parallel_characterization(harness: &mut Harness) {
    // A design with four distinct block flavours so the parallel path
    // has real fan-out.
    use hfta_netlist::gen::{carry_skip_block, CsaDelays};
    use hfta_netlist::{Composite, Design};
    let mut design = Design::new();
    let mut top = Composite::new("mixed");
    let mut carry = top.add_input("c_in");
    for (k, m) in [2usize, 3, 4, 5].iter().enumerate() {
        let mut block = carry_skip_block(*m, CsaDelays::default());
        block.set_name(format!("blk{k}"));
        design.add_leaf(block).expect("fresh design");
        let mut ins = vec![carry];
        for i in 0..*m {
            ins.push(top.add_input(format!("a{k}_{i}")));
            ins.push(top.add_input(format!("b{k}_{i}")));
        }
        let mut outs = Vec::new();
        for i in 0..*m {
            let s = top.add_net(format!("s{k}_{i}"));
            top.mark_output(s);
            outs.push(s);
        }
        let c = top.add_net(format!("c{k}"));
        outs.push(c);
        top.add_instance(format!("u{k}"), format!("blk{k}"), &ins, &outs);
        carry = c;
    }
    top.mark_output(carry);
    let n_inputs = top.inputs().len();
    design.add_composite(top).expect("fresh design");
    let arrivals = vec![Time::ZERO; n_inputs];

    let mut group = harness.group("ablation_parallel_characterize");
    group.bench("serial", || {
        let mut an = HierAnalyzer::new(&design, "mixed", HierOptions::default()).expect("valid");
        an.analyze(&arrivals).expect("analyzes").delay
    });
    // One pool shared across iterations: workers spawn once, so the
    // measurement is scheduling + characterization, not thread setup.
    let pool = Scheduler::new(4);
    let par_opts = HierOptions::default()
        .with_threads(4)
        .with_thread_clamp(false);
    group.bench("parallel_4_threads", || {
        let mut an = HierAnalyzer::new(&design, "mixed", par_opts).expect("valid");
        an.set_scheduler(pool.clone());
        an.characterize_all().expect("characterizes");
        an.analyze(&arrivals).expect("analyzes").delay
    });
}

fn smoke() -> bool {
    std::env::var_os("HFTA_ABLATION_SMOKE").is_some()
}

fn bench_stability_oracle(harness: &mut Harness) {
    let mut group = harness.group("ablation_stability_oracle");
    let (bits, blocks, top) = if smoke() {
        (8usize, 2usize, "csa8.2")
    } else {
        (32, 4, "csa32.4")
    };
    let design = carry_skip_adder(bits, blocks, Default::default());
    let arrivals = vec![Time::ZERO; 2 * bits + 1];

    // Analyzers are built once, outside the timed closures, and reset
    // to a pre-refinement state each iteration: what the three cases
    // compare is steady-state refinement cost, not construction. The
    // threaded case gets a pre-built pool for the same reason — worker
    // spawning is a per-process cost, not a per-analysis one.
    let fresh = DemandOptions {
        reuse_oracle: false,
        ..DemandOptions::default()
    };
    let mut an_fresh = DemandDrivenAnalyzer::new(&design, top, fresh).expect("valid");
    group.bench_at_least("fresh_solver_per_probe", 10, || {
        an_fresh.reset_refinement();
        an_fresh.analyze(&arrivals).expect("analyzes").delay
    });
    let mut an_oracle =
        DemandDrivenAnalyzer::new(&design, top, DemandOptions::default()).expect("valid");
    group.bench_at_least("persistent_oracle", 10, || {
        an_oracle.reset_refinement();
        an_oracle.analyze(&arrivals).expect("analyzes").delay
    });
    // Default thread clamping stays ON: on a box with fewer than four
    // cores this case runs serial (oversubscribing one core is exactly
    // the regression this group guards against), and on a multicore box
    // the pool spawns once on the first iteration and persists in the
    // analyzer, so steady-state iterations never pay spawn cost.
    let threaded = DemandOptions {
        threads: 4,
        ..DemandOptions::default()
    };
    let mut an_par = DemandDrivenAnalyzer::new(&design, top, threaded).expect("valid");
    group.bench_at_least("persistent_oracle_4_threads", 10, || {
        an_par.reset_refinement();
        an_par.analyze(&arrivals).expect("analyzes").delay
    });
}

/// `copies` identical `bits`-bit carry-skip blocks under *distinct*
/// module names — the analyzer can share nothing by name, only through
/// structural signatures. `cascaded` chains the carries (each copy then
/// sees a different arrival context); otherwise the blocks sit side by
/// side with independent carry inputs (identical arrival contexts, the
/// demand verdict memo's win case).
fn replicated_blocks(copies: usize, bits: usize, cascaded: bool) -> (hfta_netlist::Design, usize) {
    use hfta_netlist::gen::{carry_skip_block, CsaDelays};
    use hfta_netlist::{Composite, Design};
    let mut design = Design::new();
    let top_name = if cascaded {
        "replicated"
    } else {
        "replicated_par"
    };
    let mut top = Composite::new(top_name);
    let mut carry = top.add_input("c_in");
    for k in 0..copies {
        let mut block = carry_skip_block(bits, CsaDelays::default());
        block.set_name(format!("{top_name}_blk{k}"));
        design.add_leaf(block).expect("fresh design");
        if !cascaded && k > 0 {
            carry = top.add_input(format!("c_in{k}"));
        }
        let mut ins = vec![carry];
        for i in 0..bits {
            ins.push(top.add_input(format!("a{k}_{i}")));
            ins.push(top.add_input(format!("b{k}_{i}")));
        }
        let mut outs = Vec::new();
        for i in 0..bits {
            let s = top.add_net(format!("s{k}_{i}"));
            top.mark_output(s);
            outs.push(s);
        }
        let c = top.add_net(format!("c{k}"));
        outs.push(c);
        top.add_instance(format!("u{k}"), format!("{top_name}_blk{k}"), &ins, &outs);
        if cascaded {
            carry = c;
        } else {
            top.mark_output(c);
        }
    }
    if cascaded {
        top.mark_output(carry);
    }
    let n_inputs = top.inputs().len();
    design.add_composite(top).expect("fresh design");
    (design, n_inputs)
}

fn bench_cone_sig(harness: &mut Harness, trace: &TraceSink) {
    let (copies, bits) = if smoke() { (4usize, 2usize) } else { (8, 4) };
    let (design, n_inputs) = replicated_blocks(copies, bits, true);
    let arrivals = vec![Time::ZERO; n_inputs];

    let mut group = harness.group("ablation_cone_sig");
    let hier_off = HierOptions {
        characterize: CharacterizeOptions {
            cone_sig: false,
            ..CharacterizeOptions::default()
        },
        ..HierOptions::default()
    };
    group.bench("hier_sig_off", || {
        let mut an = HierAnalyzer::new(&design, "replicated", hier_off).expect("valid");
        an.analyze(&arrivals).expect("analyzes").delay
    });
    group.bench("hier_sig_on", || {
        let mut an =
            HierAnalyzer::new(&design, "replicated", HierOptions::default()).expect("valid");
        an.set_trace(trace.clone());
        let r = an.analyze(&arrivals).expect("analyzes");
        assert!(
            r.stats.stability.cone_sig_hits > 0,
            "signature cache reported zero hits on the replicated fixture"
        );
        assert_eq!(r.stats.modules_aliased, copies as u64 - 1);
        r.delay
    });

    let demand_off = DemandOptions {
        cone_sig: false,
        ..DemandOptions::default()
    };
    group.bench("demand_sig_off", || {
        let mut an = DemandDrivenAnalyzer::new(&design, "replicated", demand_off).expect("valid");
        an.analyze(&arrivals).expect("analyzes").delay
    });
    group.bench("demand_sig_on", || {
        let mut an = DemandDrivenAnalyzer::new(&design, "replicated", DemandOptions::default())
            .expect("valid");
        an.set_trace(trace.clone());
        let r = an.analyze(&arrivals).expect("analyzes");
        assert!(
            r.stability.cone_sig_hits > 0,
            "verdict memo reported zero hits on the replicated fixture"
        );
        r.delay
    });

    // Side-by-side copies (no carry chain): every copy refines under
    // the *same* arrival context, so verdicts shared across isomorphic
    // cones actually land — the memo's intended workload.
    let (par_design, par_inputs) = replicated_blocks(copies, bits, false);
    let par_arrivals = vec![Time::ZERO; par_inputs];
    group.bench("demand_par_sig_off", || {
        let mut an =
            DemandDrivenAnalyzer::new(&par_design, "replicated_par", demand_off).expect("valid");
        an.analyze(&par_arrivals).expect("analyzes").delay
    });
    group.bench("demand_par_sig_on", || {
        let mut an =
            DemandDrivenAnalyzer::new(&par_design, "replicated_par", DemandOptions::default())
                .expect("valid");
        let r = an.analyze(&par_arrivals).expect("analyzes");
        assert!(
            r.stability.cone_sig_hits > 0,
            "verdict memo reported zero hits on the side-by-side fixture"
        );
        r.delay
    });

    if !smoke() {
        // A partitioned random netlist: the halves are not isomorphic,
        // so this prices the signature computation when sharing mostly
        // fails to materialize.
        let w = IscasLike {
            name: "c880_like".into(),
            gates: 320,
            seed: 880,
        };
        let flat = build_iscas_like(&w);
        let arr = vec![Time::ZERO; flat.inputs().len()];
        let part = cascade_bipartition(&flat, 0.5).expect("partitions");
        group.bench("iscas_demand_sig_off", || {
            let mut an =
                DemandDrivenAnalyzer::new(&part, "c880_like_top", demand_off).expect("valid");
            an.analyze(&arr).expect("analyzes").delay
        });
        group.bench("iscas_demand_sig_on", || {
            let mut an =
                DemandDrivenAnalyzer::new(&part, "c880_like_top", DemandOptions::default())
                    .expect("valid");
            an.analyze(&arr).expect("analyzes").delay
        });
    }
}

/// Shared module instance vs per-cone solvers: one incremental
/// SAT instance per module answers every cone's stability queries,
/// restricted to the cone's transitive-fanin variable domain, sharing
/// learnt clauses across cones (and, in demand mode, across isomorphic
/// cone classes via slot-permuted import) with between-query
/// inprocessing. Measured on the flat XBD0 path of an ISCAS-like
/// netlist and on demand refinement of the replicated cascade; the
/// `trajectory_gate` asserts shared mode never regresses past the
/// per-cone baseline.
fn bench_shared_solver(harness: &mut Harness) {
    use hfta_fta::DelayAnalyzer;

    let mut group = harness.group("ablation_shared_solver");
    use hfta_netlist::gen::{random_circuit, RandomCircuitSpec};
    let spec = RandomCircuitSpec {
        inputs: 40,
        gates: if smoke() { 64 } else { 240 },
        seed: 499,
        locality: 12,
        global_fanin_prob: 0.01,
        mix: hfta_netlist::gen::GateMix::XorHeavy,
    };
    let flat = random_circuit("c499_like", spec);
    let arr = vec![Time::ZERO; flat.inputs().len()];
    // One reference answer so both cases can assert bit-identity.
    let expected = {
        let mut an = DelayAnalyzer::new_sat_shared(&flat, &arr).expect("valid");
        an.circuit_delay()
    };
    // The per-cone baseline the shared instance replaces: a fresh
    // solver and a fresh encoding for every output cone, re-deriving
    // the overlap between cones from scratch each time.
    group.bench_at_least("flat_xbd0_per_cone", 3, || {
        let mut worst = Time::ZERO;
        for &o in flat.outputs() {
            let (cone, _pis) = flat.cone(o);
            let cone_arr = vec![Time::ZERO; cone.inputs().len()];
            let mut an = DelayAnalyzer::new_sat(&cone, &cone_arr).expect("valid");
            worst = worst.max(an.circuit_delay());
        }
        assert_eq!(worst, expected, "per-cone delay diverges from shared");
        worst
    });
    group.bench_at_least("flat_xbd0_shared", 3, || {
        let mut an = DelayAnalyzer::new_sat_shared(&flat, &arr).expect("valid");
        let d = an.circuit_delay();
        assert_eq!(d, expected, "shared delay is not reproducible");
        d
    });

    // Demand refinement on the replicated cascade: each signature
    // class answers from one shared engine vs per-cone oracles. The
    // verdict memo stays ON in both cases — what is measured is the
    // solver-sharing delta, not the memo.
    let (copies, bits) = if smoke() { (4usize, 2usize) } else { (8, 4) };
    let (design, n_inputs) = replicated_blocks(copies, bits, true);
    let arrivals = vec![Time::ZERO; n_inputs];
    let per_cone = DemandOptions {
        shared_solver: false,
        ..DemandOptions::default()
    };
    group.bench_at_least("demand_cascade_per_cone", 5, || {
        let mut an = DemandDrivenAnalyzer::new(&design, "replicated", per_cone).expect("valid");
        an.analyze(&arrivals).expect("analyzes").delay
    });
    group.bench_at_least("demand_cascade_shared", 5, || {
        let mut an = DemandDrivenAnalyzer::new(&design, "replicated", DemandOptions::default())
            .expect("valid");
        let r = an.analyze(&arrivals).expect("analyzes");
        assert!(
            r.stability.domains_built > 0,
            "shared mode reported zero domains built on the cascade fixture"
        );
        r.delay
    });
}

/// Write the accumulated trace to `HFTA_TRACE_JSON` (if set). CI's
/// smoke run greps the file for `sat_episode` and `module_alias`
/// records, pinning the tracing subsystem end to end.
fn emit_trace(trace: &TraceSink, path: Option<&str>) {
    let Some(path) = path else { return };
    let recs = trace.drain();
    std::fs::write(path, recs.to_jsonl()).expect("trace file is writable");
    eprintln!("trace: wrote {} records to {path}", recs.records().len());
}

fn main() {
    let trace_path = std::env::var("HFTA_TRACE_JSON").ok();
    let trace = if trace_path.is_some() {
        TraceSink::enabled()
    } else {
        TraceSink::disabled()
    };
    let mut harness = Harness::new("ablation");
    if smoke() {
        bench_stability_oracle(&mut harness);
        bench_cone_sig(&mut harness, &trace);
        bench_shared_solver(&mut harness);
        harness.finish();
        emit_trace(&trace, trace_path.as_deref());
        return;
    }
    bench_demand_vs_twostep(&mut harness);
    bench_tuple_cap(&mut harness);
    bench_partition_strategy(&mut harness);
    bench_parallel_characterization(&mut harness);
    bench_stability_oracle(&mut harness);
    bench_cone_sig(&mut harness, &trace);
    bench_shared_solver(&mut harness);
    harness.finish();
    emit_trace(&trace, trace_path.as_deref());
}
