//! Multi-client daemon load benchmark: what the concurrent unix-socket
//! path costs relative to one pipelined connection.
//!
//! One warm daemon serves a mixed read transcript (report, delay,
//! slack, what-if) two ways:
//!
//! * `serial_1conn` — a single client pipelines the whole transcript
//!   over one connection and reads every response back;
//! * `concurrent_4conn` — four clients connect at once and each
//!   replays a quarter of the transcript concurrently.
//!
//! The total query work is identical, so `trajectory_gate` asserts the
//! concurrent median stays within tolerance of the serial one: the
//! multiplexing machinery (bounded queue, per-connection reader/writer
//! pairs, write barrier) must not make four clients slower than one.
//! Before timing anything, the bench asserts both modes return
//! byte-identical responses slice for slice.
//!
//! By default the daemon runs on a thread in this process. Set
//! `HFTA_SERVE_BIN=/path/to/hfta` to exercise the real CLI instead:
//! the design is written to a temp `.hnl` file and served by a child
//! `hfta serve --socket` process — the mode CI's serve-load smoke job
//! uses, driving the socket across a process boundary.
//!
//! Run with `cargo run --release -p hfta-bench --bin serve_load`; see
//! [`hfta_testkit::Harness`] for the environment knobs. Setting
//! `HFTA_SERVE_SMOKE` (or `HFTA_ABLATION_SMOKE`) shrinks the design to
//! a seconds-long pass for `scripts/check.sh` and CI.

#[cfg(not(unix))]
fn main() {
    eprintln!("serve_load: requires unix sockets; skipping");
}

#[cfg(unix)]
fn main() {
    imp::main();
}

#[cfg(unix)]
mod imp {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::path::{Path, PathBuf};
    use std::thread;
    use std::time::{Duration, Instant};

    use hfta_fta::AnalysisConfig;
    use hfta_netlist::gen::{modular_design, ModularDesignSpec};
    use hfta_netlist::{hnl, Design};
    use hfta_sched::Scheduler;
    use hfta_serve::{serve_unix_socket, ServeSession};
    use hfta_testkit::{Harness, Record};
    use hfta_trace::TraceSink;

    const CLIENTS: usize = 4;
    const THREADS: usize = 4;

    fn smoke() -> bool {
        std::env::var_os("HFTA_SERVE_SMOKE").is_some()
            || std::env::var_os("HFTA_ABLATION_SMOKE").is_some()
    }

    fn spec() -> ModularDesignSpec {
        if smoke() {
            ModularDesignSpec {
                flavors: 4,
                instances: 40,
                gates_per_module: 60,
                layers: 4,
                seed: 99,
                mix: Default::default(),
            }
        } else {
            ModularDesignSpec::sized(12_000, 99)
        }
    }

    /// The daemon under load: either a thread in this process or (with
    /// `HFTA_SERVE_BIN`) a real `hfta serve` child process.
    enum Daemon {
        Thread(thread::JoinHandle<()>),
        Child(std::process::Child, PathBuf),
    }

    fn spawn_daemon(design: Design, top: &str, socket: &Path) -> Daemon {
        if let Some(bin) = std::env::var_os("HFTA_SERVE_BIN") {
            let file =
                std::env::temp_dir().join(format!("hfta-serve-load-{}.hnl", std::process::id()));
            std::fs::write(&file, hnl::write(&design, Some(top))).expect("design file writes");
            let child = std::process::Command::new(bin)
                .arg("serve")
                .arg(&file)
                .arg("--top")
                .arg(top)
                .arg("--socket")
                .arg(socket)
                .arg("--threads")
                .arg(THREADS.to_string())
                .stdin(std::process::Stdio::null())
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("HFTA_SERVE_BIN spawns");
            Daemon::Child(child, file)
        } else {
            let top = top.to_string();
            let socket = socket.to_path_buf();
            Daemon::Thread(thread::spawn(move || {
                let mut session = ServeSession::new(design, &top, &AnalysisConfig::default())
                    .expect("valid design");
                session.warm().expect("warms");
                let pool = Scheduler::new(THREADS);
                serve_unix_socket(&mut session, &socket, Some(&pool), &TraceSink::disabled())
                    .expect("daemon serves");
            }))
        }
    }

    impl Daemon {
        fn finish(self, socket: &Path) {
            let mut conn = connect(socket);
            writeln!(conn, r#"{{"id":"bye","kind":"shutdown"}}"#).expect("shutdown writes");
            let mut line = String::new();
            let _ = BufReader::new(&conn).read_line(&mut line);
            match self {
                Daemon::Thread(handle) => handle.join().expect("daemon thread panicked"),
                Daemon::Child(mut child, file) => {
                    let status = child.wait().expect("child waits");
                    assert!(status.success(), "hfta serve exited with {status}");
                    let _ = std::fs::remove_file(file);
                }
            }
        }
    }

    /// Connects with retries: the daemon binds only after warming,
    /// which for a child process includes loading + characterizing.
    fn connect(socket: &Path) -> UnixStream {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            match UnixStream::connect(socket) {
                Ok(stream) => return stream,
                Err(_) if Instant::now() < deadline => thread::sleep(Duration::from_millis(5)),
                Err(e) => panic!("daemon socket never came up: {e}"),
            }
        }
    }

    /// Pipelines the whole slice, then reads one response per request.
    fn exchange(conn: &mut UnixStream, lines: &[String]) -> Vec<String> {
        let mut reader = BufReader::new(conn.try_clone().expect("stream clones"));
        for line in lines {
            conn.write_all(line.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
        }
        conn.flush().unwrap();
        lines
            .iter()
            .map(|_| {
                let mut resp = String::new();
                let n = reader.read_line(&mut resp).expect("daemon answers");
                assert!(n > 0, "daemon hung up before answering");
                while resp.ends_with('\n') {
                    resp.pop();
                }
                resp
            })
            .collect()
    }

    /// One full-transcript replay over `clients` concurrent
    /// connections; returns the per-connection response streams.
    fn concurrent_replay(socket: &Path, slices: &[Vec<String>]) -> Vec<Vec<String>> {
        thread::scope(|scope| {
            let handles: Vec<_> = slices
                .iter()
                .map(|slice| scope.spawn(|| exchange(&mut connect(socket), slice)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread panicked"))
                .collect()
        })
    }

    fn requests_per_sec(n: usize, r: &Record) -> f64 {
        n as f64 / r.median.as_secs_f64().max(1e-12)
    }

    pub fn main() {
        let spec = spec();
        let top = spec.top_name();
        let design = modular_design(spec);
        let composite = design.composite(&top).expect("top exists");
        eprintln!("design: {top} ({} gates)", spec.total_gates());

        // A mixed read transcript cycling over every shardable kind.
        let module = composite.instances()[0].module.clone();
        let leaf = design.leaf(&module).expect("instantiated leaf");
        let pin = leaf.net_name(leaf.inputs()[0]).to_string();
        let whatif_out = leaf.net_name(leaf.outputs()[0]).to_string();
        let in0 = composite.net_name(composite.inputs()[0]).to_string();
        let outs = composite.outputs();
        let n_requests = if smoke() { 32 } else { 160 };
        let transcript: Vec<String> = (0..n_requests)
            .map(|i| {
                let po = composite.net_name(outs[i % outs.len()]);
                match i % 4 {
                    0 => format!(r#"{{"id":{i},"kind":"report","arrivals":{{"{in0}":{}}}}}"#, i % 5),
                    1 => format!(r#"{{"id":{i},"kind":"delay","output":"{po}"}}"#),
                    2 => format!(r#"{{"id":{i},"kind":"slack","net":"{po}","required":40}}"#),
                    _ => format!(
                        r#"{{"id":{i},"kind":"whatif","module":"{module}","output":"{whatif_out}","arrivals":{{"{pin}":{}}}}}"#,
                        i % 7
                    ),
                }
            })
            .collect();
        let slices: Vec<Vec<String>> = transcript
            .chunks(n_requests / CLIENTS)
            .map(<[String]>::to_vec)
            .collect();

        let socket =
            std::env::temp_dir().join(format!("hfta-serve-load-{}.sock", std::process::id()));
        let daemon = spawn_daemon(design, &top, &socket);

        // Byte-identity first (and it warms the daemon's caches for
        // both timed cases equally): each connection's concurrent
        // stream must equal the matching chunk of the serial replay.
        let expected = exchange(&mut connect(&socket), &transcript);
        let concurrent = concurrent_replay(&socket, &slices);
        for (k, (got, want)) in concurrent
            .iter()
            .zip(expected.chunks(n_requests / CLIENTS))
            .enumerate()
        {
            assert_eq!(got, want, "connection {k} diverged from the serial replay");
        }

        let mut harness = Harness::new("serve_load");
        let mut group = harness.group("serve_load");
        let serial = group.bench_at_least("serial_1conn", 2, || {
            exchange(&mut connect(&socket), &transcript).len()
        });
        let conc = group.bench_at_least("concurrent_4conn", 2, || {
            concurrent_replay(&socket, &slices).len()
        });
        drop(group);

        daemon.finish(&socket);
        println!(
            "\nmixed queries: 1 connection {:.0} req/s, {CLIENTS} connections {:.0} req/s",
            requests_per_sec(n_requests, &serial),
            requests_per_sec(n_requests, &conc),
        );
        harness.finish();
    }
}
