//! Demonstrates the arrival-time-dependence pitfall the paper's
//! Section 1 raises against Yalcin & Hayes' hierarchical models:
//! per-pin delays measured in a fixed reference scenario, assembled
//! into a tuple *without joint validation*, can underapproximate true
//! delays — while HFTA's jointly-validated tuples never do.
//!
//! The binary searches seeded random circuits for a concrete
//! counterexample and prints the witness.
//!
//! Run with: `cargo run --release -p hfta-bench --bin pitfall`

use hfta_core::naive::{find_underapproximation, independent_relaxation_model};
use hfta_core::{CharacterizeOptions, ModelSource, ModuleTiming};
use hfta_netlist::gen::{random_circuit, GateMix, RandomCircuitSpec};

fn main() {
    let mut found = 0usize;
    let mut sound_violations = 0usize;
    let mut examined = 0usize;
    for seed in 0..400u64 {
        let spec = RandomCircuitSpec {
            inputs: 5,
            gates: 14,
            seed,
            locality: 6,
            global_fanin_prob: 0.3,
            mix: GateMix::NandHeavy,
        };
        let nl = random_circuit("pitfall", spec);
        let sound = ModuleTiming::characterize(
            &nl,
            ModelSource::Functional,
            CharacterizeOptions::default(),
        )
        .expect("characterizes");
        for (k, &out) in nl.outputs().iter().enumerate() {
            examined += 1;
            // The sound model must never underapproximate.
            if find_underapproximation(&nl, out, sound.model(k))
                .expect("analyzes")
                .is_some()
            {
                sound_violations += 1;
            }
            // The naive model eventually does.
            let naive = independent_relaxation_model(&nl, out, 16).expect("analyzes");
            if let Some(w) = find_underapproximation(&nl, out, &naive).expect("analyzes") {
                found += 1;
                if found == 1 {
                    println!("counterexample found (seed {seed}, output #{k}):");
                    println!("  naive tuple:     {}", naive.tuples()[0]);
                    println!(
                        "  arrivals:        {:?}",
                        w.arrivals
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                    );
                    println!("  naive claims stable by: {}", w.claimed);
                    println!("  true XBD0 arrival:      {}", w.actual);
                    println!("  sound HFTA model:       {}", sound.model(k));
                    println!();
                }
            }
        }
        if found >= 1 && seed >= 50 {
            break;
        }
    }
    println!("{examined} (circuit, output) pairs examined");
    println!("naive independently-assembled models underapproximated on {found} of them");
    println!("jointly-validated HFTA models underapproximated on {sound_violations} (must be 0)");
    assert_eq!(sound_violations, 0, "soundness violation!");
    assert!(found > 0, "pitfall demonstration found no counterexample");
}
