//! Timings behind **Table 1**: hierarchical (demand-driven) vs flat vs
//! topological analysis of carry-skip adder cascades.
//!
//! The paper's claim: on regular hierarchical circuits the flat
//! analyzer's cost explodes with size while hierarchical analysis
//! amortizes one block characterization across all instances.
//!
//! Run with `cargo run --release -p hfta-bench --bin carry_skip`; see
//! [`hfta_testkit::Harness`] for the environment knobs.

use hfta_core::{DemandDrivenAnalyzer, DemandOptions};
use hfta_fta::{DelayAnalyzer, TopoSta};
use hfta_netlist::gen::carry_skip_adder;
use hfta_netlist::Time;
use hfta_testkit::Harness;

fn main() {
    let mut harness = Harness::new("carry_skip");
    {
        let mut group = harness.group("table1_carry_skip");
        for bits in [8usize, 16, 32] {
            let name = format!("csa{bits}.2");
            let design = carry_skip_adder(bits, 2, Default::default());
            let flat = design.flatten(&name).expect("flattens");
            let arrivals = vec![Time::ZERO; 2 * bits + 1];

            group.bench(&format!("hier_demand/{bits}"), || {
                let mut an = DemandDrivenAnalyzer::new(&design, &name, DemandOptions::default())
                    .expect("valid");
                an.analyze(&arrivals).expect("analyzes").delay
            });
            group.bench(&format!("flat_xbd0/{bits}"), || {
                let mut an = DelayAnalyzer::new_sat(&flat, &arrivals).expect("valid");
                an.circuit_delay()
            });
            group.bench(&format!("topological/{bits}"), || {
                let sta = TopoSta::new(&flat).expect("valid");
                sta.circuit_delay(&arrivals)
            });
        }
    }
    harness.finish();
}
