//! Shared workloads and measurement helpers for the HFTA benchmark
//! harness.
//!
//! The binaries in `src/bin/` regenerate the paper's evaluation:
//!
//! * `table1` — carry-skip adders, hierarchical vs flat (Table 1);
//! * `table2` — partitioned ISCAS-like circuits (Table 2);
//! * `figures` — the Section 4 figures (timing-model polygon, stacked
//!   propagation, Figure 5 slacks, parametric delay series).
//!
//! The micro-benchmark binaries `carry_skip`, `iscas_like`, `engines`,
//! and `ablation` (also in `src/bin/`, built on
//! [`hfta_testkit::Harness`]) measure the same workloads plus the
//! ablations called out in DESIGN.md; run them with
//! `cargo run --release -p hfta-bench --bin <name>`.

use std::time::{Duration, Instant};

use hfta_core::{DemandDrivenAnalyzer, DemandOptions};
use hfta_fta::{DelayAnalyzer, TopoSta};
use hfta_netlist::gen::{carry_skip_adder, random_circuit, RandomCircuitSpec};
use hfta_netlist::partition::cascade_bipartition_min_cut;
use hfta_netlist::{Design, Netlist, Time};

/// A Table 1 configuration: the `csa n.m` family.
#[derive(Clone, Copy, Debug)]
pub struct CsaConfig {
    /// Total adder width in bits.
    pub bits: usize,
    /// Carry-skip block width in bits.
    pub block: usize,
}

impl CsaConfig {
    /// The paper-style circuit name `csa{n}.{m}`.
    #[must_use]
    pub fn name(&self) -> String {
        format!("csa{}.{}", self.bits, self.block)
    }
}

/// The Table 1 sweep: n ∈ {8, 16, 32, 64}, m ∈ {2, 4, 8}.
#[must_use]
pub fn table1_configs() -> Vec<CsaConfig> {
    let mut v = Vec::new();
    for bits in [8usize, 16, 32, 64] {
        for block in [2usize, 4, 8] {
            if bits % block == 0 && bits > block {
                v.push(CsaConfig { bits, block });
            }
        }
    }
    v
}

/// A Table 2 workload: an ISCAS-like random circuit sized after the
/// named ISCAS-85 benchmark.
#[derive(Clone, Debug)]
pub struct IscasLike {
    /// Display name (`c432_like`, …).
    pub name: String,
    /// Gate count of the original benchmark.
    pub gates: usize,
    /// Generator seed.
    pub seed: u64,
}

/// The Table 2 sweep: six circuits sized after C432…C2670.
#[must_use]
pub fn table2_workloads() -> Vec<IscasLike> {
    [
        ("c432_like", 160, 432),
        ("c499_like", 202, 499),
        ("c880_like", 383, 880),
        ("c1355_like", 546, 1355),
        ("c1908_like", 880, 1908),
        ("c2670_like", 1193, 2670),
    ]
    .into_iter()
    .map(|(name, gates, seed)| IscasLike {
        name: name.to_string(),
        gates,
        seed,
    })
    .collect()
}

/// Builds one ISCAS-like flat circuit.
#[must_use]
pub fn build_iscas_like(w: &IscasLike) -> Netlist {
    random_circuit(&w.name, RandomCircuitSpec::iscas_like(w.gates, w.seed))
}

/// Measures a closure's wall time alongside its result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Result row shared by the table binaries.
#[derive(Clone, Debug)]
pub struct Row {
    /// Circuit name.
    pub circuit: String,
    /// Gate count of the flattened circuit.
    pub gates: usize,
    /// Topological delay.
    pub topological: Time,
    /// Hierarchical (demand-driven) estimated delay.
    pub hier_delay: Time,
    /// Hierarchical CPU time.
    pub hier_cpu: Duration,
    /// Flat functional delay.
    pub flat_delay: Time,
    /// Flat CPU time.
    pub flat_cpu: Duration,
}

impl Row {
    /// Prints the table header.
    pub fn print_header() {
        println!(
            "{:<14} {:>6} | {:>6} | {:>6} {:>10} | {:>6} {:>10}",
            "circuit", "gates", "topo", "hier", "hier CPU", "flat", "flat CPU"
        );
        println!("{}", "-".repeat(72));
    }

    /// Prints one row.
    pub fn print(&self) {
        println!(
            "{:<14} {:>6} | {:>6} | {:>6} {:>9.3}s | {:>6} {:>9.3}s",
            self.circuit,
            self.gates,
            self.topological,
            self.hier_delay,
            self.hier_cpu.as_secs_f64(),
            self.flat_delay,
            self.flat_cpu.as_secs_f64(),
        );
    }
}

/// Runs the hierarchical (demand-driven, Section 5) vs flat comparison
/// on a depth-1 design and its flattened equivalent.
///
/// # Panics
///
/// Panics if the design or netlists are malformed (generator output
/// never is).
#[must_use]
pub fn compare(design: &Design, top_name: &str, flat: &Netlist) -> Row {
    let top = design.composite(top_name).expect("top module exists");
    let arrivals = vec![Time::ZERO; top.inputs().len()];

    let sta = TopoSta::new(flat).expect("acyclic");
    let flat_arrivals = vec![Time::ZERO; flat.inputs().len()];
    let topological = sta.circuit_delay(&flat_arrivals);

    let (hier_delay, hier_cpu) = timed(|| {
        let mut an = DemandDrivenAnalyzer::new(design, top_name, DemandOptions::default())
            .expect("valid design");
        an.analyze(&arrivals).expect("analysis succeeds").delay
    });

    let (flat_delay, flat_cpu) = timed(|| {
        let mut an = DelayAnalyzer::new_sat(flat, &flat_arrivals).expect("acyclic");
        an.circuit_delay()
    });

    Row {
        circuit: top_name.trim_end_matches("_top").to_string(),
        gates: flat.gate_count(),
        topological,
        hier_delay,
        hier_cpu,
        flat_delay,
        flat_cpu,
    }
}

/// Builds the Table 1 row for one adder configuration.
///
/// # Panics
///
/// Panics on malformed generator output (never happens).
#[must_use]
pub fn table1_row(cfg: &CsaConfig) -> Row {
    let design = carry_skip_adder(cfg.bits, cfg.block, Default::default());
    let flat = design
        .flatten(&cfg.name())
        .expect("generator output flattens");
    let mut row = compare(&design, &cfg.name(), &flat);
    row.circuit = cfg.name();
    row
}

/// Builds the Table 2 row for one ISCAS-like workload.
///
/// # Panics
///
/// Panics on malformed generator output (never happens).
#[must_use]
pub fn table2_row(w: &IscasLike) -> Row {
    let flat = build_iscas_like(w);
    // The paper partitions at a natural cascade boundary; the min-cut
    // sweep finds the narrowest crossing in the middle half.
    let design = cascade_bipartition_min_cut(&flat, 0.25, 0.75).expect("partitionable");
    let mut row = compare(&design, &format!("{}_top", w.name), &flat);
    row.circuit = w.name.clone();
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sweep_is_plausible() {
        let configs = table1_configs();
        assert!(configs.len() >= 9);
        assert!(configs.iter().any(|c| c.bits == 64 && c.block == 8));
        assert_eq!(CsaConfig { bits: 16, block: 4 }.name(), "csa16.4");
    }

    #[test]
    fn small_table1_row_matches_paper_shape() {
        let cfg = CsaConfig { bits: 8, block: 2 };
        let row = table1_row(&cfg);
        // Accuracy fully preserved: hier == flat < topological.
        assert_eq!(row.hier_delay, row.flat_delay);
        assert!(row.hier_delay < row.topological);
        assert_eq!(row.flat_delay, Time::new(16));
    }

    #[test]
    fn small_table2_row_is_conservative() {
        let w = IscasLike {
            name: "tiny".into(),
            gates: 120,
            seed: 7,
        };
        let row = table2_row(&w);
        assert!(row.hier_delay >= row.flat_delay);
        assert!(row.hier_delay <= row.topological);
    }
}
