//! Per-module timing abstractions — re-exported from `hfta-fta`.
//!
//! [`ModuleTiming`] moved into `hfta-fta` so the on-disk model
//! database (`hfta-modeldb`) can depend on the abstraction without
//! pulling in the hierarchical analyzers. This module keeps every
//! historical path alive: `hfta_core::module_timing::ModuleTiming`,
//! `hfta_core::ModuleTiming`, and friends all still resolve.

pub use hfta_fta::module_timing::{ModuleTiming, ParseModelError};
pub use hfta_fta::ModelSource;
