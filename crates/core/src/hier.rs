//! The two-step hierarchical analysis (Section 3 of the paper).
//!
//! Step 1 characterizes every *distinct* leaf module once into a
//! [`ModuleTiming`] (shared by all its instances — the source of the
//! large CPU savings on regular circuits like the carry-skip adders of
//! Table 1). Step 2 visits the instances of the top-level composite in
//! topological order, propagating arrival times through each instance
//! with the min–max evaluation of its output models.
//!
//! Theorem 1: the result is a conservative approximation of the flat
//! XBD0 delay — never optimistic — and at least as accurate as
//! hierarchical topological analysis. The integration test-suite checks
//! both bounds on every workload.

use std::borrow::Borrow;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hash};
use std::sync::Arc;
use std::time::Instant;

use hfta_fta::{
    AnalysisConfig, CharacterizeOptions, ConeSigCache, ModelDbSpec, PhaseWall, StabilityStats,
};
use hfta_modeldb::{ModelDb, ModelDbStats};
use hfta_netlist::{Composite, Design, Netlist, NetlistError, Time};
use hfta_sched::Scheduler;
use hfta_trace::{TraceSink, Tracer, Value};

use crate::deadline::DeadlineToken;
use crate::module_timing::{ModelSource, ModuleTiming};

fn micros_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Opens the `(use, emit)` database handles named by a
/// [`ModelDbSpec`]. The read handle tolerates a missing directory
/// (probes miss); the write handle creates its directory, so creation
/// failures surface as [`NetlistError::Io`].
pub(crate) fn open_model_dbs(
    spec: &ModelDbSpec,
) -> Result<(Option<ModelDb>, Option<ModelDb>), NetlistError> {
    let use_db = spec.read.as_ref().map(ModelDb::open_read_only);
    let emit_db = match &spec.write {
        Some(dir) => {
            let mut db = ModelDb::open(dir).map_err(|e| NetlistError::Io {
                path: dir.display().to_string(),
                message: e.to_string(),
            })?;
            db.set_limit(spec.limit);
            Some(db)
        }
        None => None,
    };
    Ok((use_db, emit_db))
}

/// Options for hierarchical analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HierOptions {
    /// Where leaf models come from (functional vs topological).
    pub source: ModelSource,
    /// Options of the underlying required-time characterization.
    pub characterize: CharacterizeOptions,
    /// Worker threads for step-1 characterization. `1` (the default)
    /// characterizes serially in instance order, sharing one signature
    /// cache across modules; more threads fan distinct modules out as
    /// per-module tasks on a persistent work-stealing pool, their
    /// private caches merging back deterministically in name order.
    pub threads: usize,
    /// Clamp [`HierOptions::threads`] to the machine's available
    /// parallelism when the analyzer creates its pool (on by default).
    /// A `threads_clamped` trace event records when the clamp bites.
    /// Pools injected via [`HierAnalyzer::set_scheduler`] are used
    /// as-is.
    pub clamp_threads: bool,
}

impl Default for HierOptions {
    fn default() -> HierOptions {
        HierOptions {
            source: ModelSource::default(),
            characterize: CharacterizeOptions::default(),
            threads: 1,
            clamp_threads: true,
        }
    }
}

impl HierOptions {
    /// Sets the leaf-model source.
    #[must_use]
    pub fn with_source(mut self, source: ModelSource) -> HierOptions {
        self.source = source;
        self
    }

    /// Sets the characterization options.
    #[must_use]
    pub fn with_characterize(mut self, characterize: CharacterizeOptions) -> HierOptions {
        self.characterize = characterize;
        self
    }

    /// Sets the characterization thread count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> HierOptions {
        self.threads = threads.max(1);
        self
    }

    /// Sets whether the thread count is clamped to the machine's
    /// available parallelism (on by default).
    #[must_use]
    pub fn with_thread_clamp(mut self, clamp: bool) -> HierOptions {
        self.clamp_threads = clamp;
        self
    }
}

impl From<&AnalysisConfig> for HierOptions {
    fn from(config: &AnalysisConfig) -> HierOptions {
        HierOptions {
            source: config.source,
            characterize: config.characterize_options(),
            threads: config.threads,
            clamp_threads: config.clamp_threads,
        }
    }
}

/// Work counters for the two-step analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HierStats {
    /// Distinct leaf modules characterized (cache misses).
    pub modules_characterized: u64,
    /// Modules whose characterization was degraded — wholesale to
    /// topological models by the analysis deadline, or partially (some
    /// outputs at their topological tuples) by the per-query budget.
    /// See [`HierAnalyzer::degraded_modules`] for the names.
    pub modules_degraded: u64,
    /// Instances propagated through.
    pub instances_propagated: u64,
    /// Modules whose every output was served by the structural
    /// signature cache from another module's characterization — the
    /// module name is effectively an alias (see
    /// [`HierAnalyzer::sig_aliases`]).
    pub modules_aliased: u64,
    /// Stability/solver work of all characterizations (zero for
    /// topological models and installed black-box abstractions).
    /// Includes the `cone_sig_hits`/`cone_sig_misses` counters of the
    /// structural signature cache.
    pub stability: StabilityStats,
}

/// Result of a hierarchical timing analysis.
#[derive(Clone, PartialEq, Debug)]
pub struct HierAnalysis {
    /// Arrival time of every top-level net (indexed like the
    /// composite's nets).
    pub net_arrivals: Vec<Time>,
    /// Arrival times of the primary outputs, in output order.
    pub output_arrivals: Vec<Time>,
    /// The estimated circuit delay: the latest output arrival.
    pub delay: Time,
    /// Work counters.
    pub stats: HierStats,
}

/// The two-step hierarchical analyzer.
///
/// # Example
///
/// ```
/// use hfta_core::{HierAnalyzer, HierOptions};
/// use hfta_netlist::gen::{carry_skip_adder, CsaDelays};
/// use hfta_netlist::Time;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = carry_skip_adder(4, 2, CsaDelays::default());
/// let mut hier = HierAnalyzer::new(&design, "csa4.2", HierOptions::default())?;
/// let analysis = hier.analyze(&vec![Time::ZERO; 9])?;
/// // The paper's Section 4 example: c4 arrives at 10.
/// assert_eq!(*analysis.output_arrivals.last().expect("c4"), Time::new(10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct HierAnalyzer<'a> {
    design: &'a Design,
    top: &'a Composite,
    opts: HierOptions,
    cache: HashMap<Arc<str>, ModuleTiming>,
    /// Module-name interner: cache keys, alias pairs and degradation
    /// records all share one `Arc<str>` per distinct name instead of
    /// cloning `String`s on every probe/insert.
    names: HashSet<Arc<str>>,
    /// Structural cone-signature cache shared by all characterizations
    /// of this analyzer (serial ones directly; parallel workers fill
    /// private caches that are merged back).
    sig_cache: ConeSigCache,
    /// `(alias, owner)` pairs: modules whose every output model was
    /// replayed from `owner`'s characterization.
    sig_aliases: Vec<(Arc<str>, Arc<str>)>,
    characterized: u64,
    stability: StabilityStats,
    /// Shared wall-clock cutoff for characterization, derived from the
    /// characterization budget's deadline. Workers check it before
    /// starting a module; the same deadline interrupts in-flight SAT
    /// queries from inside the solver.
    token: DeadlineToken,
    /// Names of modules whose characterization was degraded, with the
    /// reason ("deadline" or "budget").
    degraded: Vec<(Arc<str>, &'static str)>,
    wall: PhaseWall,
    /// Trace sink for `characterize_module` spans and `module_alias`
    /// events; disabled by default (zero-cost).
    trace: TraceSink,
    /// Persistent worker pool for parallel characterization: created
    /// once (first parallel phase) or injected, then reused across
    /// `characterize_all`/`analyze` calls.
    scheduler: Option<Scheduler>,
    /// The `threads_clamped` event is emitted at most once.
    clamp_reported: bool,
    /// Persistent model database probed before every characterization
    /// (warm start); hits are booked without counting a
    /// characterization.
    db_use: Option<ModelDb>,
    /// Persistent model database that freshly characterized,
    /// undegraded models are stored into.
    db_emit: Option<ModelDb>,
}

/// What characterizing one module produced.
#[derive(Debug)]
struct CharOutcome {
    timing: ModuleTiming,
    stats: StabilityStats,
    why: Option<&'static str>,
    /// Set when every output model was replayed from another module's
    /// characterization via the signature cache.
    alias_owner: Option<String>,
}

impl<'a> HierAnalyzer<'a> {
    /// Creates an analyzer for module `top` of `design`.
    ///
    /// The analysis requires the paper's depth-1 setting: `top` must be
    /// a composite whose instances all reference leaf modules.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Unknown`] if `top` is missing, is not a
    /// composite, or instantiates non-leaf modules; plus any design
    /// validation error.
    pub fn new(
        design: &'a Design,
        top: &str,
        opts: HierOptions,
    ) -> Result<HierAnalyzer<'a>, NetlistError> {
        design.validate()?;
        let top = design.composite(top).ok_or_else(|| NetlistError::Unknown {
            what: "top-level composite module",
            name: top.to_string(),
        })?;
        for inst in top.instances() {
            if design.leaf(&inst.module).is_none() {
                return Err(NetlistError::Unknown {
                    what: "leaf module (hierarchical analysis requires depth-1 hierarchy)",
                    name: inst.module.clone(),
                });
            }
        }
        Ok(HierAnalyzer {
            design,
            top,
            opts,
            cache: HashMap::new(),
            names: HashSet::new(),
            sig_cache: ConeSigCache::new(),
            sig_aliases: Vec::new(),
            characterized: 0,
            stability: StabilityStats::default(),
            token: DeadlineToken::new(opts.characterize.budget.deadline),
            degraded: Vec::new(),
            wall: PhaseWall::default(),
            trace: TraceSink::disabled(),
            scheduler: None,
            clamp_reported: false,
            db_use: None,
            db_emit: None,
        })
    }

    /// Creates an analyzer from the unified [`AnalysisConfig`]: model
    /// source, characterization budget/options, thread count and trace
    /// sink all come from `config`.
    ///
    /// # Errors
    ///
    /// Same as [`HierAnalyzer::new`].
    pub fn with_config(
        design: &'a Design,
        top: &str,
        config: &AnalysisConfig,
    ) -> Result<HierAnalyzer<'a>, NetlistError> {
        let mut an = HierAnalyzer::new(design, top, HierOptions::from(config))?;
        an.set_trace(config.trace.clone());
        if let Some(pool) = config.scheduler.get() {
            an.set_scheduler(pool.clone());
        }
        let (use_db, emit_db) = open_model_dbs(&config.model_db)?;
        an.db_use = use_db;
        an.db_emit = emit_db;
        Ok(an)
    }

    /// Attaches a persistent model database to warm-start from: it is
    /// probed before every characterization, and hits are installed
    /// without counting as characterizations (an unchanged design
    /// warm-starts with `modules_characterized == 0`).
    pub fn set_model_db_use(&mut self, db: ModelDb) {
        self.db_use = Some(db);
    }

    /// Attaches a persistent model database to store freshly
    /// characterized models into. Degraded models are never stored
    /// (see `hfta-modeldb`'s soundness rules).
    pub fn set_model_db_emit(&mut self, db: ModelDb) {
        self.db_emit = Some(db);
    }

    /// Counters of the attached model-database handles, merged across
    /// the read and emit sides (all zero when no database is
    /// attached). Hit/miss totals also flow into
    /// [`StabilityStats::model_db_hits`]/[`StabilityStats::model_db_misses`].
    #[must_use]
    pub fn model_db_stats(&self) -> ModelDbStats {
        let mut s = ModelDbStats::default();
        if let Some(db) = &self.db_use {
            s.merge(&db.stats());
        }
        if let Some(db) = &self.db_emit {
            s.merge(&db.stats());
        }
        s
    }

    /// Probes the persistent database for `name`'s model. On a hit the
    /// model is booked straight into the cache — no characterization
    /// counted — and the hit lands in
    /// [`StabilityStats::model_db_hits`].
    fn db_probe(&mut self, nl: &Netlist, name: &str, tracer: &mut Tracer) -> bool {
        let Some(db) = self.db_use.as_mut() else {
            return false;
        };
        match db.probe(nl, self.opts.source, &self.opts.characterize) {
            Some(timing) => {
                self.stability.model_db_hits += 1;
                if tracer.is_enabled() {
                    tracer.event("model_db_hit", vec![("module", Value::from(name))]);
                }
                let key = self.intern(name);
                self.cache.insert(key, timing);
                true
            }
            None => {
                self.stability.model_db_misses += 1;
                if tracer.is_enabled() {
                    tracer.event("model_db_miss", vec![("module", Value::from(name))]);
                }
                false
            }
        }
    }

    /// Offers a fresh characterization outcome to the emit database
    /// (which refuses degraded models).
    fn db_store(&mut self, nl: &Netlist, name: &str, outcome: &CharOutcome, tracer: &mut Tracer) {
        let Some(db) = self.db_emit.as_mut() else {
            return;
        };
        let stored = db.store(
            nl,
            self.opts.source,
            &self.opts.characterize,
            &outcome.timing,
            outcome.why.is_some(),
        );
        if stored && tracer.is_enabled() {
            tracer.event("model_db_store", vec![("module", Value::from(name))]);
        }
    }

    /// Installs a shared worker pool for parallel characterization.
    /// The pool is used as-is (no clamping — its size was decided by
    /// whoever built it) and kept for the analyzer's whole life, so
    /// several analyzers can share one set of workers.
    pub fn set_scheduler(&mut self, pool: Scheduler) {
        self.scheduler = Some(pool);
    }

    /// The worker pool parallel characterization runs on, if one
    /// exists yet (injected or lazily created by the first parallel
    /// phase).
    #[must_use]
    pub fn scheduler_handle(&self) -> Option<&Scheduler> {
        self.scheduler.as_ref()
    }

    /// The pool a parallel phase runs on, or `None` to run serially.
    /// An injected pool wins unchanged; otherwise the first parallel
    /// phase creates one with `threads` workers — clamped to the
    /// machine's parallelism unless [`HierOptions::clamp_threads`] is
    /// off — and the analyzer keeps it from then on.
    fn scheduler_for_phase(&mut self, threads: usize, tracer: &mut Tracer) -> Option<Scheduler> {
        if self.scheduler.is_none() && threads > 1 {
            let effective = hfta_sched::effective_parallelism(threads, self.opts.clamp_threads);
            if effective < threads && tracer.is_enabled() && !self.clamp_reported {
                self.clamp_reported = true;
                tracer.event(
                    "threads_clamped",
                    vec![
                        ("requested", Value::from(threads)),
                        ("effective", Value::from(effective)),
                        (
                            "available",
                            Value::from(hfta_sched::available_parallelism()),
                        ),
                    ],
                );
            }
            if effective > 1 {
                self.scheduler = Some(Scheduler::new(effective));
            }
        }
        self.scheduler.clone().filter(|pool| pool.threads() > 1)
    }

    /// Installs a trace sink; subsequent characterizations record
    /// `characterize_module` spans (and the characterizer's own spans
    /// and events) into it. A disabled sink (the default) costs
    /// nothing.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Interns a module name, so every cache key, alias pair and
    /// degradation record for the same module shares one allocation.
    fn intern(&mut self, name: &str) -> Arc<str> {
        if let Some(existing) = self.names.get(name) {
            return Arc::clone(existing);
        }
        let fresh: Arc<str> = Arc::from(name);
        self.names.insert(Arc::clone(&fresh));
        fresh
    }

    /// Stability/solver work accumulated by all characterizations so
    /// far.
    #[must_use]
    pub fn stability_stats(&self) -> StabilityStats {
        let mut s = self.stability;
        s.wall = self.wall;
        s
    }

    /// Modules whose characterization was degraded, with the reason:
    /// `"deadline"` (the analysis deadline expired before the module
    /// was characterized — its model is wholly topological) or
    /// `"budget"` (the per-query budget interrupted some outputs —
    /// those outputs fell back to their topological tuples).
    #[must_use]
    pub fn degraded_modules(&self) -> &[(Arc<str>, &'static str)] {
        &self.degraded
    }

    /// `(alias, owner)` pairs recorded by the structural signature
    /// cache: every output model of `alias` was replayed from `owner`'s
    /// characterization, so the alias name cost no solver work of its
    /// own.
    #[must_use]
    pub fn sig_aliases(&self) -> &[(Arc<str>, Arc<str>)] {
        &self.sig_aliases
    }

    /// Characterizes one module under this analyzer's options, checking
    /// the deadline token first: an expired deadline degrades the whole
    /// module to its topological model (counted per output in
    /// [`StabilityStats::degraded`]).
    fn characterize_one(
        nl: &Netlist,
        name: &str,
        opts: &HierOptions,
        token: &DeadlineToken,
        sig_cache: &mut ConeSigCache,
        tracer: &mut Tracer,
    ) -> Result<CharOutcome, NetlistError> {
        let span = tracer
            .is_enabled()
            .then(|| tracer.begin("characterize_module"));
        let result = HierAnalyzer::characterize_one_impl(nl, opts, token, sig_cache, tracer);
        if let Some(span) = span {
            match &result {
                Ok(outcome) => {
                    if let Some(owner) = outcome.alias_owner.as_deref() {
                        tracer.event(
                            "module_alias",
                            vec![("module", Value::from(name)), ("owner", Value::from(owner))],
                        );
                    }
                    tracer.end_with(
                        span,
                        vec![
                            ("module", Value::from(name)),
                            ("outputs", Value::from(outcome.timing.models().len())),
                            ("degraded", Value::from(outcome.why.unwrap_or("no"))),
                            ("aliased", Value::from(outcome.alias_owner.is_some())),
                        ],
                    );
                }
                Err(_) => tracer.end_with(span, vec![("module", Value::from(name))]),
            }
        }
        result
    }

    /// The untraced characterization body of [`HierAnalyzer::characterize_one`].
    fn characterize_one_impl(
        nl: &Netlist,
        opts: &HierOptions,
        token: &DeadlineToken,
        sig_cache: &mut ConeSigCache,
        tracer: &mut Tracer,
    ) -> Result<CharOutcome, NetlistError> {
        let name = nl.name();
        let wants_functional = opts.source == ModelSource::Functional;
        if wants_functional && token.expired() {
            let (timing, mut stats) = ModuleTiming::characterize_with_stats(
                nl,
                ModelSource::Topological,
                opts.characterize,
            )?;
            stats.degraded += nl.outputs().len() as u64;
            return Ok(CharOutcome {
                timing,
                stats,
                why: Some("deadline"),
                alias_owner: None,
            });
        }
        let (timing, stats, owners) = ModuleTiming::characterize_traced(
            nl,
            opts.source,
            opts.characterize,
            sig_cache,
            tracer,
        )?;
        let why = (wants_functional && stats.degraded > 0).then_some("budget");
        // The module is an alias when every output was replayed from
        // one (other) module's characterization.
        let alias_owner = match owners.first() {
            Some(Some(owner))
                if owner != name && owners.iter().all(|o| o.as_deref() == Some(owner)) =>
            {
                Some(owner.clone())
            }
            _ => None,
        };
        Ok(CharOutcome {
            timing,
            stats,
            why,
            alias_owner,
        })
    }

    /// Step 1 for all distinct leaf modules referenced by the top
    /// composite, serial or parallel per [`HierOptions::threads`].
    /// [`HierAnalyzer::analyze`] calls this lazily; calling it eagerly
    /// separates characterization cost from propagation cost (useful
    /// for the paper's "analyze the same circuit under many
    /// arrival-time conditions" scenario, Section 3.3).
    ///
    /// With `threads == 1` modules are characterized serially in
    /// instance order, sharing this analyzer's signature cache
    /// directly; with more threads, distinct uncached modules fan out
    /// to scoped workers (characterizations are independent) whose
    /// private caches merge back deterministically in chunk order.
    ///
    /// # Errors
    ///
    /// Returns the first characterization error.
    pub fn characterize_all(&mut self) -> Result<(), NetlistError> {
        if self.opts.threads > 1 {
            return self.characterize_parallel(self.opts.threads);
        }
        let top = self.top;
        for inst in top.instances() {
            self.module_timing(&inst.module)?;
        }
        Ok(())
    }

    /// The parallel step-1 fan-out: one task per distinct uncached
    /// module on the persistent pool. Each task owns a clone of its
    /// leaf netlist (persistent workers need `'static` tasks), a
    /// private signature cache and a forked tracer; caches and trace
    /// buffers merge back deterministically in sorted-name order, so
    /// the result is independent of how the pool schedules the tasks.
    fn characterize_parallel(&mut self, threads: usize) -> Result<(), NetlistError> {
        let design = self.design;
        let mut names: Vec<&str> = self
            .top
            .instances()
            .iter()
            .map(|i| i.module.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names.retain(|n| !self.cache.contains_key(*n));
        // Warm start: serve what the persistent database already has
        // (serially — probes are I/O + validation, far cheaper than
        // characterization) and fan out only the true misses.
        if self.db_use.is_some() && !names.is_empty() {
            let mut tracer = self.trace.tracer();
            let mut remaining = Vec::with_capacity(names.len());
            for &name in &names {
                let nl = design.leaf(name).ok_or_else(|| NetlistError::Unknown {
                    what: "leaf module",
                    name: name.to_string(),
                })?;
                if !self.db_probe(nl, name, &mut tracer) {
                    remaining.push(name);
                }
            }
            self.trace.absorb(tracer);
            names = remaining;
        }
        if names.is_empty() {
            return Ok(());
        }
        let opts = self.opts;
        let mut tracer = self.trace.tracer();
        let pool = self.scheduler_for_phase(threads, &mut tracer);
        let t0 = Instant::now();
        struct CharTask {
            name: String,
            nl: Netlist,
            opts: HierOptions,
            token: DeadlineToken,
            tracer: Tracer,
        }
        type TaskOut = (
            String,
            Result<CharOutcome, NetlistError>,
            ConeSigCache,
            Tracer,
        );
        let run = |mut task: CharTask| -> TaskOut {
            let mut sig_cache = ConeSigCache::new();
            let r = HierAnalyzer::characterize_one(
                &task.nl,
                &task.name,
                &task.opts,
                &task.token,
                &mut sig_cache,
                &mut task.tracer,
            );
            (task.name, r, sig_cache, task.tracer)
        };
        let mut tasks = Vec::with_capacity(names.len());
        for (i, &name) in names.iter().enumerate() {
            let nl = design
                .leaf(name)
                .ok_or_else(|| NetlistError::Unknown {
                    what: "leaf module",
                    name: name.to_string(),
                })?
                .clone();
            tasks.push(CharTask {
                name: name.to_string(),
                nl,
                opts,
                token: self.token.clone(),
                tracer: tracer.fork(i as u32 + 1),
            });
        }
        let results: Vec<TaskOut> = match pool {
            Some(pool) if tasks.len() > 1 => pool.run(tasks, run),
            _ => tasks.into_iter().map(run).collect(),
        };
        self.wall.characterize_micros += micros_since(t0);
        for (name, result, sig_cache, task_tracer) in results {
            tracer.absorb(task_tracer);
            self.sig_cache.merge(sig_cache);
            let outcome = result?;
            if self.db_emit.is_some() {
                if let Some(nl) = design.leaf(&name) {
                    self.db_store(nl, &name, &outcome, &mut tracer);
                }
            }
            self.record(&name, outcome);
        }
        self.trace.absorb(tracer);
        Ok(())
    }

    /// Books one characterization outcome into the analyzer's caches,
    /// counters and alias/degradation records.
    fn record(&mut self, name: &str, outcome: CharOutcome) {
        let key = self.intern(name);
        self.characterized += 1;
        self.stability.merge(&outcome.stats);
        if let Some(why) = outcome.why {
            self.degraded.push((Arc::clone(&key), why));
        }
        if let Some(owner) = outcome.alias_owner.as_deref() {
            let owner = self.intern(owner);
            self.sig_aliases.push((Arc::clone(&key), owner));
        }
        self.cache.insert(key, outcome.timing);
    }

    /// The (cached) timing abstraction of a leaf module.
    ///
    /// # Errors
    ///
    /// Returns characterization errors.
    pub fn module_timing(&mut self, name: &str) -> Result<&ModuleTiming, NetlistError> {
        if !self.cache.contains_key(name) {
            let design = self.design;
            let nl = design.leaf(name).ok_or_else(|| NetlistError::Unknown {
                what: "leaf module",
                name: name.to_string(),
            })?;
            let mut tracer = self.trace.tracer();
            if self.db_probe(nl, name, &mut tracer) {
                self.trace.absorb(tracer);
                return Ok(&self.cache[name]);
            }
            let t0 = Instant::now();
            let outcome = HierAnalyzer::characterize_one(
                nl,
                name,
                &self.opts,
                &self.token,
                &mut self.sig_cache,
                &mut tracer,
            );
            self.wall.characterize_micros += micros_since(t0);
            if let Ok(outcome) = &outcome {
                self.db_store(nl, name, outcome, &mut tracer);
            }
            self.trace.absorb(tracer);
            self.record(name, outcome?);
        }
        Ok(&self.cache[name])
    }

    /// Injects a pre-built abstraction (e.g. a black-box IP model
    /// loaded from text), bypassing characterization for that module.
    pub fn install_model(&mut self, timing: ModuleTiming) {
        let key = self.intern(timing.module());
        self.cache.insert(key, timing);
    }

    /// Step 2: propagates the given primary-input arrivals through the
    /// instance DAG.
    ///
    /// # Errors
    ///
    /// Returns characterization or composite-ordering errors.
    ///
    /// # Panics
    ///
    /// Panics if `pi_arrivals.len()` differs from the top-level input
    /// count.
    pub fn analyze(&mut self, pi_arrivals: &[Time]) -> Result<HierAnalysis, NetlistError> {
        self.characterize_all()?;
        if self.trace.is_enabled() && self.opts.characterize.shared_solver {
            let s = self.stability_stats();
            let mut tracer = self.trace.tracer();
            tracer.event(
                "shared_solver_stats",
                vec![
                    ("domains_built", Value::from(s.domains_built)),
                    ("clauses_subsumed", Value::from(s.clauses_subsumed)),
                    ("learnts_imported", Value::from(s.learnts_imported)),
                ],
            );
            self.trace.absorb(tracer);
        }
        let before = self.characterized;
        let t0 = Instant::now();
        let result = propagate(self.top, &self.cache, pi_arrivals)?;
        self.wall.propagate_micros += micros_since(t0);
        debug_assert_eq!(before, self.characterized, "analyze must not characterize");
        Ok(HierAnalysis {
            stats: HierStats {
                modules_characterized: self.characterized,
                modules_degraded: self.degraded.len() as u64,
                instances_propagated: result.stats.instances_propagated,
                modules_aliased: self.sig_aliases.len() as u64,
                stability: self.stability_stats(),
            },
            ..result
        })
    }
}

/// Pure step-2 propagation given a complete model table.
///
/// # Errors
///
/// Returns [`NetlistError::Unknown`] if a module's model is missing and
/// composite-ordering errors.
///
/// # Panics
///
/// Panics if `pi_arrivals.len()` differs from the composite's input
/// count.
pub fn propagate<K, S>(
    top: &Composite,
    models: &HashMap<K, ModuleTiming, S>,
    pi_arrivals: &[Time],
) -> Result<HierAnalysis, NetlistError>
where
    K: Borrow<str> + Eq + Hash,
    S: BuildHasher,
{
    assert_eq!(
        pi_arrivals.len(),
        top.inputs().len(),
        "arrival vector length mismatch"
    );
    let mut arrivals = vec![Time::NEG_INF; top.net_count()];
    for (k, &pi) in top.inputs().iter().enumerate() {
        arrivals[pi.index()] = pi_arrivals[k];
    }
    let order = top.instance_topo_order()?;
    let mut propagated = 0u64;
    for idx in order {
        let inst = &top.instances()[idx];
        let timing = models
            .get(inst.module.as_str())
            .ok_or_else(|| NetlistError::Unknown {
                what: "timing model",
                name: inst.module.clone(),
            })?;
        let in_arr: Vec<Time> = inst.inputs.iter().map(|n| arrivals[n.index()]).collect();
        let out_times = timing.output_stable_times(&in_arr);
        for (&net, time) in inst.outputs.iter().zip(out_times) {
            arrivals[net.index()] = time;
        }
        propagated += 1;
    }
    let output_arrivals: Vec<Time> = top.outputs().iter().map(|&n| arrivals[n.index()]).collect();
    let delay = output_arrivals
        .iter()
        .copied()
        .fold(Time::NEG_INF, Time::max);
    Ok(HierAnalysis {
        net_arrivals: arrivals,
        output_arrivals,
        delay,
        stats: HierStats {
            modules_characterized: 0,
            modules_degraded: 0,
            instances_propagated: propagated,
            modules_aliased: 0,
            stability: StabilityStats::default(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, CsaDelays};

    fn t(v: i64) -> Time {
        Time::new(v)
    }

    /// The full Section 4 walkthrough: the 4-bit cascade of two 2-bit
    /// blocks, all inputs at 0.
    #[test]
    fn section4_example() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut hier = HierAnalyzer::new(&design, "csa4.2", HierOptions::default()).unwrap();
        let analysis = hier.analyze(&[t(0); 9]).unwrap();
        let top = design.composite("csa4.2").unwrap();
        // Intermediate carry (the paper's tmp) arrives at 8.
        let tmp = top.find_net("c2").unwrap();
        assert_eq!(analysis.net_arrivals[tmp.index()], t(8));
        // c4 arrives at 10, matching flat analysis.
        let c4 = top.find_net("c4").unwrap();
        assert_eq!(analysis.net_arrivals[c4.index()], t(10));
        // One distinct module characterized, two instances propagated.
        assert_eq!(analysis.stats.modules_characterized, 1);
        assert_eq!(analysis.stats.instances_propagated, 2);
    }

    /// Parametric claim: the last carry of an n-block cascade arrives
    /// at 8 + 2(n−1) — "parametric analysis like this is not possible
    /// with flat analysis".
    #[test]
    fn parametric_carry_formula() {
        for blocks in 1usize..=8 {
            let n = blocks * 2;
            let name = format!("csa{n}.2");
            let design = carry_skip_adder(n, 2, CsaDelays::default());
            let mut hier = HierAnalyzer::new(&design, &name, HierOptions::default()).unwrap();
            let analysis = hier.analyze(&vec![t(0); 2 * n + 1]).unwrap();
            let top = design.composite(&name).unwrap();
            let carry = top.find_net(&format!("c{n}")).unwrap();
            assert_eq!(
                analysis.net_arrivals[carry.index()],
                t(8 + 2 * (blocks as i64 - 1)),
                "blocks={blocks}"
            );
        }
    }

    /// Topological models give the classic (pessimistic) hierarchical
    /// result.
    #[test]
    fn topological_models_are_pessimistic() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let opts = HierOptions {
            source: ModelSource::Topological,
            ..HierOptions::default()
        };
        let mut hier = HierAnalyzer::new(&design, "csa4.2", opts).unwrap();
        let analysis = hier.analyze(&[t(0); 9]).unwrap();
        let top = design.composite("csa4.2").unwrap();
        let c4 = top.find_net("c4").unwrap();
        // Topological: c2 at 8, then 6 more through the second block.
        assert_eq!(analysis.net_arrivals[c4.index()], t(14));
    }

    /// Installing a black-box model skips characterization entirely.
    #[test]
    fn installed_model_bypasses_characterization() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let block = design.leaf("csa_block2").unwrap();
        let timing = ModuleTiming::characterize(
            block,
            ModelSource::Functional,
            CharacterizeOptions::default(),
        )
        .unwrap();
        let mut hier = HierAnalyzer::new(&design, "csa4.2", HierOptions::default()).unwrap();
        hier.install_model(timing);
        let analysis = hier.analyze(&[t(0); 9]).unwrap();
        assert_eq!(analysis.stats.modules_characterized, 0);
        assert_eq!(analysis.delay, t(12));
    }

    #[test]
    fn non_composite_top_rejected() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let err = HierAnalyzer::new(&design, "csa_block2", HierOptions::default()).unwrap_err();
        assert!(matches!(err, NetlistError::Unknown { .. }));
        let err = HierAnalyzer::new(&design, "ghost", HierOptions::default()).unwrap_err();
        assert!(matches!(err, NetlistError::Unknown { .. }));
    }

    /// Different arrival-time conditions reuse the characterization
    /// (Section 3.3, second scenario).
    #[test]
    fn characterization_shared_across_arrival_conditions() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut hier = HierAnalyzer::new(&design, "csa8.2", HierOptions::default()).unwrap();
        let a1 = hier.analyze(&[t(0); 17]).unwrap();
        let mut skewed = vec![t(0); 17];
        skewed[0] = t(5);
        let a2 = hier.analyze(&skewed).unwrap();
        assert_eq!(a1.stats.modules_characterized, 1);
        assert_eq!(a2.stats.modules_characterized, 1, "no re-characterization");
        assert!(a2.delay >= a1.delay - t(100)); // both computed fine
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_block, CsaDelays};
    use hfta_netlist::{Composite, Design};

    /// A design with several distinct block flavours, to give the
    /// parallel characterizer real fan-out.
    fn multi_flavour_design() -> Design {
        let mut design = Design::new();
        let flavours = [
            CsaDelays {
                and_or: 1,
                xor: 2,
                mux: 2,
            },
            CsaDelays {
                and_or: 1,
                xor: 3,
                mux: 2,
            },
            CsaDelays {
                and_or: 2,
                xor: 2,
                mux: 3,
            },
            CsaDelays {
                and_or: 1,
                xor: 2,
                mux: 4,
            },
        ];
        let mut top = Composite::new("mixed");
        let mut carry = top.add_input("c_in");
        let mut outputs_so_far = 0usize;
        for (k, &d) in flavours.iter().enumerate() {
            let mut block = carry_skip_block(2, d);
            block.set_name(format!("blk{k}"));
            design.add_leaf(block).unwrap();
            let mut ins = vec![carry];
            for i in 0..2 {
                ins.push(top.add_input(format!("a{k}_{i}")));
                ins.push(top.add_input(format!("b{k}_{i}")));
            }
            let s0 = top.add_net(format!("s{k}_0"));
            let s1 = top.add_net(format!("s{k}_1"));
            let c = top.add_net(format!("c{k}"));
            top.add_instance(format!("u{k}"), format!("blk{k}"), &ins, &[s0, s1, c]);
            top.mark_output(s0);
            top.mark_output(s1);
            outputs_so_far += 2;
            carry = c;
        }
        top.mark_output(carry);
        let _ = outputs_so_far;
        design.add_composite(top).unwrap();
        design
    }

    #[test]
    fn parallel_equals_serial() {
        let design = multi_flavour_design();
        let arrivals = vec![Time::ZERO; 17];

        let mut serial = HierAnalyzer::new(&design, "mixed", HierOptions::default()).unwrap();
        let s = serial.analyze(&arrivals).unwrap();

        // clamp off: the pool must really run multi-worker even on
        // machines with fewer cores than requested threads.
        let opts = HierOptions::default()
            .with_threads(4)
            .with_thread_clamp(false);
        let mut parallel = HierAnalyzer::new(&design, "mixed", opts).unwrap();
        parallel.characterize_all().unwrap();
        let p = parallel.analyze(&arrivals).unwrap();

        assert_eq!(s.delay, p.delay);
        assert_eq!(s.output_arrivals, p.output_arrivals);
        assert_eq!(p.stats.modules_characterized, 4);
    }

    /// An already-expired analysis deadline degrades every module to
    /// its topological model — same answer as asking for topological
    /// models outright, with the degradation recorded.
    #[test]
    fn expired_deadline_degrades_all_modules() {
        use hfta_fta::SolveBudget;

        let design = multi_flavour_design();
        let arrivals = vec![Time::ZERO; 17];
        let mut opts = HierOptions::default().with_threads(4);
        opts.characterize.budget = SolveBudget::default().with_deadline(std::time::Instant::now());
        let mut capped = HierAnalyzer::new(&design, "mixed", opts).unwrap();
        capped.characterize_all().unwrap();
        let c = capped.analyze(&arrivals).unwrap();
        assert_eq!(c.stats.modules_degraded, 4);
        assert!(c.stats.stability.degraded > 0);
        assert!(capped
            .degraded_modules()
            .iter()
            .all(|(_, why)| *why == "deadline"));

        let topo_opts = HierOptions {
            source: crate::ModelSource::Topological,
            ..HierOptions::default()
        };
        let mut topo = HierAnalyzer::new(&design, "mixed", topo_opts).unwrap();
        let t = topo.analyze(&arrivals).unwrap();
        assert_eq!(c.delay, t.delay);
        assert_eq!(c.output_arrivals, t.output_arrivals);
        // Topological models themselves are never "degraded".
        assert_eq!(t.stats.modules_degraded, 0);

        // And the functional result is at least as sharp.
        let mut full = HierAnalyzer::new(&design, "mixed", HierOptions::default()).unwrap();
        let f = full.analyze(&arrivals).unwrap();
        assert!(f.delay <= c.delay);
        assert_eq!(f.stats.modules_degraded, 0);
    }

    /// A zero-conflict per-query budget degrades outputs (not whole
    /// modules) but keeps the result sandwiched.
    #[test]
    fn zero_conflict_budget_degrades_outputs() {
        use hfta_fta::SolveBudget;

        let design = multi_flavour_design();
        let arrivals = vec![Time::ZERO; 17];
        let mut opts = HierOptions::default();
        opts.characterize.budget = SolveBudget::default().with_conflicts(0);
        let mut capped = HierAnalyzer::new(&design, "mixed", opts).unwrap();
        let c = capped.analyze(&arrivals).unwrap();
        assert!(c.stats.stability.degraded > 0);
        assert!(c.stats.modules_degraded > 0);
        assert!(capped
            .degraded_modules()
            .iter()
            .all(|(_, why)| *why == "budget"));

        let mut full = HierAnalyzer::new(&design, "mixed", HierOptions::default()).unwrap();
        let f = full.analyze(&arrivals).unwrap();
        let topo_opts = HierOptions {
            source: crate::ModelSource::Topological,
            ..HierOptions::default()
        };
        let mut topo = HierAnalyzer::new(&design, "mixed", topo_opts).unwrap();
        let t = topo.analyze(&arrivals).unwrap();
        assert!(c.delay >= f.delay);
        assert!(c.delay <= t.delay);
    }

    /// A cascade of structurally identical blocks under distinct
    /// module names — shareable only through cone signatures.
    fn replicated_design(copies: usize) -> Design {
        let mut design = Design::new();
        let mut top = Composite::new("rep");
        let mut carry = top.add_input("c_in");
        for k in 0..copies {
            let mut block = carry_skip_block(2, CsaDelays::default());
            block.set_name(format!("blk{k}"));
            design.add_leaf(block).unwrap();
            let mut ins = vec![carry];
            for i in 0..2 {
                ins.push(top.add_input(format!("a{k}_{i}")));
                ins.push(top.add_input(format!("b{k}_{i}")));
            }
            let s0 = top.add_net(format!("s{k}_0"));
            let s1 = top.add_net(format!("s{k}_1"));
            let c = top.add_net(format!("c{k}"));
            top.add_instance(format!("u{k}"), format!("blk{k}"), &ins, &[s0, s1, c]);
            top.mark_output(s0);
            top.mark_output(s1);
            carry = c;
        }
        top.mark_output(carry);
        design.add_composite(top).unwrap();
        design
    }

    /// Signature sharing must not perturb results whichever schedule
    /// produces the models: parallel characterization of a replicated
    /// design stays bit-identical to the serial path, per module and
    /// for the whole analysis.
    #[test]
    fn parallel_signature_sharing_equals_serial() {
        let copies = 4usize;
        let design = replicated_design(copies);
        let arrivals = vec![Time::ZERO; 4 * copies + 1];

        let mut serial = HierAnalyzer::new(&design, "rep", HierOptions::default()).unwrap();
        let s = serial.analyze(&arrivals).unwrap();

        let opts = HierOptions::default()
            .with_threads(4)
            .with_thread_clamp(false);
        let mut parallel = HierAnalyzer::new(&design, "rep", opts).unwrap();
        parallel.characterize_all().unwrap();
        let p = parallel.analyze(&arrivals).unwrap();

        assert_eq!(s.delay, p.delay);
        assert_eq!(s.output_arrivals, p.output_arrivals);
        for k in 0..copies {
            let name = format!("blk{k}");
            let sm = serial.module_timing(&name).unwrap().clone();
            let pm = parallel.module_timing(&name).unwrap().clone();
            assert_eq!(sm, pm, "models diverged for {name}");
        }
        // The serial path shares one characterization across all
        // copies. (The parallel path may alias fewer — workers race to
        // publish — which is why the equality above is on the models.)
        assert_eq!(s.stats.modules_aliased, copies as u64 - 1);
    }

    #[test]
    fn parallel_skips_cached_modules() {
        let design = multi_flavour_design();
        let mut an =
            HierAnalyzer::new(&design, "mixed", HierOptions::default().with_threads(2)).unwrap();
        an.characterize_all().unwrap();
        // Second call is a no-op.
        an.characterize_all().unwrap();
        let analysis = an.analyze(&[Time::ZERO; 17]).unwrap();
        assert_eq!(analysis.stats.modules_characterized, 4);
    }

    /// Tracing is an observer: with a sink installed the analysis stays
    /// bit-identical (serial and parallel), and the trace carries the
    /// promised `characterize_module` spans and `module_alias` events.
    #[test]
    fn traced_hier_is_bit_identical_and_records() {
        use hfta_fta::AnalysisConfig;
        use hfta_trace::TraceSink;

        let copies = 4usize;
        let design = replicated_design(copies);
        let arrivals = vec![Time::ZERO; 4 * copies + 1];

        let mut plain = HierAnalyzer::new(&design, "rep", HierOptions::default()).unwrap();
        let want = plain.analyze(&arrivals).unwrap();

        for threads in [1usize, 4] {
            let sink = TraceSink::enabled();
            let config = AnalysisConfig::default()
                .with_threads(threads)
                .with_trace(sink.clone());
            let mut traced = HierAnalyzer::with_config(&design, "rep", &config).unwrap();
            let got = traced.analyze(&arrivals).unwrap();
            assert_eq!(got.delay, want.delay, "threads={threads}");
            assert_eq!(got.output_arrivals, want.output_arrivals);
            let trace = sink.drain();
            let names: Vec<&str> = trace.records().iter().map(|r| r.name).collect();
            assert!(
                names
                    .iter()
                    .filter(|n| **n == "characterize_module")
                    .count()
                    >= 1,
                "threads={threads}: {names:?}"
            );
            if threads == 1 {
                // Serial sharing replays copies−1 modules from the
                // first characterization — each records an alias event.
                assert_eq!(
                    names.iter().filter(|n| **n == "module_alias").count(),
                    copies - 1
                );
            }
        }
    }
}
