//! Incremental re-analysis (Section 3.3).
//!
//! Once a leaf module's timing model is computed it stays valid no
//! matter what changes elsewhere, so a module edit only requires (1)
//! re-characterizing the edited module and (2) re-running the cheap
//! top-level propagation. [`IncrementalAnalyzer`] owns the design and a
//! content-hash-keyed model cache to deliver exactly that contract —
//! compare with flat analysis, where any edit invalidates everything.

use std::collections::HashMap;

use hfta_netlist::{Design, Netlist, NetlistError, Time};

use crate::hier::{propagate, HierAnalysis, HierOptions, HierStats};
use crate::module_timing::ModuleTiming;

/// A session of repeated analyses over an evolving design.
///
/// # Example
///
/// ```
/// use hfta_core::IncrementalAnalyzer;
/// use hfta_netlist::gen::{carry_skip_adder, CsaDelays};
/// use hfta_netlist::Time;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = carry_skip_adder(8, 2, CsaDelays::default());
/// let mut session = IncrementalAnalyzer::new(design, "csa8.2", Default::default())?;
/// let first = session.analyze(&vec![Time::ZERO; 17])?;
/// let again = session.analyze(&vec![Time::ZERO; 17])?;
/// assert_eq!(first.delay, again.delay);
/// assert_eq!(session.characterizations(), 1); // cache hit on re-run
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct IncrementalAnalyzer {
    design: Design,
    top: String,
    opts: HierOptions,
    /// Model cache keyed by module name; the hash detects edits.
    cache: HashMap<String, (u64, ModuleTiming)>,
    characterizations: u64,
}

impl IncrementalAnalyzer {
    /// Creates a session for module `top` of `design` (depth-1
    /// hierarchy).
    ///
    /// # Errors
    ///
    /// Returns validation errors and [`NetlistError::Unknown`] if `top`
    /// is missing, not a composite, or instantiates non-leaf modules.
    pub fn new(
        design: Design,
        top: impl Into<String>,
        opts: HierOptions,
    ) -> Result<IncrementalAnalyzer, NetlistError> {
        let top = top.into();
        design.validate()?;
        let composite = design
            .composite(&top)
            .ok_or_else(|| NetlistError::Unknown {
                what: "top-level composite module",
                name: top.clone(),
            })?;
        for inst in composite.instances() {
            if design.leaf(&inst.module).is_none() {
                return Err(NetlistError::Unknown {
                    what: "leaf module (incremental analysis requires depth-1 hierarchy)",
                    name: inst.module.clone(),
                });
            }
        }
        Ok(IncrementalAnalyzer {
            design,
            top,
            opts,
            cache: HashMap::new(),
            characterizations: 0,
        })
    }

    /// The current design.
    #[must_use]
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Total characterizations performed across the session — the
    /// number the incremental contract keeps small.
    #[must_use]
    pub fn characterizations(&self) -> u64 {
        self.characterizations
    }

    /// Replaces the body of a leaf module (same name, same ports). Its
    /// stale model is re-characterized on the next [`Self::analyze`];
    /// all other modules' models stay valid.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Unknown`] if no leaf of that name
    /// exists.
    pub fn replace_module(&mut self, netlist: Netlist) -> Result<(), NetlistError> {
        self.design.replace_leaf(netlist)
    }

    /// Analyzes the design under the given top-level arrivals, reusing
    /// every cached model whose module is unchanged.
    ///
    /// # Errors
    ///
    /// Returns characterization or propagation errors.
    ///
    /// # Panics
    ///
    /// Panics if `pi_arrivals.len()` differs from the top-level input
    /// count.
    pub fn analyze(&mut self, pi_arrivals: &[Time]) -> Result<HierAnalysis, NetlistError> {
        let composite = self
            .design
            .composite(&self.top)
            .expect("validated in constructor");
        // Refresh stale / missing models.
        let mut fresh: HashMap<String, ModuleTiming> = HashMap::new();
        for inst in composite.instances() {
            if fresh.contains_key(&inst.module) {
                continue;
            }
            let leaf = self
                .design
                .leaf(&inst.module)
                .ok_or_else(|| NetlistError::Unknown {
                    what: "leaf module",
                    name: inst.module.clone(),
                })?;
            let hash = leaf.content_hash();
            let cached = self
                .cache
                .get(&inst.module)
                .filter(|(h, _)| *h == hash)
                .map(|(_, m)| m.clone());
            let timing = match cached {
                Some(m) => m,
                None => {
                    let m =
                        ModuleTiming::characterize(leaf, self.opts.source, self.opts.characterize)?;
                    self.characterizations += 1;
                    self.cache.insert(inst.module.clone(), (hash, m.clone()));
                    m
                }
            };
            fresh.insert(inst.module.clone(), timing);
        }
        let result = propagate(composite, &fresh, pi_arrivals)?;
        Ok(HierAnalysis {
            stats: HierStats {
                modules_characterized: self.characterizations,
                instances_propagated: result.stats.instances_propagated,
                ..result.stats
            },
            ..result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, carry_skip_block, CsaDelays};

    fn t(v: i64) -> Time {
        Time::new(v)
    }

    #[test]
    fn repeated_analysis_hits_cache() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut session =
            IncrementalAnalyzer::new(design, "csa8.2", HierOptions::default()).unwrap();
        let a = session.analyze(&[t(0); 17]).unwrap();
        let b = session.analyze(&[t(0); 17]).unwrap();
        assert_eq!(a.delay, b.delay);
        assert_eq!(session.characterizations(), 1);
        // A different arrival condition also reuses the models.
        let mut skewed = vec![t(0); 17];
        skewed[0] = t(9);
        let _ = session.analyze(&skewed).unwrap();
        assert_eq!(session.characterizations(), 1);
    }

    #[test]
    fn module_edit_recharacterizes_only_that_module() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut session =
            IncrementalAnalyzer::new(design, "csa4.2", HierOptions::default()).unwrap();
        let before = session.analyze(&[t(0); 9]).unwrap();
        assert_eq!(session.characterizations(), 1);

        // Edit: a slower block (XOR/MUX delay 3 instead of 2).
        let slower = CsaDelays {
            and_or: 1,
            xor: 3,
            mux: 3,
        };
        let mut block = carry_skip_block(2, slower);
        block.set_name("csa_block2");
        session.replace_module(block).unwrap();
        let after = session.analyze(&[t(0); 9]).unwrap();
        assert_eq!(
            session.characterizations(),
            2,
            "exactly one re-characterization"
        );
        assert!(after.delay > before.delay);
    }

    #[test]
    fn unchanged_edit_is_free() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut session =
            IncrementalAnalyzer::new(design, "csa4.2", HierOptions::default()).unwrap();
        let _ = session.analyze(&[t(0); 9]).unwrap();
        // "Replace" with an identical body: the content hash matches,
        // so no recharacterization happens.
        let mut block = carry_skip_block(2, CsaDelays::default());
        block.set_name("csa_block2");
        session.replace_module(block).unwrap();
        let _ = session.analyze(&[t(0); 9]).unwrap();
        assert_eq!(session.characterizations(), 1);
    }

    #[test]
    fn replacing_unknown_module_fails() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut session =
            IncrementalAnalyzer::new(design, "csa4.2", HierOptions::default()).unwrap();
        let ghost = Netlist::new("ghost");
        assert!(session.replace_module(ghost).is_err());
    }
}
