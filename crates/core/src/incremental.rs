//! Incremental re-analysis (Section 3.3).
//!
//! Once a leaf module's timing model is computed it stays valid no
//! matter what changes elsewhere, so a module edit only requires (1)
//! re-characterizing the edited module and (2) re-running the cheap
//! top-level propagation. [`IncrementalAnalyzer`] owns the design and a
//! content-hash-keyed model cache to deliver exactly that contract —
//! compare with flat analysis, where any edit invalidates everything.
//!
//! Two soundness rules guard the cache:
//!
//! * **Degraded models are never cached.** A model produced under a
//!   finite [`SolveBudget`] that actually
//!   degraded is an artifact of that budget; replaying it in a later
//!   run (possibly under a looser budget) would not be bit-identical
//!   to a fresh analysis. Only undegraded — budget-independent —
//!   models enter the cache, the structural signature cache, or the
//!   persistent database.
//! * **Per-run vs. session counters are distinct.** The
//!   [`HierStats`] on each [`HierAnalysis`] report what *that call*
//!   did; [`IncrementalAnalyzer::characterizations`] is the session
//!   total the incremental contract keeps small.

use std::collections::HashMap;

use hfta_fta::{AnalysisConfig, ConeSigCache, SolveBudget, StabilityStats};
use hfta_modeldb::{ModelDb, ModelDbStats};
use hfta_netlist::{Design, Netlist, NetlistError, Time};

use hfta_netlist::Composite;

use crate::hier::{open_model_dbs, propagate, HierAnalysis, HierOptions, HierStats};
use crate::module_timing::ModuleTiming;

/// An immutable snapshot of a fully-warm analysis session: the top
/// composite plus every instantiated leaf's (undegraded, cached)
/// timing model, detached from the analyzer that built it.
///
/// Once characterization has happened, a hierarchical query is nothing
/// but the cheap top-level propagation — a pure function of the models
/// and the arrival vector. A snapshot captures exactly that function,
/// so any number of threads can answer queries concurrently while the
/// owning [`IncrementalAnalyzer`] stays free for mutations (edits,
/// re-characterization). [`WarmSnapshot::analyze`] is bit-identical to
/// [`IncrementalAnalyzer::analyze`] on the warm session it was taken
/// from: both run the same [`propagate`] over the same models.
#[derive(Clone, PartialEq, Debug)]
pub struct WarmSnapshot {
    composite: Composite,
    models: HashMap<String, ModuleTiming>,
}

impl WarmSnapshot {
    /// Propagates `pi_arrivals` through the snapshotted models. The
    /// returned stats report zero characterizations — by construction
    /// nothing is characterized here.
    ///
    /// # Errors
    ///
    /// Returns propagation errors (e.g. arity mismatches), which a
    /// snapshot of a validated session cannot produce in practice.
    ///
    /// # Panics
    ///
    /// Panics if `pi_arrivals.len()` differs from the top-level input
    /// count.
    pub fn analyze(&self, pi_arrivals: &[Time]) -> Result<HierAnalysis, NetlistError> {
        propagate(&self.composite, &self.models, pi_arrivals)
    }

    /// The snapshotted top-level composite.
    #[must_use]
    pub fn composite(&self) -> &Composite {
        &self.composite
    }
}

/// A session of repeated analyses over an evolving design.
///
/// # Example
///
/// ```
/// use hfta_core::IncrementalAnalyzer;
/// use hfta_netlist::gen::{carry_skip_adder, CsaDelays};
/// use hfta_netlist::Time;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = carry_skip_adder(8, 2, CsaDelays::default());
/// let mut session = IncrementalAnalyzer::new(design, "csa8.2", Default::default())?;
/// let first = session.analyze(&vec![Time::ZERO; 17])?;
/// let again = session.analyze(&vec![Time::ZERO; 17])?;
/// assert_eq!(first.delay, again.delay);
/// assert_eq!(session.characterizations(), 1); // cache hit on re-run
/// assert_eq!(again.stats.modules_characterized, 0); // per-run stats
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct IncrementalAnalyzer {
    design: Design,
    top: String,
    opts: HierOptions,
    /// Model cache keyed by module name; the hash detects edits. Holds
    /// only undegraded models (see the module docs).
    cache: HashMap<String, (u64, ModuleTiming)>,
    /// Structural signature cache shared across modules and runs — the
    /// same sig-sharing path [`crate::HierAnalyzer`] uses, so
    /// isomorphic leaves characterize once.
    sig_cache: ConeSigCache,
    characterizations: u64,
    session_stability: StabilityStats,
    db_use: Option<ModelDb>,
    db_emit: Option<ModelDb>,
}

impl IncrementalAnalyzer {
    /// Creates a session for module `top` of `design` (depth-1
    /// hierarchy).
    ///
    /// # Errors
    ///
    /// Returns validation errors and [`NetlistError::Unknown`] if `top`
    /// is missing, not a composite, or instantiates non-leaf modules.
    pub fn new(
        design: Design,
        top: impl Into<String>,
        opts: HierOptions,
    ) -> Result<IncrementalAnalyzer, NetlistError> {
        let top = top.into();
        design.validate()?;
        let composite = design
            .composite(&top)
            .ok_or_else(|| NetlistError::Unknown {
                what: "top-level composite module",
                name: top.clone(),
            })?;
        for inst in composite.instances() {
            if design.leaf(&inst.module).is_none() {
                return Err(NetlistError::Unknown {
                    what: "leaf module (incremental analysis requires depth-1 hierarchy)",
                    name: inst.module.clone(),
                });
            }
        }
        Ok(IncrementalAnalyzer {
            design,
            top,
            opts,
            cache: HashMap::new(),
            sig_cache: ConeSigCache::new(),
            characterizations: 0,
            session_stability: StabilityStats::default(),
            db_use: None,
            db_emit: None,
        })
    }

    /// Creates a session from a unified [`AnalysisConfig`], opening any
    /// model databases named in
    /// [`AnalysisConfig::model_db`](hfta_fta::ModelDbSpec).
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Self::new`], plus
    /// [`NetlistError::Io`] when the emit directory cannot be created.
    pub fn with_config(
        design: Design,
        top: impl Into<String>,
        config: &AnalysisConfig,
    ) -> Result<IncrementalAnalyzer, NetlistError> {
        let mut an = IncrementalAnalyzer::new(design, top, HierOptions::from(config))?;
        let (use_db, emit_db) = open_model_dbs(&config.model_db)?;
        an.db_use = use_db;
        an.db_emit = emit_db;
        Ok(an)
    }

    /// The current design.
    #[must_use]
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Total characterizations performed across the session — the
    /// number the incremental contract keeps small. Per-run counts are
    /// in each result's [`HierStats::modules_characterized`].
    #[must_use]
    pub fn characterizations(&self) -> u64 {
        self.characterizations
    }

    /// Cumulative stability/solver work across the session (per-run
    /// figures are in each result's [`HierStats::stability`]).
    #[must_use]
    pub fn session_stability(&self) -> &StabilityStats {
        &self.session_stability
    }

    /// Attaches a persistent model database to warm-start from: it is
    /// probed before every characterization, and hits are installed
    /// without counting as characterizations (a cold session on an
    /// unchanged design analyzes with `modules_characterized == 0`).
    pub fn set_model_db_use(&mut self, db: ModelDb) {
        self.db_use = Some(db);
    }

    /// Attaches a persistent model database to store freshly
    /// characterized models into. Degraded models are never stored
    /// (see `hfta-modeldb`'s soundness rules).
    pub fn set_model_db_emit(&mut self, db: ModelDb) {
        self.db_emit = Some(db);
    }

    /// Counters of the attached model-database handles, merged across
    /// the read and emit sides (all zero when no database is attached).
    #[must_use]
    pub fn model_db_stats(&self) -> ModelDbStats {
        let mut s = ModelDbStats::default();
        if let Some(db) = &self.db_use {
            s.merge(&db.stats());
        }
        if let Some(db) = &self.db_emit {
            s.merge(&db.stats());
        }
        s
    }

    /// Changes the per-query solve budget for subsequent analyses.
    ///
    /// The structural signature cache is cleared when the budget
    /// actually changes: its entries replay outcomes of the budget
    /// that filled them. The model cache survives — it only ever holds
    /// undegraded, budget-independent models.
    pub fn set_budget(&mut self, budget: SolveBudget) {
        if self.opts.characterize.budget != budget {
            self.sig_cache = ConeSigCache::new();
        }
        self.opts.characterize.budget = budget;
    }

    /// Takes a read-only [`WarmSnapshot`] of the session, or `None`
    /// unless **every** instantiated module's model is cached at its
    /// current content hash (i.e. the session is fully warm — a cold
    /// or partially-degraded session would have to characterize, which
    /// a snapshot cannot).
    ///
    /// The snapshot is detached: later edits to this analyzer do not
    /// invalidate it (it keeps answering for the design it captured),
    /// so callers that must track edits should re-snapshot after every
    /// [`Self::replace_module`].
    #[must_use]
    pub fn warm_snapshot(&self) -> Option<WarmSnapshot> {
        let composite = self
            .design
            .composite(&self.top)
            .expect("validated in constructor");
        let mut models: HashMap<String, ModuleTiming> = HashMap::new();
        for inst in composite.instances() {
            if models.contains_key(&inst.module) {
                continue;
            }
            let leaf = self.design.leaf(&inst.module)?;
            let (hash, m) = self.cache.get(&inst.module)?;
            if *hash != leaf.content_hash() {
                return None;
            }
            models.insert(inst.module.clone(), m.clone());
        }
        Some(WarmSnapshot {
            composite: composite.clone(),
            models,
        })
    }

    /// Replaces the body of a leaf module (same name, same ports). Its
    /// stale model is re-characterized on the next [`Self::analyze`];
    /// all other modules' models stay valid.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Unknown`] if no leaf of that name
    /// exists.
    pub fn replace_module(&mut self, netlist: Netlist) -> Result<(), NetlistError> {
        self.design.replace_leaf(netlist)
    }

    /// Analyzes the design under the given top-level arrivals, reusing
    /// every cached model whose module is unchanged.
    ///
    /// The returned [`HierStats`] describe **this call only**; use
    /// [`Self::characterizations`] for the session total.
    ///
    /// # Errors
    ///
    /// Returns characterization or propagation errors.
    ///
    /// # Panics
    ///
    /// Panics if `pi_arrivals.len()` differs from the top-level input
    /// count.
    pub fn analyze(&mut self, pi_arrivals: &[Time]) -> Result<HierAnalysis, NetlistError> {
        let composite = self
            .design
            .composite(&self.top)
            .expect("validated in constructor");
        let mut run_characterized = 0u64;
        let mut run_degraded = 0u64;
        let mut run_aliased = 0u64;
        let mut run_stability = StabilityStats::default();
        // Refresh stale / missing models.
        let mut fresh: HashMap<String, ModuleTiming> = HashMap::new();
        for inst in composite.instances() {
            if fresh.contains_key(&inst.module) {
                continue;
            }
            let leaf = self
                .design
                .leaf(&inst.module)
                .ok_or_else(|| NetlistError::Unknown {
                    what: "leaf module",
                    name: inst.module.clone(),
                })?;
            let hash = leaf.content_hash();
            if let Some(m) = self
                .cache
                .get(&inst.module)
                .filter(|(h, _)| *h == hash)
                .map(|(_, m)| m.clone())
            {
                fresh.insert(inst.module.clone(), m);
                continue;
            }
            // Cold in this session: probe the persistent database
            // before characterizing. A hit is exact by construction
            // (the store refuses degraded models), so it enters the
            // session cache like any undegraded fresh model.
            if let Some(db) = self.db_use.as_mut() {
                if let Some(m) = db.probe(leaf, self.opts.source, &self.opts.characterize) {
                    run_stability.model_db_hits += 1;
                    self.cache.insert(inst.module.clone(), (hash, m.clone()));
                    fresh.insert(inst.module.clone(), m);
                    continue;
                }
                run_stability.model_db_misses += 1;
            }
            let (m, stats, owners) = ModuleTiming::characterize_cached(
                leaf,
                self.opts.source,
                self.opts.characterize,
                &mut self.sig_cache,
            )?;
            self.characterizations += 1;
            run_characterized += 1;
            let degraded = stats.degraded > 0;
            if degraded {
                run_degraded += 1;
            }
            // The module is an alias when every output was replayed
            // from one (other) module's characterization.
            if let Some(Some(owner)) = owners.first() {
                if owner != &inst.module && owners.iter().all(|o| o.as_deref() == Some(owner)) {
                    run_aliased += 1;
                }
            }
            run_stability.merge(&stats);
            if !degraded {
                // Degraded models are artifacts of the current budget
                // and must never outlive this run (module docs); exact
                // ones are cached and persisted.
                self.cache.insert(inst.module.clone(), (hash, m.clone()));
                if let Some(db) = self.db_emit.as_mut() {
                    db.store(leaf, self.opts.source, &self.opts.characterize, &m, false);
                }
            }
            fresh.insert(inst.module.clone(), m);
        }
        self.session_stability.merge(&run_stability);
        let result = propagate(composite, &fresh, pi_arrivals)?;
        Ok(HierAnalysis {
            stats: HierStats {
                modules_characterized: run_characterized,
                modules_degraded: run_degraded,
                instances_propagated: result.stats.instances_propagated,
                modules_aliased: run_aliased,
                stability: run_stability,
            },
            ..result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, carry_skip_block, CsaDelays};

    fn t(v: i64) -> Time {
        Time::new(v)
    }

    #[test]
    fn repeated_analysis_hits_cache() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut session =
            IncrementalAnalyzer::new(design, "csa8.2", HierOptions::default()).unwrap();
        let a = session.analyze(&[t(0); 17]).unwrap();
        let b = session.analyze(&[t(0); 17]).unwrap();
        assert_eq!(a.delay, b.delay);
        assert_eq!(session.characterizations(), 1);
        // A different arrival condition also reuses the models.
        let mut skewed = vec![t(0); 17];
        skewed[0] = t(9);
        let _ = session.analyze(&skewed).unwrap();
        assert_eq!(session.characterizations(), 1);
    }

    #[test]
    fn stats_are_per_run_not_cumulative() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut session =
            IncrementalAnalyzer::new(design, "csa8.2", HierOptions::default()).unwrap();
        let a = session.analyze(&[t(0); 17]).unwrap();
        assert_eq!(a.stats.modules_characterized, 1);
        let b = session.analyze(&[t(0); 17]).unwrap();
        // Second run does no characterization work — its stats say so,
        // while the session accessor keeps the cumulative count.
        assert_eq!(b.stats.modules_characterized, 0);
        assert_eq!(b.stats.stability, StabilityStats::default());
        assert_eq!(session.characterizations(), 1);
        assert_eq!(*session.session_stability(), a.stats.stability);
    }

    #[test]
    fn module_edit_recharacterizes_only_that_module() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut session =
            IncrementalAnalyzer::new(design, "csa4.2", HierOptions::default()).unwrap();
        let before = session.analyze(&[t(0); 9]).unwrap();
        assert_eq!(session.characterizations(), 1);

        // Edit: a slower block (XOR/MUX delay 3 instead of 2).
        let slower = CsaDelays {
            and_or: 1,
            xor: 3,
            mux: 3,
        };
        let mut block = carry_skip_block(2, slower);
        block.set_name("csa_block2");
        session.replace_module(block).unwrap();
        let after = session.analyze(&[t(0); 9]).unwrap();
        assert_eq!(
            session.characterizations(),
            2,
            "exactly one re-characterization"
        );
        assert_eq!(after.stats.modules_characterized, 1, "per-run count");
        assert!(after.delay > before.delay);
    }

    #[test]
    fn unchanged_edit_is_free() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut session =
            IncrementalAnalyzer::new(design, "csa4.2", HierOptions::default()).unwrap();
        let _ = session.analyze(&[t(0); 9]).unwrap();
        // "Replace" with an identical body: the content hash matches,
        // so no recharacterization happens.
        let mut block = carry_skip_block(2, CsaDelays::default());
        block.set_name("csa_block2");
        session.replace_module(block).unwrap();
        let _ = session.analyze(&[t(0); 9]).unwrap();
        assert_eq!(session.characterizations(), 1);
    }

    /// A depth-1 chain of 2-bit blocks. With one flavour the blocks
    /// are structurally identical (shareable only through cone
    /// signatures); with several, each has genuinely distinct delays.
    fn block_chain(flavours: &[CsaDelays], top_name: &str) -> Design {
        use hfta_netlist::Composite;
        let mut design = Design::new();
        let mut top = Composite::new(top_name);
        let mut carry = top.add_input("c_in");
        for (k, &d) in flavours.iter().enumerate() {
            let mut block = carry_skip_block(2, d);
            block.set_name(format!("blk{k}"));
            design.add_leaf(block).unwrap();
            let mut ins = vec![carry];
            for i in 0..2 {
                ins.push(top.add_input(format!("a{k}_{i}")));
                ins.push(top.add_input(format!("b{k}_{i}")));
            }
            let s0 = top.add_net(format!("s{k}_0"));
            let s1 = top.add_net(format!("s{k}_1"));
            let c = top.add_net(format!("c{k}"));
            top.add_instance(format!("u{k}"), format!("blk{k}"), &ins, &[s0, s1, c]);
            top.mark_output(s0);
            top.mark_output(s1);
            carry = c;
        }
        top.mark_output(carry);
        design.add_composite(top).unwrap();
        design
    }

    fn mixed_flavours() -> Vec<CsaDelays> {
        vec![
            CsaDelays {
                and_or: 1,
                xor: 2,
                mux: 2,
            },
            CsaDelays {
                and_or: 1,
                xor: 3,
                mux: 2,
            },
            CsaDelays {
                and_or: 2,
                xor: 2,
                mux: 3,
            },
            CsaDelays {
                and_or: 1,
                xor: 2,
                mux: 4,
            },
        ]
    }

    /// Regression: a budget-degraded model must not be cached. Before
    /// the fix, a budgeted first run poisoned the cache keyed only by
    /// content hash, and an unlimited second run silently replayed the
    /// degraded model instead of re-characterizing.
    #[test]
    fn budgeted_run_does_not_poison_unlimited_run() {
        let mkdesign = || block_chain(&mixed_flavours(), "mixed");
        let arrivals = vec![t(0); 17];

        let mut opts = HierOptions::default();
        opts.characterize.budget = SolveBudget::default().with_conflicts(0);
        let mut session = IncrementalAnalyzer::new(mkdesign(), "mixed", opts).unwrap();
        let capped = session.analyze(&arrivals).unwrap();
        assert!(
            capped.stats.modules_degraded > 0,
            "zero-conflict budget must degrade something for this test to bite"
        );

        // Lift the budget: every degraded module re-characterizes and
        // the result is bit-identical to a fresh unlimited session.
        session.set_budget(SolveBudget::default());
        let lifted = session.analyze(&arrivals).unwrap();
        assert_eq!(
            lifted.stats.modules_characterized, capped.stats.modules_degraded,
            "exactly the degraded modules re-characterize"
        );
        assert_eq!(lifted.stats.modules_degraded, 0);

        let mut fresh =
            IncrementalAnalyzer::new(mkdesign(), "mixed", HierOptions::default()).unwrap();
        let reference = fresh.analyze(&arrivals).unwrap();
        assert_eq!(lifted.delay, reference.delay);
        assert_eq!(lifted.output_arrivals, reference.output_arrivals);
        assert_eq!(lifted.net_arrivals, reference.net_arrivals);

        // And the exact models now in the cache are stable: a third
        // run is free.
        let third = session.analyze(&arrivals).unwrap();
        assert_eq!(third.stats.modules_characterized, 0);
    }

    /// Regression: the incremental path shares characterizations
    /// across isomorphic modules through the same structural signature
    /// cache as `HierAnalyzer` (it previously ignored it).
    #[test]
    fn sig_cache_is_shared_across_isomorphic_modules() {
        let copies = 4usize;
        let replicated = || block_chain(&vec![CsaDelays::default(); copies], "rep");
        let design = replicated();
        let arrivals = vec![t(0); 4 * copies + 1];
        let mut session = IncrementalAnalyzer::new(design, "rep", HierOptions::default()).unwrap();
        let a = session.analyze(&arrivals).unwrap();
        // Every copy counts as a characterization, but all after the
        // first replay from the signature cache: per-output hits for
        // the 3 outputs of each of the other copies.
        assert_eq!(a.stats.modules_characterized, copies as u64);
        assert_eq!(a.stats.modules_aliased, copies as u64 - 1);
        assert_eq!(a.stats.stability.cone_sig_hits, 3 * (copies as u64 - 1));

        // The result matches the one-copy-at-a-time reference analyzer.
        let design = replicated();
        let mut hier = crate::HierAnalyzer::new(&design, "rep", HierOptions::default()).unwrap();
        let h = hier.analyze(&arrivals).unwrap();
        assert_eq!(a.delay, h.delay);
        assert_eq!(a.output_arrivals, h.output_arrivals);
        assert_eq!(
            h.stats.stability.cone_sig_hits,
            a.stats.stability.cone_sig_hits
        );
    }

    /// A warm snapshot answers bit-identically to the session it came
    /// from, only exists once the session is fully warm, and keeps
    /// answering for the captured design after an edit.
    #[test]
    fn warm_snapshot_matches_session_and_tracks_warmth() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut session =
            IncrementalAnalyzer::new(design, "csa4.2", HierOptions::default()).unwrap();
        assert!(
            session.warm_snapshot().is_none(),
            "cold session has no snapshot"
        );
        let warm = session.analyze(&[t(0); 9]).unwrap();
        let snap = session.warm_snapshot().expect("warm session snapshots");
        let mut arrivals = vec![t(0); 9];
        arrivals[0] = t(7);
        let via_session = session.analyze(&arrivals).unwrap();
        let via_snapshot = snap.analyze(&arrivals).unwrap();
        assert_eq!(via_session, via_snapshot, "snapshot == session, bitwise");
        assert_eq!(via_snapshot.stats.modules_characterized, 0);

        // Edit the design: the old snapshot still answers for the old
        // body; the analyzer only re-snapshots once warm again.
        let slower = CsaDelays {
            and_or: 1,
            xor: 3,
            mux: 3,
        };
        let mut block = carry_skip_block(2, slower);
        block.set_name("csa_block2");
        session.replace_module(block).unwrap();
        assert!(
            session.warm_snapshot().is_none(),
            "stale model: no snapshot until re-characterized"
        );
        assert_eq!(snap.analyze(&[t(0); 9]).unwrap().delay, warm.delay);
        let edited = session.analyze(&[t(0); 9]).unwrap();
        let resnap = session.warm_snapshot().expect("warm again");
        let via_resnap = resnap.analyze(&[t(0); 9]).unwrap();
        assert_eq!(via_resnap.net_arrivals, edited.net_arrivals);
        assert_eq!(via_resnap.output_arrivals, edited.output_arrivals);
        assert_eq!(via_resnap.delay, edited.delay);
    }

    #[test]
    fn replacing_unknown_module_fails() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut session =
            IncrementalAnalyzer::new(design, "csa4.2", HierOptions::default()).unwrap();
        let ghost = Netlist::new("ghost");
        assert!(session.replace_module(ghost).is_err());
    }
}
