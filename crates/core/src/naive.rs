//! The pitfall the paper's Section 1 warns about, made executable.
//!
//! Yalcin & Hayes' hierarchical models are built under one arrival-time
//! scenario and reused under others; the paper points out that under
//! tight, arrival-time-*dependent* criteria (XBD0/floating mode) this
//! "may underapproximate true delays". The general trap is assembling a
//! per-pin delay tuple from analyses that each vary one pin while
//! holding the rest in a fixed reference scenario, *without validating
//! the assembled tuple jointly* — pin relaxations that are individually
//! safe can be jointly unsafe.
//!
//! [`independent_relaxation_model`] builds exactly that (deliberately
//! unsound) model, and [`find_underapproximation`] searches for an
//! arrival condition where it claims stability the circuit does not
//! have. The HFTA characterizer never has this problem: every accepted
//! relaxation step is validated by a full stability check of the whole
//! tuple (see [`hfta_fta::Characterizer`]).

use hfta_fta::{DelayAnalyzer, SatAlg, StabilityAnalyzer, TopoSta};
use hfta_netlist::{NetId, Netlist, NetlistError, Time};

use crate::{TimingModel, TimingTuple};

/// Builds the naive model of `output`: each pin's delay is relaxed down
/// its distinct-path-length list with *all other pins held at their
/// topological delays*, and the per-pin results are assembled into one
/// tuple without a joint validity check.
///
/// This is **intentionally unsound** — it exists to demonstrate the
/// paper's critique. Use [`ModuleTiming::characterize`]
/// (`ModelSource::Functional`) for sound models.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
///
/// [`ModuleTiming::characterize`]: crate::ModuleTiming::characterize
pub fn independent_relaxation_model(
    netlist: &Netlist,
    output: NetId,
    lengths_cap: usize,
) -> Result<TimingModel, NetlistError> {
    let (cone, sources) = netlist.cone(output);
    let cone_out = cone.outputs()[0];
    let full_len = netlist.inputs().len();
    if cone.inputs().is_empty() {
        return Ok(TimingModel::from_tuples(vec![TimingTuple::new(vec![
            Time::NEG_INF;
            full_len
        ])]));
    }
    let sta = TopoSta::new(&cone)?;
    let distinct = sta.distinct_lengths_to(cone_out, lengths_cap);
    let lists: Vec<Vec<Time>> = cone
        .inputs()
        .iter()
        .map(|pi| distinct[pi.index()].clone())
        .collect();
    let topo: Vec<Time> = lists
        .iter()
        .map(|l| l.first().copied().unwrap_or(Time::NEG_INF))
        .collect();

    // One persistent analyzer serves every per-pin probe of this cone;
    // each probe rebinds the arrivals, keeping the solver state warm.
    let topo_arrivals: Vec<Time> = topo.iter().map(|&d| -d).collect();
    let mut an = StabilityAnalyzer::new(&cone, &topo_arrivals, SatAlg::new())?;
    let mut assembled = topo.clone();
    for i in 0..cone.inputs().len() {
        // Relax pin i alone, others pinned at TOPOLOGICAL (the fixed
        // reference scenario — each step here is individually valid).
        let mut current = topo[i];
        for &l in &lists[i][1..] {
            let mut candidate = topo.clone();
            candidate[i] = l;
            let arrivals: Vec<Time> = candidate.iter().map(|&d| -d).collect();
            an.set_arrivals(&arrivals);
            if an.is_stable_at(cone_out, Time::ZERO) {
                current = l;
            } else {
                break;
            }
        }
        assembled[i] = current;
    }
    // NO joint validation — that is the bug being demonstrated.
    let positions: Vec<usize> = sources
        .iter()
        .map(|src| {
            netlist
                .inputs()
                .iter()
                .position(|pi| pi == src)
                .expect("cone sources are primary inputs")
        })
        .collect();
    let mut full = vec![Time::NEG_INF; full_len];
    for (i, &p) in positions.iter().enumerate() {
        full[p] = assembled[i];
    }
    Ok(TimingModel::from_tuples(vec![TimingTuple::new(full)]))
}

/// Evidence that a model underapproximates: an arrival condition where
/// the model claims the output stable strictly before the flat XBD0
/// arrival.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Underapproximation {
    /// The arrival condition (per primary input of the module).
    pub arrivals: Vec<Time>,
    /// What the model claims.
    pub claimed: Time,
    /// The true functional arrival.
    pub actual: Time,
}

/// Checks whether `model` underapproximates `output`'s delay at the
/// arrival condition the model itself implies (inputs at the negated
/// tuple entries), and returns the witness if so.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
pub fn find_underapproximation(
    netlist: &Netlist,
    output: NetId,
    model: &TimingModel,
) -> Result<Option<Underapproximation>, NetlistError> {
    for tuple in model.tuples() {
        let arrivals: Vec<Time> = tuple.delays().iter().map(|&d| -d).collect();
        let claimed = model.stable_time(&arrivals); // ≤ 0 by construction
        let mut an = DelayAnalyzer::new_sat(netlist, &arrivals)?;
        let actual = an.output_arrival(output);
        if actual > claimed {
            return Ok(Some(Underapproximation {
                arrivals,
                claimed,
                actual,
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_fta::{characterize_module, CharacterizeOptions};
    use hfta_netlist::gen::{carry_skip_block, CsaDelays};
    use hfta_netlist::gen::{random_circuit, GateMix, RandomCircuitSpec};

    /// On the carry-skip block the naive model happens to coincide with
    /// the sound one (only one pin is relaxable), so no witness exists
    /// there — the pitfall needs pin interaction.
    #[test]
    fn carry_skip_block_is_benign() {
        let nl = carry_skip_block(2, CsaDelays::default());
        let c_out = nl.find_net("c_out").unwrap();
        let naive = independent_relaxation_model(&nl, c_out, 32).unwrap();
        assert!(find_underapproximation(&nl, c_out, &naive)
            .unwrap()
            .is_none());
    }

    /// The demonstration the paper alludes to: searching small random
    /// circuits finds one where the independently-assembled model
    /// claims stability the circuit does not have — while the sound
    /// characterizer's model never does.
    #[test]
    fn search_finds_unsound_instance() {
        let mut found = false;
        for seed in 0..200u64 {
            let spec = RandomCircuitSpec {
                inputs: 5,
                gates: 14,
                seed,
                locality: 6,
                global_fanin_prob: 0.3,
                mix: GateMix::NandHeavy,
            };
            let nl = random_circuit("pitfall", spec);
            let sound_models = characterize_module(&nl, CharacterizeOptions::default()).unwrap();
            for (k, &out) in nl.outputs().iter().enumerate() {
                let naive = independent_relaxation_model(&nl, out, 16).unwrap();
                // The sound model never underapproximates…
                assert!(
                    find_underapproximation(&nl, out, &sound_models[k])
                        .unwrap()
                        .is_none(),
                    "sound model unsound on seed {seed} output {k}!"
                );
                // …the naive one eventually does.
                if let Some(w) = find_underapproximation(&nl, out, &naive).unwrap() {
                    assert!(w.actual > w.claimed);
                    found = true;
                }
            }
            if found {
                break;
            }
        }
        assert!(
            found,
            "no underapproximation found in 200 seeds — pitfall demo broken"
        );
    }
}
