//! A wall-clock deadline shared across worker threads.
//!
//! Parallel characterization and demand-driven refinement distribute
//! independent work over scoped threads. A per-analysis `--budget-ms`
//! deadline has to cut *all* of them off together: [`DeadlineToken`]
//! wraps the deadline instant in an atomic latch so that the first
//! worker to observe expiry publishes it, and every later check — on
//! any thread — answers from the latch without consulting the clock.
//!
//! The token only gates *whether new work starts* (a module
//! characterization, an edge probe). Work already in flight is
//! interrupted by the same deadline threaded into the SAT solver via
//! [`SolveBudget::deadline`](hfta_sat::SolveBudget), so both layers
//! observe one consistent cutoff.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared, latching view of an optional wall-clock deadline.
///
/// Cloning is cheap (an `Arc` bump) and clones share the latch.
#[derive(Clone, Debug)]
pub struct DeadlineToken {
    deadline: Option<Instant>,
    expired: Arc<AtomicBool>,
}

impl DeadlineToken {
    /// A token for `deadline`; `None` never expires.
    #[must_use]
    pub fn new(deadline: Option<Instant>) -> DeadlineToken {
        DeadlineToken {
            deadline,
            expired: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A token that never expires.
    #[must_use]
    pub fn unlimited() -> DeadlineToken {
        DeadlineToken::new(None)
    }

    /// The wrapped deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Has the deadline passed? Once this returns `true` on any clone
    /// it returns `true` on every clone forever (the latch), so workers
    /// that race the clock still agree on the cutoff.
    #[must_use]
    pub fn expired(&self) -> bool {
        let Some(at) = self.deadline else {
            return false;
        };
        if self.expired.load(Ordering::Relaxed) {
            return true;
        }
        if Instant::now() >= at {
            self.expired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_expires() {
        let token = DeadlineToken::unlimited();
        assert!(!token.expired());
        assert!(token.deadline().is_none());
    }

    #[test]
    fn past_deadline_latches_across_clones() {
        let token = DeadlineToken::new(Some(Instant::now() - Duration::from_millis(1)));
        let clone = token.clone();
        assert!(token.expired());
        // The clone sees the latch even without re-reading the clock.
        assert!(clone.expired.load(Ordering::Relaxed));
        assert!(clone.expired());
    }

    #[test]
    fn future_deadline_not_yet_expired() {
        let token = DeadlineToken::new(Some(Instant::now() + Duration::from_secs(3600)));
        assert!(!token.expired());
    }

    #[test]
    fn expiry_is_shared_between_threads() {
        let token = DeadlineToken::new(Some(Instant::now() - Duration::from_millis(1)));
        let seen = std::thread::scope(|scope| {
            let t = token.clone();
            scope.spawn(move || t.expired()).join().unwrap()
        });
        assert!(seen);
        assert!(token.expired());
    }
}
