//! Multi-level hierarchies via timing-model composition (the paper's
//! footnote 4: "the analysis described here can be extended to circuits
//! with multi-level hierarchies").
//!
//! A composite module's timing abstraction is computed *from its
//! children's abstractions*, without flattening: the min–max algebra of
//! timing models composes exactly. If instance input `j` carries the
//! symbolic tuple set `S_j` (over the composite's inputs) and the
//! instance output has model tuples `T`, then the output's symbolic set
//! is
//!
//! ```text
//! { (max_j (s_k + t_j))_k  :  t ∈ T,  s ∈ S_j chosen per input j }
//! ```
//!
//! — a max-plus product, pruned of dominated tuples. Characterizing a
//! module therefore costs leaf characterizations plus cheap tuple
//! algebra, and the result is conservative at every level (each leaf
//! tuple is validated; composition preserves the min–max semantics
//! exactly).

use std::collections::HashMap;

use hfta_netlist::{Composite, Design, ModuleBody, NetlistError, Time};
use hfta_sched::Scheduler;

use crate::hier::{propagate, HierAnalysis, HierOptions};
use crate::module_timing::ModuleTiming;
use crate::{TimingModel, TimingTuple};

/// Options for recursive characterization.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ComposeOptions {
    /// Leaf characterization options.
    pub hier: HierOptions,
    /// Cap on tuples kept per composed model (non-dominated tuples are
    /// ranked by total finite delay; dropping tuples loses accuracy,
    /// never soundness).
    pub max_tuples: usize,
    /// Cap on the max-plus product size per output before falling back
    /// to first-tuple-only composition (sound, less accurate).
    pub max_product: usize,
}

impl Default for ComposeOptions {
    fn default() -> ComposeOptions {
        ComposeOptions {
            hier: HierOptions::default(),
            max_tuples: 8,
            max_product: 4096,
        }
    }
}

/// Recursively characterizes `module` (leaf or composite) into a
/// [`ModuleTiming`] over its own ports, caching by module name.
///
/// # Errors
///
/// Returns [`NetlistError::Unknown`] for missing modules and the usual
/// characterization errors.
pub fn characterize_recursive(
    design: &Design,
    module: &str,
    opts: &ComposeOptions,
    cache: &mut HashMap<String, ModuleTiming>,
) -> Result<ModuleTiming, NetlistError> {
    if let Some(m) = cache.get(module) {
        return Ok(m.clone());
    }
    let def = design.module(module).ok_or_else(|| NetlistError::Unknown {
        what: "module",
        name: module.to_string(),
    })?;
    let timing = match &def.body {
        ModuleBody::Leaf(nl) => {
            ModuleTiming::characterize(nl, opts.hier.source, opts.hier.characterize)?
        }
        ModuleBody::Composite(c) => {
            for idx in c.instance_topo_order()? {
                let inst = &c.instances()[idx];
                characterize_recursive(design, &inst.module, opts, cache)?;
            }
            compose_composite(c, opts, cache)?
        }
    };
    cache.insert(module.to_string(), timing.clone());
    Ok(timing)
}

/// Composes a composite's timing abstraction from its children's
/// already-characterized models (the max-plus tuple product of the
/// module doc). Unlike [`characterize_recursive`] this never descends:
/// every instanced module must already be in `models`.
///
/// # Errors
///
/// Returns [`NetlistError::Unknown`] if a child model is missing and
/// composite-ordering errors.
fn compose_composite(
    c: &Composite,
    opts: &ComposeOptions,
    models: &HashMap<String, ModuleTiming>,
) -> Result<ModuleTiming, NetlistError> {
    // Symbolic tuple set per composite net, over the composite's
    // inputs.
    let n_in = c.inputs().len();
    let mut sets: Vec<Vec<TimingTuple>> = vec![Vec::new(); c.net_count()];
    for (k, &pi) in c.inputs().iter().enumerate() {
        let mut unit = vec![Time::NEG_INF; n_in];
        unit[k] = Time::ZERO;
        sets[pi.index()] = vec![TimingTuple::new(unit)];
    }
    for idx in c.instance_topo_order()? {
        let inst = &c.instances()[idx];
        let child = models
            .get(&inst.module)
            .ok_or_else(|| NetlistError::Unknown {
                what: "child timing model",
                name: inst.module.clone(),
            })?;
        for (o, &out_net) in inst.outputs.iter().enumerate() {
            let input_sets: Vec<&[TimingTuple]> = inst
                .inputs
                .iter()
                .map(|n| sets[n.index()].as_slice())
                .collect();
            sets[out_net.index()] = compose_output(child.model(o), &input_sets, n_in, opts);
        }
    }
    let input_names = c
        .inputs()
        .iter()
        .map(|&n| c.net_name(n).to_string())
        .collect();
    let output_names: Vec<String> = c
        .outputs()
        .iter()
        .map(|&n| c.net_name(n).to_string())
        .collect();
    let models: Vec<TimingModel> = c
        .outputs()
        .iter()
        .map(|&n| {
            let tuples = if sets[n.index()].is_empty() {
                // Undriven output: constant, nothing required.
                vec![TimingTuple::new(vec![Time::NEG_INF; n_in])]
            } else {
                sets[n.index()].clone()
            };
            TimingModel::from_tuples(tuples)
        })
        .collect();
    Ok(ModuleTiming::from_parts(
        c.name(),
        input_names,
        output_names,
        models,
    ))
}

/// Max-plus product of one output model with its input tuple sets.
fn compose_output(
    model: &TimingModel,
    input_sets: &[&[TimingTuple]],
    n_in: usize,
    opts: &ComposeOptions,
) -> Vec<TimingTuple> {
    let mut out: Vec<TimingTuple> = Vec::new();
    for t in model.tuples() {
        // Relevant inputs: those the model actually depends on.
        let relevant: Vec<usize> = (0..input_sets.len())
            .filter(|&j| t.delay(j) != Time::NEG_INF)
            .collect();
        // Product size check.
        let mut product: usize = 1;
        for &j in &relevant {
            product = product.saturating_mul(input_sets[j].len().max(1));
        }
        let restrict_to_first = product > opts.max_product;
        let mut choice = vec![0usize; relevant.len()];
        loop {
            // Build the composed tuple for this choice.
            let mut combined = vec![Time::NEG_INF; n_in];
            for (pos, &j) in relevant.iter().enumerate() {
                let set = input_sets[j];
                if set.is_empty() {
                    // Undriven input net: stable from forever —
                    // contributes nothing.
                    continue;
                }
                let s = &set[choice[pos]];
                #[allow(clippy::needless_range_loop)] // k indexes two parallel arrays
                for k in 0..n_in {
                    if s.delay(k) == Time::NEG_INF {
                        continue;
                    }
                    combined[k] = combined[k].max(s.delay(k) + t.delay(j));
                }
            }
            push_pruned(&mut out, TimingTuple::new(combined));
            // Odometer over the choices.
            if restrict_to_first {
                break;
            }
            let mut carry = 0usize;
            loop {
                if carry == relevant.len() {
                    break;
                }
                let limit = input_sets[relevant[carry]].len().max(1);
                choice[carry] += 1;
                if choice[carry] < limit {
                    break;
                }
                choice[carry] = 0;
                carry += 1;
            }
            if carry == relevant.len() {
                break;
            }
        }
    }
    if out.is_empty() {
        // The model ignores every input (constant output).
        out.push(TimingTuple::new(vec![Time::NEG_INF; n_in]));
    }
    truncate_ranked(out, opts.max_tuples)
}

fn push_pruned(set: &mut Vec<TimingTuple>, t: TimingTuple) {
    if set.iter().any(|k| k.dominates(&t)) {
        return;
    }
    set.retain(|k| !t.dominates(k));
    set.push(t);
}

/// Keeps at most `cap` tuples, ranked by total finite delay (smallest
/// first — the heuristically most useful tuples).
fn truncate_ranked(mut set: Vec<TimingTuple>, cap: usize) -> Vec<TimingTuple> {
    if set.len() > cap {
        set.sort_by_key(|t| t.delays().iter().filter_map(|d| d.finite()).sum::<i64>());
        set.truncate(cap);
    }
    set
}

/// Analyzes a design whose top-level composite may instantiate other
/// composites (arbitrary hierarchy depth), by recursive timing-model
/// composition followed by the usual top-level propagation.
///
/// # Errors
///
/// Returns module-resolution and characterization errors.
///
/// # Panics
///
/// Panics if `pi_arrivals.len()` differs from the top-level input
/// count.
pub fn analyze_multilevel(
    design: &Design,
    top: &str,
    pi_arrivals: &[Time],
    opts: &ComposeOptions,
) -> Result<HierAnalysis, NetlistError> {
    // Auto-pool: opts asking for threads gets a pool of the effective
    // (clamped) size for the duration of this analysis.
    let pool = (opts.hier.threads > 1)
        .then(|| hfta_sched::effective_parallelism(opts.hier.threads, opts.hier.clamp_threads))
        .filter(|&effective| effective > 1)
        .map(Scheduler::new);
    analyze_multilevel_with(design, top, pi_arrivals, opts, pool.as_ref())
}

/// [`analyze_multilevel`] on an explicit worker pool (or `None` for
/// serial): modules are characterized wavefront by wavefront over the
/// module dependency DAG — every leaf of a wavefront is an independent
/// task, so sibling subtrees characterize concurrently — and composite
/// models are composed from their children's models once the wave
/// below them is done. Models merge back in deterministic (sorted
/// name) order, so the analysis is bit-identical to the serial one.
///
/// # Errors
///
/// Returns module-resolution and characterization errors.
///
/// # Panics
///
/// Panics if `pi_arrivals.len()` differs from the top-level input
/// count.
pub fn analyze_multilevel_with(
    design: &Design,
    top: &str,
    pi_arrivals: &[Time],
    opts: &ComposeOptions,
    pool: Option<&Scheduler>,
) -> Result<HierAnalysis, NetlistError> {
    design.validate()?;
    let composite = design.composite(top).ok_or_else(|| NetlistError::Unknown {
        what: "top-level composite module",
        name: top.to_string(),
    })?;
    let mut cache = HashMap::new();
    characterize_wavefronts(design, composite, opts, pool, &mut cache)?;
    let mut models = HashMap::new();
    for inst in composite.instances() {
        if !models.contains_key(&inst.module) {
            let m = cache
                .get(&inst.module)
                .ok_or_else(|| NetlistError::Unknown {
                    what: "module",
                    name: inst.module.clone(),
                })?;
            models.insert(inst.module.clone(), m.clone());
        }
    }
    propagate(composite, &models, pi_arrivals)
}

/// Characterizes every module reachable from `top`'s instances into
/// `cache`, layering the module dependency DAG into wavefronts: wave 0
/// holds the leaves, wave k the composites whose children all sit in
/// earlier waves. Within a wave, leaf characterizations (the expensive,
/// solver-bound work) run as independent tasks on `pool`; composites
/// (cheap tuple algebra over cached child models) compose serially.
fn characterize_wavefronts(
    design: &Design,
    top: &Composite,
    opts: &ComposeOptions,
    pool: Option<&Scheduler>,
    cache: &mut HashMap<String, ModuleTiming>,
) -> Result<(), NetlistError> {
    // Reachable modules, indexed; deps point at instanced children.
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut deps: Vec<Vec<usize>> = Vec::new();
    let mut queue: Vec<String> = Vec::new();
    for inst in top.instances() {
        if !index.contains_key(&inst.module) {
            index.insert(inst.module.clone(), names.len());
            names.push(inst.module.clone());
            deps.push(Vec::new());
            queue.push(inst.module.clone());
        }
    }
    while let Some(name) = queue.pop() {
        let def = design.module(&name).ok_or_else(|| NetlistError::Unknown {
            what: "module",
            name: name.clone(),
        })?;
        if let ModuleBody::Composite(c) = &def.body {
            let me = index[&name];
            for inst in c.instances() {
                let child = match index.get(&inst.module) {
                    Some(&i) => i,
                    None => {
                        let i = names.len();
                        index.insert(inst.module.clone(), i);
                        names.push(inst.module.clone());
                        deps.push(Vec::new());
                        queue.push(inst.module.clone());
                        i
                    }
                };
                deps[me].push(child);
            }
        }
    }
    for wave in hfta_sched::wavefronts(names.len(), |i| deps[i].clone()) {
        // Split the wave: leaves fan out, composites compose in place.
        let mut leaves: Vec<(String, hfta_netlist::Netlist)> = Vec::new();
        let mut composites: Vec<&str> = Vec::new();
        for &i in &wave {
            let name = names[i].as_str();
            if cache.contains_key(name) {
                continue;
            }
            match &design.module(name).expect("indexed above").body {
                ModuleBody::Leaf(nl) => leaves.push((name.to_string(), nl.clone())),
                ModuleBody::Composite(_) => composites.push(name),
            }
        }
        leaves.sort_by(|a, b| a.0.cmp(&b.0));
        let hier = opts.hier;
        let characterized: Vec<(String, Result<ModuleTiming, NetlistError>)> = match pool {
            Some(pool) if leaves.len() > 1 => pool.run(leaves, move |(name, nl)| {
                let r = ModuleTiming::characterize(&nl, hier.source, hier.characterize);
                (name, r)
            }),
            _ => leaves
                .into_iter()
                .map(|(name, nl)| {
                    let r = ModuleTiming::characterize(&nl, hier.source, hier.characterize);
                    (name, r)
                })
                .collect(),
        };
        for (name, result) in characterized {
            cache.insert(name, result?);
        }
        for name in composites {
            let def = design.module(name).expect("indexed above");
            let ModuleBody::Composite(c) = &def.body else {
                unreachable!("partitioned as composite above");
            };
            let timing = compose_composite(c, opts, cache)?;
            cache.insert(name.to_string(), timing);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_fta::functional_circuit_delay;
    use hfta_fta::TopoSta;
    use hfta_netlist::gen::{carry_skip_adder, CsaDelays};
    use hfta_netlist::Composite;

    fn t(v: i64) -> Time {
        Time::new(v)
    }

    /// Builds a 3-level design: block (leaf) → csa8.2 (composite of 4
    /// blocks) → pair16 (two csa8.2 in cascade).
    fn three_level_design() -> Design {
        let mut design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut top = Composite::new("pair16");
        let c_in = top.add_input("c_in");
        let mut lo_inputs = vec![c_in];
        let mut hi_inputs = Vec::new();
        for i in 0..16 {
            let a = top.add_input(format!("a{i}"));
            let b = top.add_input(format!("b{i}"));
            if i < 8 {
                lo_inputs.push(a);
                lo_inputs.push(b);
            } else {
                hi_inputs.push(a);
                hi_inputs.push(b);
            }
        }
        let mut lo_outputs = Vec::new();
        for i in 0..8 {
            lo_outputs.push(top.add_net(format!("s{i}")));
        }
        let mid_carry = top.add_net("c8");
        lo_outputs.push(mid_carry);
        let mut hi_outputs = Vec::new();
        for i in 8..16 {
            hi_outputs.push(top.add_net(format!("s{i}")));
        }
        let final_carry = top.add_net("c16");
        hi_outputs.push(final_carry);
        top.add_instance("lo", "csa8.2", &lo_inputs, &lo_outputs);
        let mut hi_in = vec![mid_carry];
        hi_in.extend(hi_inputs);
        top.add_instance("hi", "csa8.2", &hi_in, &hi_outputs);
        for &s in lo_outputs[..8].iter().chain(&hi_outputs) {
            top.mark_output(s);
        }
        design.add_composite(top).unwrap();
        design
    }

    #[test]
    fn composite_model_matches_direct_analysis() {
        // The composed model of csa8.2 evaluated at all-zero arrivals
        // must equal the two-step hierarchical analysis of csa8.2.
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut cache = HashMap::new();
        let timing =
            characterize_recursive(&design, "csa8.2", &ComposeOptions::default(), &mut cache)
                .unwrap();
        assert_eq!(timing.input_names().len(), 17);
        assert_eq!(timing.output_names().len(), 9);
        let times = timing.output_stable_times(&[t(0); 17]);
        // Final carry: 2·4 + 6 = 14.
        assert_eq!(*times.last().unwrap(), t(14));
        // Last sum bit: carry-in of block 4 at 12, +4 = 16.
        assert_eq!(times[7], t(16));
    }

    #[test]
    fn three_level_conservative_and_tight() {
        let design = three_level_design();
        let arrivals = vec![t(0); 33];
        let analysis =
            analyze_multilevel(&design, "pair16", &arrivals, &ComposeOptions::default()).unwrap();
        let flat = design.flatten("pair16").unwrap();
        let exact = functional_circuit_delay(&flat).unwrap();
        let sta = TopoSta::new(&flat).unwrap();
        let topo = sta.circuit_delay(&vec![t(0); 33]);
        assert!(analysis.delay >= exact, "{} < {}", analysis.delay, exact);
        assert!(analysis.delay <= topo);
        // On this regular structure composition stays exact.
        assert_eq!(analysis.delay, exact);
        // 16-bit cascade of 2-bit blocks: last sum at 2·8 + 8 = 24.
        assert_eq!(exact, t(24));
    }

    #[test]
    fn composed_carry_model_keeps_false_path() {
        // The c_in → c16 effective delay through two composed csa8.2
        // models is 2 + 2·4 = 10? No: c_in of the low adder passes one
        // mux per block: the composed model of csa8.2 has
        // c_in → c8 = 2 + 2 + 2 + 2 = 8? The per-block false path
        // gives c_in → c_out = 2 per block, so 4 blocks compose to 8.
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut cache = HashMap::new();
        let timing =
            characterize_recursive(&design, "csa8.2", &ComposeOptions::default(), &mut cache)
                .unwrap();
        let carry_model = timing.model(8);
        let min_cin_delay = carry_model
            .tuples()
            .iter()
            .map(|tp| tp.delay(0))
            .min()
            .unwrap();
        assert_eq!(min_cin_delay, t(8), "2 per block × 4 blocks");
    }

    /// Wavefront-parallel characterization is bit-identical to the
    /// serial recursion — on an explicit pool and on the auto-pool
    /// taken from the thread options.
    #[test]
    fn wavefront_parallel_matches_serial() {
        let design = three_level_design();
        let arrivals = vec![t(0); 33];
        let serial =
            analyze_multilevel(&design, "pair16", &arrivals, &ComposeOptions::default()).unwrap();

        let pool = Scheduler::new(4);
        let parallel = analyze_multilevel_with(
            &design,
            "pair16",
            &arrivals,
            &ComposeOptions::default(),
            Some(&pool),
        )
        .unwrap();
        assert_eq!(serial, parallel);

        let opts = ComposeOptions {
            hier: HierOptions::default()
                .with_threads(4)
                .with_thread_clamp(false),
            ..ComposeOptions::default()
        };
        let auto = analyze_multilevel(&design, "pair16", &arrivals, &opts).unwrap();
        assert_eq!(serial, auto);
    }

    #[test]
    fn tuple_cap_is_sound() {
        let design = three_level_design();
        let arrivals = vec![t(0); 33];
        let tight = ComposeOptions {
            max_tuples: 1,
            ..ComposeOptions::default()
        };
        let analysis = analyze_multilevel(&design, "pair16", &arrivals, &tight).unwrap();
        let flat = design.flatten("pair16").unwrap();
        let exact = functional_circuit_delay(&flat).unwrap();
        assert!(analysis.delay >= exact, "cap must stay conservative");
    }
}
