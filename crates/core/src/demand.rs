//! The improved, demand-driven hierarchical analysis (Section 5).
//!
//! The two-step algorithm characterizes every pin-to-pin delay of every
//! leaf module even when the pin pair is never critical in any
//! instance, wasting CPU on accuracy that cannot influence the final
//! answer. The demand-driven algorithm instead:
//!
//! 1. builds a *timing graph* whose vertices are the top-level nets and
//!    whose edges are the module pin pairs, initially weighted with
//!    longest topological path lengths;
//! 2. runs forward (arrival) and backward (required) topological
//!    propagation, asserting the latest output arrival as the required
//!    time of every primary output, and computes slacks;
//! 3. picks *critical* edges (both endpoints at zero slack, edge
//!    tight) and refines each by one step: probe the next smaller
//!    distinct topological path length `l′` with a functional
//!    stability check of the module cone ("others at −lᵢ, the critical
//!    input at −l′"); accept the smaller weight in **all** instances of
//!    the module, or mark the edge accurate;
//! 4. repeats until every critical edge is marked.
//!
//! Weights only ever shrink and every accepted weight vector is
//! validated by a full XBD0 stability check, so the final delay remains
//! a conservative approximation of flat analysis (Theorem 1) while only
//! spending characterization effort where it matters.

use std::collections::{HashMap, HashSet};

use hfta_fta::{SatAlg, StabilityAnalyzer, TopoSta};
use hfta_netlist::{Composite, Design, NetId, Netlist, NetlistError, Time};

/// Options for the demand-driven analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DemandOptions {
    /// Cap on the per-pin distinct path-length lists.
    pub lengths_cap: usize,
    /// Whether an exhausted pin may be probed at `−∞` ("input
    /// irrelevant").
    pub try_irrelevant: bool,
    /// Safety bound on refinement rounds (`None` = until fixpoint).
    pub max_rounds: Option<usize>,
}

impl Default for DemandOptions {
    fn default() -> DemandOptions {
        DemandOptions {
            lengths_cap: 32,
            try_irrelevant: true,
            max_rounds: None,
        }
    }
}

/// Work counters and result of a demand-driven analysis.
#[derive(Clone, PartialEq, Debug)]
pub struct DemandAnalysis {
    /// Arrival time of every top-level net.
    pub net_arrivals: Vec<Time>,
    /// Arrival times of the primary outputs, in output order.
    pub output_arrivals: Vec<Time>,
    /// The estimated circuit delay.
    pub delay: Time,
    /// Refinement rounds executed.
    pub rounds: u64,
    /// Edge-weight reductions accepted.
    pub refinements: u64,
    /// Functional stability checks performed.
    pub checks: u64,
}

/// Per-(module, output) refinement state.
#[derive(Debug)]
struct OutputState {
    /// The single-output cone of this module output.
    cone: Netlist,
    /// For each module input: its position among the cone's inputs, or
    /// `None` if the input does not reach this output.
    cone_pos: Vec<Option<usize>>,
    /// Current edge weights per module input (`−∞` = no influence).
    weights: Vec<Time>,
    /// Distinct path lengths per module input, descending.
    lists: Vec<Vec<Time>>,
    /// Cursor into `lists` per input (index of the current weight).
    cursor: Vec<usize>,
    /// Edges proven accurate (no further probes).
    marked: Vec<bool>,
}

/// The Section 5 analyzer.
///
/// # Example
///
/// ```
/// use hfta_core::DemandDrivenAnalyzer;
/// use hfta_netlist::gen::{carry_skip_adder, CsaDelays};
/// use hfta_netlist::Time;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = carry_skip_adder(8, 2, CsaDelays::default());
/// let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", Default::default())?;
/// let result = an.analyze(&vec![Time::ZERO; 17])?;
/// assert_eq!(result.delay, Time::new(16)); // matches flat analysis
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DemandDrivenAnalyzer<'a> {
    top: &'a Composite,
    /// Instance order (topological) and resolved module names.
    order: Vec<usize>,
    /// Per distinct module name: refinement state per output index.
    modules: HashMap<String, Vec<OutputState>>,
    opts: DemandOptions,
    checks: u64,
    refinements: u64,
}

impl<'a> DemandDrivenAnalyzer<'a> {
    /// Creates an analyzer for module `top` of `design` (depth-1
    /// hierarchy, as in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Unknown`] for missing/non-leaf modules
    /// and validation errors.
    pub fn new(
        design: &'a Design,
        top: &str,
        opts: DemandOptions,
    ) -> Result<DemandDrivenAnalyzer<'a>, NetlistError> {
        design.validate()?;
        let top = design
            .composite(top)
            .ok_or_else(|| NetlistError::Unknown {
                what: "top-level composite module",
                name: top.to_string(),
            })?;
        let order = top.instance_topo_order()?;
        let mut modules: HashMap<String, Vec<OutputState>> = HashMap::new();
        for inst in top.instances() {
            if modules.contains_key(&inst.module) {
                continue;
            }
            let leaf = design
                .leaf(&inst.module)
                .ok_or_else(|| NetlistError::Unknown {
                    what: "leaf module (demand-driven analysis requires depth-1 hierarchy)",
                    name: inst.module.clone(),
                })?;
            let mut states = Vec::with_capacity(leaf.outputs().len());
            for &out in leaf.outputs() {
                states.push(OutputState::new(leaf, out, &opts)?);
            }
            modules.insert(inst.module.clone(), states);
        }
        Ok(DemandDrivenAnalyzer {
            top,
            order,
            modules,
            opts,
            checks: 0,
            refinements: 0,
        })
    }

    /// Runs the refinement loop to fixpoint and returns the analysis.
    ///
    /// # Errors
    ///
    /// Returns netlist errors from the underlying stability analyses.
    ///
    /// # Panics
    ///
    /// Panics if `pi_arrivals.len()` differs from the top-level input
    /// count.
    pub fn analyze(&mut self, pi_arrivals: &[Time]) -> Result<DemandAnalysis, NetlistError> {
        assert_eq!(
            pi_arrivals.len(),
            self.top.inputs().len(),
            "arrival vector length mismatch"
        );
        let mut rounds = 0u64;
        loop {
            let (arrivals, _) = self.forward(pi_arrivals);
            let required = self.backward(&arrivals);
            let critical = self.critical_edges(&arrivals, &required);
            if critical.is_empty() {
                let output_arrivals: Vec<Time> = self
                    .top
                    .outputs()
                    .iter()
                    .map(|&n| arrivals[n.index()])
                    .collect();
                let delay = output_arrivals
                    .iter()
                    .copied()
                    .fold(Time::NEG_INF, Time::max);
                return Ok(DemandAnalysis {
                    net_arrivals: arrivals,
                    output_arrivals,
                    delay,
                    rounds,
                    refinements: self.refinements,
                    checks: self.checks,
                });
            }
            for (module, out_idx, in_idx) in critical {
                self.refine(&module, out_idx, in_idx)?;
            }
            rounds += 1;
            if let Some(max) = self.opts.max_rounds {
                if rounds as usize >= max {
                    // Mark everything: report the current (still
                    // conservative) state.
                    for states in self.modules.values_mut() {
                        for s in states {
                            s.marked.iter_mut().for_each(|m| *m = true);
                        }
                    }
                }
            }
        }
    }

    /// The current weight of a module edge (for inspection/tests).
    #[must_use]
    pub fn edge_weight(&self, module: &str, out_idx: usize, in_idx: usize) -> Option<Time> {
        self.modules
            .get(module)
            .and_then(|s| s.get(out_idx))
            .map(|s| s.weights[in_idx])
    }

    /// A human-readable summary of what refinement did: for every
    /// module edge whose weight was tightened below its topological
    /// value, one line `module out<-in: topo -> refined [accurate]`.
    /// Call after [`DemandDrivenAnalyzer::analyze`].
    #[must_use]
    pub fn refinement_report(&self) -> String {
        use std::fmt::Write as _;
        let mut names: Vec<&String> = self.modules.keys().collect();
        names.sort();
        let mut s = String::new();
        for name in names {
            for (o, st) in self.modules[name.as_str()].iter().enumerate() {
                for (j, &w) in st.weights.iter().enumerate() {
                    let topo = st.lists[j].first().copied().unwrap_or(Time::NEG_INF);
                    if w < topo {
                        let _ = writeln!(
                            s,
                            "{name} out{o} <- in{j}: {topo} -> {w}{}",
                            if st.marked[j] { " [accurate]" } else { "" }
                        );
                    }
                }
            }
        }
        if s.is_empty() {
            s.push_str("no edges refined (topological weights were already accurate)\n");
        }
        s
    }

    /// Forward arrival propagation over the timing graph. Also returns
    /// per-instance input arrival snapshots (unused by callers today
    /// but cheap).
    fn forward(&self, pi_arrivals: &[Time]) -> (Vec<Time>, Vec<Vec<Time>>) {
        let mut arrivals = vec![Time::NEG_INF; self.top.net_count()];
        for (k, &pi) in self.top.inputs().iter().enumerate() {
            arrivals[pi.index()] = pi_arrivals[k];
        }
        let mut snapshots = vec![Vec::new(); self.top.instances().len()];
        for &idx in &self.order {
            let inst = &self.top.instances()[idx];
            let states = &self.modules[&inst.module];
            let in_arr: Vec<Time> = inst.inputs.iter().map(|n| arrivals[n.index()]).collect();
            for (o, &out_net) in inst.outputs.iter().enumerate() {
                let mut worst = Time::NEG_INF;
                for (j, &a) in in_arr.iter().enumerate() {
                    let w = states[o].weights[j];
                    if w == Time::NEG_INF {
                        continue;
                    }
                    let term = if a == Time::POS_INF { Time::POS_INF } else { a + w };
                    worst = worst.max(term);
                }
                arrivals[out_net.index()] = worst;
            }
            snapshots[idx] = in_arr;
        }
        (arrivals, snapshots)
    }

    /// Backward required-time propagation: the latest output arrival is
    /// asserted at every primary output.
    fn backward(&self, arrivals: &[Time]) -> Vec<Time> {
        let latest = self
            .top
            .outputs()
            .iter()
            .map(|&n| arrivals[n.index()])
            .fold(Time::NEG_INF, Time::max);
        let mut required = vec![Time::POS_INF; self.top.net_count()];
        for &po in self.top.outputs() {
            required[po.index()] = required[po.index()].min(latest);
        }
        for &idx in self.order.iter().rev() {
            let inst = &self.top.instances()[idx];
            let states = &self.modules[&inst.module];
            for (o, &out_net) in inst.outputs.iter().enumerate() {
                let r = required[out_net.index()];
                if r == Time::POS_INF {
                    continue;
                }
                for (j, &in_net) in inst.inputs.iter().enumerate() {
                    let w = states[o].weights[j];
                    if w == Time::NEG_INF {
                        continue;
                    }
                    required[in_net.index()] = required[in_net.index()].min(r - w);
                }
            }
        }
        required
    }

    /// Critical, unmarked, still-refinable edges, deduplicated at the
    /// module level: `(module, output index, input index)`.
    fn critical_edges(
        &self,
        arrivals: &[Time],
        required: &[Time],
    ) -> Vec<(String, usize, usize)> {
        let slack_zero = |n: NetId| {
            arrivals[n.index()].is_finite()
                && required[n.index()].is_finite()
                && arrivals[n.index()] == required[n.index()]
        };
        let mut seen = HashSet::new();
        let mut edges = Vec::new();
        for inst in self.top.instances() {
            let states = &self.modules[&inst.module];
            for (o, &out_net) in inst.outputs.iter().enumerate() {
                if !slack_zero(out_net) {
                    continue;
                }
                for (j, &in_net) in inst.inputs.iter().enumerate() {
                    let st = &states[o];
                    if st.marked[j] || st.weights[j] == Time::NEG_INF {
                        continue;
                    }
                    if !slack_zero(in_net) {
                        continue;
                    }
                    // The edge must be tight to lie on a critical path.
                    if arrivals[in_net.index()] + st.weights[j] != arrivals[out_net.index()] {
                        continue;
                    }
                    let key = (inst.module.clone(), o, j);
                    if seen.insert(key.clone()) {
                        edges.push(key);
                    }
                }
            }
        }
        edges
    }

    /// One refinement step of edge `(module, out, in)`: probe the next
    /// smaller distinct path length; accept or mark accurate.
    fn refine(&mut self, module: &str, out_idx: usize, in_idx: usize) -> Result<(), NetlistError> {
        // Determine the candidate without holding a mutable borrow.
        let (candidate, cone_arrivals, cone_out, target_pos) = {
            let st = &self.modules[module][out_idx];
            debug_assert!(!st.marked[in_idx]);
            let list = &st.lists[in_idx];
            let next = st.cursor[in_idx] + 1;
            let candidate = if next < list.len() {
                Some(list[next])
            } else if self.opts.try_irrelevant && st.weights[in_idx] != Time::NEG_INF {
                Some(Time::NEG_INF)
            } else {
                None
            };
            let Some(candidate) = candidate else {
                self.modules.get_mut(module).expect("exists")[out_idx].marked[in_idx] = true;
                return Ok(());
            };
            // Build cone arrivals: input j arrives at −w_j, the probed
            // input at −candidate.
            let n_cone = st.cone.inputs().len();
            let mut arrivals = vec![Time::POS_INF; n_cone];
            for (j, pos) in st.cone_pos.iter().enumerate() {
                if let Some(p) = *pos {
                    let w = if j == in_idx { candidate } else { st.weights[j] };
                    arrivals[p] = -w;
                }
            }
            let cone_out = st.cone.outputs()[0];
            let target = st.cone_pos[in_idx].expect("edge exists, so input reaches output");
            (candidate, arrivals, cone_out, target)
        };
        let _ = target_pos;
        self.checks += 1;
        let st = &self.modules[module][out_idx];
        let stable = {
            let mut analyzer = StabilityAnalyzer::new(&st.cone, &cone_arrivals, SatAlg::new())?;
            analyzer.is_stable_at(cone_out, Time::ZERO)
        };
        let st = self.modules.get_mut(module).expect("exists");
        let st = &mut st[out_idx];
        if stable {
            st.weights[in_idx] = candidate;
            if candidate == Time::NEG_INF {
                st.marked[in_idx] = true; // nothing below −∞
            } else {
                st.cursor[in_idx] += 1;
            }
            self.refinements += 1;
        } else {
            st.marked[in_idx] = true;
        }
        Ok(())
    }
}

impl OutputState {
    fn new(leaf: &Netlist, out: NetId, opts: &DemandOptions) -> Result<OutputState, NetlistError> {
        let (cone, sources) = leaf.cone(out);
        let cone_out = cone.outputs()[0];
        let sta = TopoSta::new(&cone)?;
        let distinct = sta.distinct_lengths_to(cone_out, opts.lengths_cap);
        let mut cone_pos = vec![None; leaf.inputs().len()];
        for (p, src) in sources.iter().enumerate() {
            let mod_pos = leaf
                .inputs()
                .iter()
                .position(|pi| pi == src)
                .expect("cone sources are primary inputs");
            cone_pos[mod_pos] = Some(p);
        }
        let mut weights = Vec::with_capacity(leaf.inputs().len());
        let mut lists = Vec::with_capacity(leaf.inputs().len());
        for pos in &cone_pos {
            match pos {
                Some(p) => {
                    let list = distinct[cone.inputs()[*p].index()].clone();
                    weights.push(list.first().copied().unwrap_or(Time::NEG_INF));
                    lists.push(list);
                }
                None => {
                    weights.push(Time::NEG_INF);
                    lists.push(Vec::new());
                }
            }
        }
        let n = leaf.inputs().len();
        Ok(OutputState {
            cone,
            cone_pos,
            weights,
            lists,
            cursor: vec![0; n],
            marked: vec![false; n],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, carry_skip_adder_flat, CsaDelays};
    use hfta_netlist::partition::cascade_bipartition;
    use hfta_netlist::gen::{random_circuit, RandomCircuitSpec};
    use hfta_fta::functional_circuit_delay;

    fn t(v: i64) -> Time {
        Time::new(v)
    }

    #[test]
    fn matches_flat_on_carry_skip_cascades() {
        for n in [4usize, 8, 12] {
            let name = format!("csa{n}.2");
            let design = carry_skip_adder(n, 2, CsaDelays::default());
            let mut an = DemandDrivenAnalyzer::new(&design, &name, Default::default()).unwrap();
            let result = an.analyze(&vec![t(0); 2 * n + 1]).unwrap();
            let flat = carry_skip_adder_flat(n, 2, CsaDelays::default()).unwrap();
            let exact = functional_circuit_delay(&flat).unwrap();
            assert_eq!(result.delay, exact, "n={n}");
            assert!(result.refinements > 0);
        }
    }

    #[test]
    fn refines_only_critical_edges() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", Default::default()).unwrap();
        let result = an.analyze(&[t(0); 17]).unwrap();
        // The refined carry edge: c_in (input 0) → c_out (output 2).
        assert_eq!(an.edge_weight("csa_block2", 2, 0), Some(t(2)));
        // A never-critical sum edge keeps its topological weight.
        assert_eq!(an.edge_weight("csa_block2", 0, 0), Some(t(2)));
        assert_eq!(an.edge_weight("csa_block2", 1, 1), Some(t(6)));
        // Only a handful of checks were needed (demand-driven!): far
        // fewer than full characterization of all 15 pin pairs.
        assert!(result.checks <= 12, "checks = {}", result.checks);
        // The refinement report names exactly the refined carry edge.
        let report = an.refinement_report();
        assert!(report.contains("csa_block2 out2 <- in0: 6 -> 2"), "{report}");
    }

    #[test]
    fn conservative_on_partitioned_random_logic() {
        for seed in 0..4 {
            let spec = RandomCircuitSpec {
                inputs: 10,
                gates: 80,
                seed,
                locality: 12,
                global_fanin_prob: 0.2,
                mix: Default::default(),
            };
            let flat = random_circuit(&format!("r{seed}"), spec);
            let design = cascade_bipartition(&flat, 0.5).unwrap();
            let top_name = format!("r{seed}_top");
            let mut an =
                DemandDrivenAnalyzer::new(&design, &top_name, Default::default()).unwrap();
            let top = design.composite(&top_name).unwrap();
            let result = an.analyze(&vec![t(0); top.inputs().len()]).unwrap();
            let exact = functional_circuit_delay(&flat).unwrap();
            assert!(
                result.delay >= exact,
                "seed {seed}: demand-driven {} below flat {exact}",
                result.delay
            );
            // And no worse than pure topological analysis.
            let sta = TopoSta::new(&flat).unwrap();
            let topo = sta.circuit_delay(&vec![t(0); flat.inputs().len()]);
            assert!(result.delay <= topo, "seed {seed}");
        }
    }

    #[test]
    fn max_rounds_caps_work() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let opts = DemandOptions {
            max_rounds: Some(1),
            ..DemandOptions::default()
        };
        let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", opts).unwrap();
        let result = an.analyze(&[t(0); 17]).unwrap();
        assert!(result.rounds <= 2);
        // Still conservative (between flat and topological).
        let flat = carry_skip_adder_flat(8, 2, CsaDelays::default()).unwrap();
        let exact = functional_circuit_delay(&flat).unwrap();
        assert!(result.delay >= exact);
    }

    #[test]
    fn skewed_arrivals_supported() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa4.2", Default::default()).unwrap();
        let mut arrivals = vec![t(0); 9];
        arrivals[0] = t(5); // c_in late, as in Figure 5
        let result = an.analyze(&arrivals).unwrap();
        // Flat reference.
        let flat = carry_skip_adder_flat(4, 2, CsaDelays::default()).unwrap();
        let mut flat_arr = vec![t(0); 9];
        flat_arr[0] = t(5);
        let mut flat_an = hfta_fta::DelayAnalyzer::new_sat(&flat, &flat_arr).unwrap();
        let exact = flat_an.circuit_delay();
        assert!(result.delay >= exact);
        assert_eq!(result.delay, exact, "accuracy preserved on this example");
    }
}

#[cfg(test)]
mod infinite_arrival_tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, CsaDelays};

    #[test]
    fn pos_inf_arrival_flows_through() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa4.2", Default::default()).unwrap();
        let mut arrivals = vec![Time::ZERO; 9];
        arrivals[1] = Time::POS_INF; // a0 never arrives
        let result = an.analyze(&arrivals).unwrap();
        // Outputs depending on a0 never stabilize; others stay finite.
        assert_eq!(result.output_arrivals[0], Time::POS_INF); // s0 needs a0
        assert_eq!(result.delay, Time::POS_INF);
        // s3 of the second block depends on the carry chain → +inf too,
        // but the analysis itself must terminate (this assertion is the
        // point of the test).
        assert!(result.rounds < 100);
    }

    #[test]
    fn neg_inf_arrival_is_benign() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa4.2", Default::default()).unwrap();
        let mut arrivals = vec![Time::ZERO; 9];
        arrivals[0] = Time::NEG_INF; // carry-in settled from forever
        let result = an.analyze(&arrivals).unwrap();
        assert!(result.delay.is_finite());
        // a0/b0 dominate: the usual 12.
        assert_eq!(result.delay, Time::new(12));
    }
}

#[cfg(test)]
mod reuse_tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, carry_skip_adder_flat, CsaDelays};

    /// The Section 3.3 benefit applies to demand-driven refinement too:
    /// an accepted edge weight was validated by a required-time check
    /// (inputs at the negated weights), which does not depend on the
    /// top-level arrival condition — so refinement survives across
    /// `analyze` calls and later analyses start from the sharpened
    /// graph.
    #[test]
    fn refinement_is_reused_across_arrival_conditions() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", Default::default()).unwrap();
        let first = an.analyze(&[Time::ZERO; 17]).unwrap();
        assert!(first.checks > 0);

        // Second condition: skewed carry-in. The carry edge is already
        // refined, so few (often zero) new checks are needed.
        let mut skewed = vec![Time::ZERO; 17];
        skewed[0] = Time::new(9);
        let checks_before = an.checks;
        let second = an.analyze(&skewed).unwrap();
        let new_checks = second.checks - checks_before;
        assert!(
            new_checks <= first.checks,
            "reuse failed: {new_checks} new checks vs {} initially",
            first.checks
        );

        // And the result is still sandwiched against flat analysis.
        let flat = carry_skip_adder_flat(8, 2, CsaDelays::default()).unwrap();
        let mut flat_an = hfta_fta::DelayAnalyzer::new_sat(&flat, &skewed).unwrap();
        let exact = flat_an.circuit_delay();
        assert!(second.delay >= exact);
        let sta = TopoSta::new(&flat).unwrap();
        assert!(second.delay <= sta.circuit_delay(&skewed));
    }
}

impl DemandDrivenAnalyzer<'_> {
    /// Renders the current timing graph as Graphviz `dot`: one node per
    /// top-level net, one edge per module pin pair labelled with its
    /// current weight. Refined edges (below topological) are drawn in
    /// red; `−∞` edges are omitted.
    #[must_use]
    pub fn timing_graph_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.top.name());
        let _ = writeln!(s, "  rankdir=LR;");
        for &pi in self.top.inputs() {
            let _ = writeln!(s, "  \"{}\" [shape=diamond];", self.top.net_name(pi));
        }
        for &po in self.top.outputs() {
            let _ = writeln!(s, "  \"{}\" [shape=doublecircle];", self.top.net_name(po));
        }
        for inst in self.top.instances() {
            let states = &self.modules[&inst.module];
            for (o, &out_net) in inst.outputs.iter().enumerate() {
                for (j, &in_net) in inst.inputs.iter().enumerate() {
                    let st = &states[o];
                    let w = st.weights[j];
                    if w == Time::NEG_INF {
                        continue;
                    }
                    let topo = st.lists[j].first().copied().unwrap_or(Time::NEG_INF);
                    let refined = w < topo;
                    let _ = writeln!(
                        s,
                        "  \"{}\" -> \"{}\" [label=\"{}:{}\"{}];",
                        self.top.net_name(in_net),
                        self.top.net_name(out_net),
                        inst.name,
                        w,
                        if refined { ", color=red" } else { "" }
                    );
                }
            }
        }
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, CsaDelays};

    #[test]
    fn timing_graph_dot_marks_refined_edges() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa4.2", Default::default()).unwrap();
        let _ = an.analyze(&[Time::ZERO; 9]).unwrap();
        let dot = an.timing_graph_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("color=red"), "refined carry edge flagged:\n{dot}");
        assert!(dot.contains("shape=diamond"));
        assert!(dot.ends_with("}\n"));
    }
}
