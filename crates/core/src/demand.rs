//! The improved, demand-driven hierarchical analysis (Section 5).
//!
//! The two-step algorithm characterizes every pin-to-pin delay of every
//! leaf module even when the pin pair is never critical in any
//! instance, wasting CPU on accuracy that cannot influence the final
//! answer. The demand-driven algorithm instead:
//!
//! 1. builds a *timing graph* whose vertices are the top-level nets and
//!    whose edges are the module pin pairs, initially weighted with
//!    longest topological path lengths;
//! 2. runs forward (arrival) and backward (required) topological
//!    propagation, asserting the latest output arrival as the required
//!    time of every primary output, and computes slacks;
//! 3. picks *critical* edges (both endpoints at zero slack, edge
//!    tight) and refines each by one step: probe the next smaller
//!    distinct topological path length `l′` with a functional
//!    stability check of the module cone ("others at −lᵢ, the critical
//!    input at −l′"); accept the smaller weight in **all** instances of
//!    the module, or mark the edge accurate;
//! 4. repeats until every critical edge is marked.
//!
//! Weights only ever shrink and every accepted weight vector is
//! validated by a full XBD0 stability check, so the final delay remains
//! a conservative approximation of flat analysis (Theorem 1) while only
//! spending characterization effort where it matters.
//!
//! Probes against one `(module, output)` cone go through a persistent
//! [`StabilityOracle`] owned by that cone's refinement state, so the
//! SAT solver, its learnt clauses, and the settled-function caches are
//! shared by every probe of that cone — across rounds and across
//! `analyze` calls. Independent cones are probed in parallel when
//! [`DemandOptions::threads`] allows: a round's critical edges are
//! grouped by `(module, output)` (probes of one group interact through
//! its shared weights and must stay ordered; groups touch disjoint
//! state), and groups are distributed over scoped worker threads. The
//! grouping preserves the serial probe order within each cone, so the
//! parallel analysis is bit-identical to the serial one.
//!
//! Structurally identical cones (equal hash-consed
//! [`hfta_netlist::ConeSig`]) additionally share a *verdict memo*: a
//! probe whose canonical arrival vector was already decided for an
//! isomorphic cone is answered without touching a solver. Stability is
//! a semantic property of the cone function and the arrival vector, so
//! under an unlimited budget the memoized verdict is exactly what the
//! solver would have returned; under a limited budget verdicts depend
//! on solver heuristics and probe history, so sharing is switched off
//! to keep budgeted runs bit-identical to the memo-free analysis.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use hfta_fta::{
    solve_episode_fields, AnalysisConfig, BoolAlg, PhaseWall, SatAlg, SharedStabilityEngine,
    SolveBudget, StabilityAnalyzer, StabilityOracle, StabilityStats, TopoSta,
};
use hfta_modeldb::{ModelDb, ModelDbStats};
use hfta_netlist::{
    cone_signature, Composite, ConeKey, Design, NetId, Netlist, NetlistError, Time,
};
use hfta_sched::Scheduler;
use hfta_trace::{TraceSink, Tracer, Value};

use crate::deadline::DeadlineToken;
use crate::hier::open_model_dbs;

/// Options for the demand-driven analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DemandOptions {
    /// Cap on the per-pin distinct path-length lists.
    pub lengths_cap: usize,
    /// Whether an exhausted pin may be probed at `−∞` ("input
    /// irrelevant").
    pub try_irrelevant: bool,
    /// Safety bound on refinement rounds (`None` = until fixpoint).
    pub max_rounds: Option<usize>,
    /// Keep one persistent [`StabilityOracle`] per `(module, output)`
    /// cone, reusing solver state across probes (the default). When
    /// `false`, every probe builds a fresh solver — the configuration
    /// the `ablation` benchmark compares against.
    pub reuse_oracle: bool,
    /// Worker threads for each refinement round's independent critical
    /// -edge probes. `1` (the default) probes serially; higher values
    /// distribute per-`(module, output)` probe groups over a persistent
    /// work-stealing pool that lives as long as the analyzer. Results
    /// are identical either way.
    pub threads: usize,
    /// Clamp [`DemandOptions::threads`] to the machine's available
    /// parallelism when the analyzer creates its pool (on by default —
    /// more workers than cores only adds contention). A
    /// `threads_clamped` trace event records when the clamp bites.
    /// Pools injected via [`DemandDrivenAnalyzer::set_scheduler`] are
    /// used as-is.
    pub clamp_threads: bool,
    /// Per-probe resource budget, plus (via its deadline) a wall-clock
    /// cutoff for the whole refinement loop. A probe the budget
    /// interrupts marks its edge at the current — already proven —
    /// weight instead of spinning, and is counted in
    /// [`StabilityStats::degraded`]. Unlimited by default, in which
    /// case the analysis is bit-identical to an unbudgeted one.
    pub budget: SolveBudget,
    /// Share stability verdicts across structurally identical cones
    /// (equal [`hfta_netlist::ConeSig`]): a probe whose canonical
    /// arrival vector was already decided for an isomorphic cone is
    /// answered from a memo instead of a solver. On by default. Only
    /// active when [`DemandOptions::budget`] is unlimited — budgeted
    /// verdicts depend on solver heuristics, so sharing them could
    /// change what a budgeted run reports.
    pub cone_sig: bool,
    /// Route the probes of a whole signature class through **one**
    /// shared incremental SAT instance
    /// ([`SharedStabilityEngine`]): the class's representative cone is
    /// encoded once, each probe is domain-restricted to its transitive
    /// fanin, learnt clauses are shared across all member cones, and
    /// the learnt database is compacted by subsumption between probes.
    /// On by default. Like [`DemandOptions::cone_sig`] (which it
    /// requires), only active under an unlimited budget — budgeted
    /// runs keep fresh per-cone solvers so degraded results stay
    /// bit-identical to the baseline. Verdicts are bit-identical
    /// either way.
    pub shared_solver: bool,
}

impl Default for DemandOptions {
    fn default() -> DemandOptions {
        DemandOptions {
            lengths_cap: 32,
            try_irrelevant: true,
            max_rounds: None,
            reuse_oracle: true,
            threads: 1,
            clamp_threads: true,
            budget: SolveBudget::UNLIMITED,
            cone_sig: true,
            shared_solver: true,
        }
    }
}

impl DemandOptions {
    /// Sets the distinct path-length list cap.
    #[must_use]
    pub fn with_lengths_cap(mut self, cap: usize) -> DemandOptions {
        self.lengths_cap = cap;
        self
    }

    /// Sets whether exhausted pins may be probed at `−∞`.
    #[must_use]
    pub fn with_try_irrelevant(mut self, on: bool) -> DemandOptions {
        self.try_irrelevant = on;
        self
    }

    /// Sets the refinement round cap (`None` = until fixpoint).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: Option<usize>) -> DemandOptions {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets whether per-cone oracles persist across probes.
    #[must_use]
    pub fn with_reuse_oracle(mut self, on: bool) -> DemandOptions {
        self.reuse_oracle = on;
        self
    }

    /// Sets the refinement thread count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> DemandOptions {
        self.threads = threads.max(1);
        self
    }

    /// Sets whether the thread count is clamped to the machine's
    /// available parallelism (on by default).
    #[must_use]
    pub fn with_thread_clamp(mut self, clamp: bool) -> DemandOptions {
        self.clamp_threads = clamp;
        self
    }

    /// Sets the per-probe resource budget.
    #[must_use]
    pub fn with_budget(mut self, budget: SolveBudget) -> DemandOptions {
        self.budget = budget;
        self
    }

    /// Sets whether isomorphic cones share stability verdicts.
    #[must_use]
    pub fn with_cone_sig(mut self, on: bool) -> DemandOptions {
        self.cone_sig = on;
        self
    }

    /// Sets whether a signature class's probes share one incremental
    /// SAT instance (see [`DemandOptions::shared_solver`]).
    #[must_use]
    pub fn with_shared_solver(mut self, on: bool) -> DemandOptions {
        self.shared_solver = on;
        self
    }
}

impl From<&AnalysisConfig> for DemandOptions {
    fn from(config: &AnalysisConfig) -> DemandOptions {
        DemandOptions {
            lengths_cap: config.lengths_cap,
            try_irrelevant: config.try_irrelevant,
            max_rounds: config.max_rounds,
            reuse_oracle: config.reuse_oracle,
            threads: config.threads,
            clamp_threads: config.clamp_threads,
            budget: config.budget,
            cone_sig: config.cone_sig,
            shared_solver: config.shared_solver,
        }
    }
}

/// Work counters and result of a demand-driven analysis.
#[derive(Clone, PartialEq, Debug)]
pub struct DemandAnalysis {
    /// Arrival time of every top-level net.
    pub net_arrivals: Vec<Time>,
    /// Arrival times of the primary outputs, in output order.
    pub output_arrivals: Vec<Time>,
    /// The estimated circuit delay.
    pub delay: Time,
    /// Refinement rounds executed.
    pub rounds: u64,
    /// Edge-weight reductions accepted.
    pub refinements: u64,
    /// Functional stability checks performed.
    pub checks: u64,
    /// Stability/solver work aggregated over every cone's engine,
    /// cumulative across `analyze` calls on one analyzer (persistent
    /// oracles live as long as the analyzer).
    pub stability: StabilityStats,
}

/// Per-(module, output) refinement state.
#[derive(Debug)]
struct OutputState {
    /// The single-output cone of this module output.
    cone: Netlist,
    /// For each module input: its position among the cone's inputs, or
    /// `None` if the input does not reach this output.
    cone_pos: Vec<Option<usize>>,
    /// Current edge weights per module input (`−∞` = no influence).
    weights: Vec<Time>,
    /// Distinct path lengths per module input, descending.
    lists: Vec<Vec<Time>>,
    /// Cursor into `lists` per input (index of the current weight).
    cursor: Vec<usize>,
    /// Edges proven accurate (no further probes).
    marked: Vec<bool>,
    /// Canonical structural signature and input correspondence of the
    /// cone. Computed on the cone's first refinement (cones that never
    /// become critical never pay for hashing); `sig_done` distinguishes
    /// "not yet computed" from "computed, cone is cyclic/unhashable".
    sig: Option<ConeKey>,
    sig_done: bool,
    /// Persistent stability oracle for this cone (lazily created on
    /// first probe when [`DemandOptions::reuse_oracle`] is set).
    oracle: Option<StabilityOracle<SatAlg>>,
    /// Whether this cone identity has registered with its class's
    /// [`SharedStabilityEngine`] (shared-solver mode only).
    engine_attached: bool,
    /// Stability work of fresh (non-oracle) probes of this cone.
    fresh_stats: StabilityStats,
}

/// Outcome of one cone's probes within a refinement round.
#[derive(Clone, Copy, Default)]
struct RoundWork {
    checks: u64,
    refinements: u64,
}

/// The Section 5 analyzer.
///
/// # Example
///
/// ```
/// use hfta_core::DemandDrivenAnalyzer;
/// use hfta_netlist::gen::{carry_skip_adder, CsaDelays};
/// use hfta_netlist::Time;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = carry_skip_adder(8, 2, CsaDelays::default());
/// let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", Default::default())?;
/// let result = an.analyze(&vec![Time::ZERO; 17])?;
/// assert_eq!(result.delay, Time::new(16)); // matches flat analysis
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DemandDrivenAnalyzer<'a> {
    top: &'a Composite,
    /// Instance order (topological) and resolved module names.
    order: Vec<usize>,
    /// Interned module names, index-aligned with `modules`.
    module_names: Vec<String>,
    /// Name → index into `module_names`/`modules`.
    module_index: HashMap<String, usize>,
    /// Per instance (by position in `top.instances()`): its module
    /// index.
    inst_module: Vec<usize>,
    /// Per distinct module: refinement state per output index. Each
    /// slot is `Some` except while its cone is checked out to a worker
    /// inside [`DemandDrivenAnalyzer::refine_round`] (persistent
    /// workers need owned tasks, so a round moves the probed states out
    /// and back).
    modules: Vec<Vec<Option<OutputState>>>,
    /// Decided stability verdicts per structural signature class, keyed
    /// by the canonical (slot-space) arrival vector. Persists across
    /// rounds and `analyze` calls, like the per-cone oracles.
    verdict_memo: HashMap<u128, HashMap<Vec<Time>, bool>>,
    /// One shared incremental SAT instance per signature class
    /// (shared-solver mode). Checked out to the class's worker for the
    /// duration of a round, like the verdict memo; persists across
    /// rounds and `analyze` calls, like the per-cone oracles.
    class_engines: HashMap<u128, SharedStabilityEngine>,
    /// Persistent verdict store probed once per signature class (see
    /// [`DemandDrivenAnalyzer::set_model_db_use`]).
    db_use: Option<ModelDb>,
    /// Persistent store the memo is flushed into after each `analyze`.
    db_emit: Option<ModelDb>,
    /// Signature classes whose persisted verdicts were already folded
    /// into `verdict_memo` this session (one disk read per class).
    verdicts_loaded: HashSet<u128>,
    opts: DemandOptions,
    checks: u64,
    refinements: u64,
    wall: PhaseWall,
    /// Trace sink for `refine_round` spans, freeze events and per-probe
    /// events; disabled by default (zero-cost).
    trace: TraceSink,
    /// Persistent worker pool for parallel rounds: created once (first
    /// parallel round) or injected, then reused across rounds and
    /// across `analyze` calls — never re-spawned per round.
    scheduler: Option<Scheduler>,
    /// The `threads_clamped` event is emitted at most once.
    clamp_reported: bool,
}

/// Invariant message for the `Option<OutputState>` slots.
const STATE_PRESENT: &str = "cone state present (only checked out inside refine_round)";

fn micros_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

impl<'a> DemandDrivenAnalyzer<'a> {
    /// Creates an analyzer for module `top` of `design` (depth-1
    /// hierarchy, as in the paper).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Unknown`] for missing/non-leaf modules
    /// and validation errors.
    pub fn new(
        design: &'a Design,
        top: &str,
        opts: DemandOptions,
    ) -> Result<DemandDrivenAnalyzer<'a>, NetlistError> {
        design.validate()?;
        let top = design.composite(top).ok_or_else(|| NetlistError::Unknown {
            what: "top-level composite module",
            name: top.to_string(),
        })?;
        let order = top.instance_topo_order()?;
        let mut module_names: Vec<String> = Vec::new();
        let mut module_index: HashMap<String, usize> = HashMap::new();
        let mut modules: Vec<Vec<Option<OutputState>>> = Vec::new();
        let mut inst_module = Vec::with_capacity(top.instances().len());
        for inst in top.instances() {
            if let Some(&mi) = module_index.get(&inst.module) {
                inst_module.push(mi);
                continue;
            }
            let leaf = design
                .leaf(&inst.module)
                .ok_or_else(|| NetlistError::Unknown {
                    what: "leaf module (demand-driven analysis requires depth-1 hierarchy)",
                    name: inst.module.clone(),
                })?;
            let mut states = Vec::with_capacity(leaf.outputs().len());
            for &out in leaf.outputs() {
                states.push(Some(OutputState::new(leaf, out, &opts)?));
            }
            let mi = modules.len();
            module_index.insert(inst.module.clone(), mi);
            module_names.push(inst.module.clone());
            modules.push(states);
            inst_module.push(mi);
        }
        Ok(DemandDrivenAnalyzer {
            top,
            order,
            module_names,
            module_index,
            inst_module,
            modules,
            verdict_memo: HashMap::new(),
            class_engines: HashMap::new(),
            db_use: None,
            db_emit: None,
            verdicts_loaded: HashSet::new(),
            opts,
            checks: 0,
            refinements: 0,
            wall: PhaseWall::default(),
            trace: TraceSink::disabled(),
            scheduler: None,
            clamp_reported: false,
        })
    }

    /// Creates an analyzer from the unified [`AnalysisConfig`]: budget,
    /// thread count, sharing switches and trace sink all come from
    /// `config`.
    ///
    /// # Errors
    ///
    /// Same as [`DemandDrivenAnalyzer::new`].
    pub fn with_config(
        design: &'a Design,
        top: &str,
        config: &AnalysisConfig,
    ) -> Result<DemandDrivenAnalyzer<'a>, NetlistError> {
        let mut an = DemandDrivenAnalyzer::new(design, top, DemandOptions::from(config))?;
        an.set_trace(config.trace.clone());
        if let Some(pool) = config.scheduler.get() {
            an.set_scheduler(pool.clone());
        }
        let (use_db, emit_db) = open_model_dbs(&config.model_db)?;
        an.db_use = use_db;
        an.db_emit = emit_db;
        Ok(an)
    }

    /// Attaches a persistent database to warm-start the verdict memo
    /// from: each signature class's stored verdicts are folded in the
    /// first time the class is probed. Stored verdicts are exact (only
    /// unlimited-budget memos are ever persisted), so a warm run is
    /// bit-identical to a cold one.
    pub fn set_model_db_use(&mut self, db: ModelDb) {
        self.db_use = Some(db);
    }

    /// Attaches a persistent database the verdict memo is flushed to
    /// after every [`DemandDrivenAnalyzer::analyze`] (merged with
    /// whatever is already on disk). Only active when verdict sharing
    /// is — unlimited budget with [`DemandOptions::cone_sig`] on.
    pub fn set_model_db_emit(&mut self, db: ModelDb) {
        self.db_emit = Some(db);
    }

    /// Counters of the attached model-database handles, merged across
    /// the read and emit sides (all zero when no database is attached).
    #[must_use]
    pub fn model_db_stats(&self) -> ModelDbStats {
        let mut s = ModelDbStats::default();
        if let Some(db) = &self.db_use {
            s.merge(&db.stats());
        }
        if let Some(db) = &self.db_emit {
            s.merge(&db.stats());
        }
        s
    }

    /// Installs a shared worker pool for parallel refinement rounds.
    /// The pool is used as-is (no clamping — its size was decided by
    /// whoever built it) and kept for the analyzer's whole life, so
    /// several analyzers can share one set of workers.
    pub fn set_scheduler(&mut self, pool: Scheduler) {
        self.scheduler = Some(pool);
    }

    /// The worker pool parallel rounds run on, if one exists yet
    /// (injected or lazily created by the first parallel round).
    #[must_use]
    pub fn scheduler_handle(&self) -> Option<&Scheduler> {
        self.scheduler.as_ref()
    }

    /// Installs a trace sink; subsequent `analyze` calls record
    /// `refine_round` spans, freeze events and per-probe events into
    /// it. A disabled sink (the default) costs nothing.
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Runs the refinement loop to fixpoint and returns the analysis.
    ///
    /// # Errors
    ///
    /// Returns netlist errors from the underlying stability analyses.
    ///
    /// # Panics
    ///
    /// Panics if `pi_arrivals.len()` differs from the top-level input
    /// count.
    pub fn analyze(&mut self, pi_arrivals: &[Time]) -> Result<DemandAnalysis, NetlistError> {
        assert_eq!(
            pi_arrivals.len(),
            self.top.inputs().len(),
            "arrival vector length mismatch"
        );
        let deadline = DeadlineToken::new(self.opts.budget.deadline);
        let mut tracer = self.trace.tracer();
        let mut rounds = 0u64;
        let arrivals = loop {
            let graph_t0 = Instant::now();
            let (arrivals, _) = self.forward(pi_arrivals);
            let required = self.backward(&arrivals);
            let critical = self.critical_edges(&arrivals, &required);
            self.wall.propagate_micros += micros_since(graph_t0);
            if critical.is_empty() {
                break arrivals;
            }
            let capped = self
                .opts
                .max_rounds
                .is_some_and(|max| rounds as usize >= max);
            if capped || deadline.expired() {
                // Cap or deadline hit: freeze the graph in its current
                // (still conservative) state — no further probes, this
                // call or later ones. The edges that were still being
                // chased count as degraded: their weights stay at the
                // last proven (possibly topological) value without the
                // accuracy mark a finished refinement earns.
                if tracer.is_enabled() {
                    tracer.event(
                        "refine_freeze",
                        vec![
                            (
                                "reason",
                                Value::from(if capped { "max_rounds" } else { "deadline" }),
                            ),
                            ("frozen_edges", Value::from(critical.len())),
                        ],
                    );
                }
                for &(mi, o, _) in &critical {
                    self.modules[mi][o]
                        .as_mut()
                        .expect(STATE_PRESENT)
                        .fresh_stats
                        .degraded += 1;
                }
                for states in &mut self.modules {
                    for s in states.iter_mut().flatten() {
                        s.marked.iter_mut().for_each(|m| *m = true);
                    }
                }
                break arrivals;
            }
            let span = tracer.is_enabled().then(|| tracer.begin("refine_round"));
            let (checks0, refinements0) = (self.checks, self.refinements);
            let refine_t0 = Instant::now();
            let refined = self.refine_round(&critical, &mut tracer);
            self.wall.refine_micros += micros_since(refine_t0);
            if let Some(span) = span {
                tracer.end_with(
                    span,
                    vec![
                        ("round", Value::from(rounds)),
                        ("critical_edges", Value::from(critical.len())),
                        ("checks", Value::from(self.checks - checks0)),
                        ("refinements", Value::from(self.refinements - refinements0)),
                    ],
                );
            }
            if let Err(e) = refined {
                self.trace.absorb(tracer);
                return Err(e);
            }
            rounds += 1;
        };
        if tracer.is_enabled() && self.opts.shared_solver {
            let s = self.stability_stats();
            tracer.event(
                "shared_solver_stats",
                vec![
                    ("domains_built", Value::from(s.domains_built)),
                    ("clauses_subsumed", Value::from(s.clauses_subsumed)),
                    ("learnts_imported", Value::from(s.learnts_imported)),
                ],
            );
        }
        self.trace.absorb(tracer);
        // Flush decided verdicts to the persistent store (merged with
        // whatever is already on disk). The memo only ever fills under
        // an unlimited budget with sharing on, so everything flushed
        // here is exact and safe to replay in any later session.
        if let Some(db) = self.db_emit.as_mut() {
            for (&sig, memo) in &self.verdict_memo {
                db.store_verdicts(sig, memo);
            }
        }
        let output_arrivals: Vec<Time> = self
            .top
            .outputs()
            .iter()
            .map(|&n| arrivals[n.index()])
            .collect();
        let delay = output_arrivals
            .iter()
            .copied()
            .fold(Time::NEG_INF, Time::max);
        Ok(DemandAnalysis {
            net_arrivals: arrivals,
            output_arrivals,
            delay,
            rounds,
            refinements: self.refinements,
            checks: self.checks,
            stability: self.stability_stats(),
        })
    }

    /// Stability/solver work aggregated across every cone's engines
    /// (persistent oracles plus any fresh per-probe analyzers).
    #[must_use]
    pub fn stability_stats(&self) -> StabilityStats {
        let mut total = StabilityStats::default();
        for states in &self.modules {
            for st in states.iter().flatten() {
                if let Some(oracle) = &st.oracle {
                    total.merge(&oracle.stats());
                }
                total.merge(&st.fresh_stats);
            }
        }
        for engine in self.class_engines.values() {
            total.merge(&engine.stats());
        }
        total.wall = self.wall;
        total
    }

    /// The current weight of a module edge (for inspection/tests).
    #[must_use]
    pub fn edge_weight(&self, module: &str, out_idx: usize, in_idx: usize) -> Option<Time> {
        self.module_index
            .get(module)
            .and_then(|&mi| self.modules[mi].get(out_idx))
            .and_then(|s| s.as_ref())
            .map(|s| s.weights[in_idx])
    }

    /// A human-readable summary of what refinement did: for every
    /// module edge whose weight was tightened below its topological
    /// value, one line `module out<-in: topo -> refined [accurate]`.
    /// Call after [`DemandDrivenAnalyzer::analyze`].
    #[must_use]
    pub fn refinement_report(&self) -> String {
        use std::fmt::Write as _;
        let mut names: Vec<(&String, usize)> = self
            .module_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n, i))
            .collect();
        names.sort();
        let mut s = String::new();
        for (name, mi) in names {
            for (o, st) in self.modules[mi].iter().enumerate() {
                let st = st.as_ref().expect(STATE_PRESENT);
                for (j, &w) in st.weights.iter().enumerate() {
                    let topo = st.lists[j].first().copied().unwrap_or(Time::NEG_INF);
                    if w < topo {
                        let _ = writeln!(
                            s,
                            "{name} out{o} <- in{j}: {topo} -> {w}{}",
                            if st.marked[j] { " [accurate]" } else { "" }
                        );
                    }
                }
            }
        }
        if s.is_empty() {
            s.push_str("no edges refined (topological weights were already accurate)\n");
        }
        s
    }

    /// Cones with probes abandoned by a budget or frozen by a cap:
    /// `(module name, output index, degraded probe count)`, sorted by
    /// module name. Empty when no budget/cap fired.
    #[must_use]
    pub fn degraded_cones(&self) -> Vec<(String, usize, u64)> {
        let mut names: Vec<(&String, usize)> = self
            .module_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n, i))
            .collect();
        names.sort();
        let mut v = Vec::new();
        for (name, mi) in names {
            for (o, st) in self.modules[mi].iter().enumerate() {
                let st = st.as_ref().expect(STATE_PRESENT);
                if st.fresh_stats.degraded > 0 {
                    v.push((name.clone(), o, st.fresh_stats.degraded));
                }
            }
        }
        v
    }

    /// Forward arrival propagation over the timing graph. Also returns
    /// per-instance input arrival snapshots (unused by callers today
    /// but cheap).
    fn forward(&self, pi_arrivals: &[Time]) -> (Vec<Time>, Vec<Vec<Time>>) {
        let mut arrivals = vec![Time::NEG_INF; self.top.net_count()];
        for (k, &pi) in self.top.inputs().iter().enumerate() {
            arrivals[pi.index()] = pi_arrivals[k];
        }
        let mut snapshots = vec![Vec::new(); self.top.instances().len()];
        for &idx in &self.order {
            let inst = &self.top.instances()[idx];
            let states = &self.modules[self.inst_module[idx]];
            let in_arr: Vec<Time> = inst.inputs.iter().map(|n| arrivals[n.index()]).collect();
            for (o, &out_net) in inst.outputs.iter().enumerate() {
                let st = states[o].as_ref().expect(STATE_PRESENT);
                let mut worst = Time::NEG_INF;
                for (j, &a) in in_arr.iter().enumerate() {
                    let w = st.weights[j];
                    if w == Time::NEG_INF {
                        continue;
                    }
                    let term = if a == Time::POS_INF {
                        Time::POS_INF
                    } else {
                        a + w
                    };
                    worst = worst.max(term);
                }
                arrivals[out_net.index()] = worst;
            }
            snapshots[idx] = in_arr;
        }
        (arrivals, snapshots)
    }

    /// Backward required-time propagation: the latest output arrival is
    /// asserted at every primary output.
    fn backward(&self, arrivals: &[Time]) -> Vec<Time> {
        let latest = self
            .top
            .outputs()
            .iter()
            .map(|&n| arrivals[n.index()])
            .fold(Time::NEG_INF, Time::max);
        let mut required = vec![Time::POS_INF; self.top.net_count()];
        for &po in self.top.outputs() {
            required[po.index()] = required[po.index()].min(latest);
        }
        for &idx in self.order.iter().rev() {
            let inst = &self.top.instances()[idx];
            let states = &self.modules[self.inst_module[idx]];
            for (o, &out_net) in inst.outputs.iter().enumerate() {
                let st = states[o].as_ref().expect(STATE_PRESENT);
                let r = required[out_net.index()];
                if r == Time::POS_INF {
                    continue;
                }
                for (j, &in_net) in inst.inputs.iter().enumerate() {
                    let w = st.weights[j];
                    if w == Time::NEG_INF {
                        continue;
                    }
                    required[in_net.index()] = required[in_net.index()].min(r - w);
                }
            }
        }
        required
    }

    /// Critical, unmarked, still-refinable edges, deduplicated at the
    /// module level: `(module index, output index, input index)`.
    fn critical_edges(&self, arrivals: &[Time], required: &[Time]) -> Vec<(usize, usize, usize)> {
        let slack_zero = |n: NetId| {
            arrivals[n.index()].is_finite()
                && required[n.index()].is_finite()
                && arrivals[n.index()] == required[n.index()]
        };
        let mut seen = HashSet::new();
        let mut edges = Vec::new();
        for (idx, inst) in self.top.instances().iter().enumerate() {
            let mi = self.inst_module[idx];
            let states = &self.modules[mi];
            for (o, &out_net) in inst.outputs.iter().enumerate() {
                if !slack_zero(out_net) {
                    continue;
                }
                let st = states[o].as_ref().expect(STATE_PRESENT);
                for (j, &in_net) in inst.inputs.iter().enumerate() {
                    if st.marked[j] || st.weights[j] == Time::NEG_INF {
                        continue;
                    }
                    if !slack_zero(in_net) {
                        continue;
                    }
                    // The edge must be tight to lie on a critical path.
                    if arrivals[in_net.index()] + st.weights[j] != arrivals[out_net.index()] {
                        continue;
                    }
                    let key = (mi, o, j);
                    if seen.insert(key) {
                        edges.push(key);
                    }
                }
            }
        }
        edges
    }

    /// The pool this round's classes run on, or `None` to probe
    /// serially. An injected pool wins unchanged; otherwise the first
    /// parallel round creates one with [`DemandOptions::threads`]
    /// workers — clamped to the machine's parallelism unless
    /// [`DemandOptions::clamp_threads`] is off — and the analyzer keeps
    /// it from then on.
    fn scheduler_for_round(&mut self, tracer: &mut Tracer) -> Option<Scheduler> {
        if self.scheduler.is_none() && self.opts.threads > 1 {
            let effective =
                hfta_sched::effective_parallelism(self.opts.threads, self.opts.clamp_threads);
            if effective < self.opts.threads && tracer.is_enabled() && !self.clamp_reported {
                self.clamp_reported = true;
                tracer.event(
                    "threads_clamped",
                    vec![
                        ("requested", Value::from(self.opts.threads)),
                        ("effective", Value::from(effective)),
                        (
                            "available",
                            Value::from(hfta_sched::available_parallelism()),
                        ),
                    ],
                );
            }
            if effective > 1 {
                self.scheduler = Some(Scheduler::new(effective));
            }
        }
        self.scheduler.clone().filter(|pool| pool.threads() > 1)
    }

    /// Probes one round's critical edges. Edges are grouped by
    /// `(module, output)` — probes within a group read each other's
    /// accepted weights and stay in their serial order. Groups whose
    /// cones share a structural signature are bundled into one *class*
    /// so they can share that signature's verdict memo; a class stays
    /// on one worker and its groups are probed serially, in their
    /// serial order, so memo hits land identically however the classes
    /// are scheduled. Distinct classes touch disjoint state and run as
    /// owned tasks on the persistent pool when one is available (their
    /// `OutputState`s — oracles included — are checked out of
    /// `self.modules` for the duration and restored in class order).
    /// Either way the outcome is the same as probing all edges serially
    /// in `critical` order.
    fn refine_round(
        &mut self,
        critical: &[(usize, usize, usize)],
        tracer: &mut Tracer,
    ) -> Result<(), NetlistError> {
        // Group edge probes per (module, output), preserving order.
        let mut group_edges: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        let mut group_order: Vec<(usize, usize)> = Vec::new();
        for &(mi, o, j) in critical {
            let entry = group_edges.entry((mi, o)).or_default();
            if entry.is_empty() {
                group_order.push((mi, o));
            }
            entry.push(j);
        }
        let pool = self.scheduler_for_round(tracer);
        // Check the probed cones out of their slots, in ascending
        // (module, output) order.
        group_order.sort_unstable();
        let mut work: Vec<(usize, usize, OutputState, Vec<usize>)> =
            Vec::with_capacity(group_order.len());
        for &(mi, o) in &group_order {
            let st = self.modules[mi][o].take().expect(STATE_PRESENT);
            let edges = group_edges.remove(&(mi, o)).expect("grouped above");
            work.push((mi, o, st, edges));
        }
        let opts = self.opts;
        // Bundle the groups into signature classes. Each class takes
        // its verdict memo out of the analyzer for the duration of the
        // round (workers need exclusive access) and hands it back
        // below.
        let memo_on = opts.cone_sig && opts.budget.is_unlimited();
        struct ClassTask {
            sig: Option<u128>,
            memo: HashMap<Vec<Time>, bool>,
            engine: Option<SharedStabilityEngine>,
            work: Vec<(usize, usize, OutputState, Vec<usize>)>,
            tracer: Tracer,
        }
        struct ClassDone {
            outcome: Result<RoundWork, NetlistError>,
            sig: Option<u128>,
            memo: HashMap<Vec<Time>, bool>,
            engine: Option<SharedStabilityEngine>,
            work: Vec<(usize, usize, OutputState, Vec<usize>)>,
            tracer: Tracer,
        }
        let mut class_of: HashMap<u128, usize> = HashMap::new();
        let mut classes: Vec<ClassTask> = Vec::new();
        for (mi, o, mut st, edges) in work {
            let sig = if memo_on {
                st.ensure_sig().map(|k| k.sig.0)
            } else {
                None
            };
            if let Some(ci) = sig.and_then(|s| class_of.get(&s).copied()) {
                classes[ci].work.push((mi, o, st, edges));
                continue;
            }
            if let Some(s) = sig {
                class_of.insert(s, classes.len());
            }
            // Each class probes into a forked tracer (worker = class
            // index + 1); buffers merge back in class order below, so
            // the trace is identical however classes are scheduled.
            let class_tracer = tracer.fork(classes.len() as u32 + 1);
            let mut memo = sig
                .and_then(|s| self.verdict_memo.remove(&s))
                .unwrap_or_default();
            // First touch of this signature class: fold in persisted
            // verdicts. They are exact (only unlimited-budget memos are
            // stored), so a warm start answers the same probes the
            // solver would — just without the solver.
            if let (Some(s), Some(db)) = (sig, self.db_use.as_mut()) {
                if self.verdicts_loaded.insert(s) {
                    let stored = db.load_verdicts(s);
                    let count = stored.len();
                    for (k, v) in stored {
                        memo.entry(k).or_insert(v);
                    }
                    if count > 0 && tracer.is_enabled() {
                        tracer.event(
                            "verdict_db_load",
                            vec![
                                ("sig", Value::from(format!("{s:032x}"))),
                                ("verdicts", Value::from(count)),
                            ],
                        );
                    }
                }
            }
            // The class's shared engine travels with its memo (both are
            // exclusive to the class's worker for the round).
            let engine = sig.and_then(|s| self.class_engines.remove(&s));
            classes.push(ClassTask {
                sig,
                memo,
                engine,
                work: vec![(mi, o, st, edges)],
                tracer: class_tracer,
            });
        }
        let run = move |mut class: ClassTask| -> ClassDone {
            let outcome = refine_class(
                &mut class.work,
                &mut class.memo,
                &mut class.engine,
                &opts,
                &mut class.tracer,
            );
            ClassDone {
                outcome,
                sig: class.sig,
                memo: class.memo,
                engine: class.engine,
                work: class.work,
                tracer: class.tracer,
            }
        };
        let done: Vec<ClassDone> = match pool {
            Some(pool) if classes.len() > 1 => pool.run(classes, run),
            _ => classes.into_iter().map(run).collect(),
        };
        let mut first_err = None;
        for d in done {
            tracer.absorb(d.tracer);
            if let Some(sig) = d.sig {
                self.verdict_memo.insert(sig, d.memo);
                if let Some(engine) = d.engine {
                    self.class_engines.insert(sig, engine);
                }
            }
            // Restore the checked-out states — on the error path too,
            // so a failed round leaves the analyzer whole.
            for (mi, o, st, _) in d.work {
                debug_assert!(self.modules[mi][o].is_none());
                self.modules[mi][o] = Some(st);
            }
            match d.outcome {
                Ok(w) => {
                    self.checks += w.checks;
                    self.refinements += w.refinements;
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Rewinds every edge to its topological weight and clears shared
    /// verdicts and counters, as if the analyzer were freshly built —
    /// but keeps the expensive long-lived state: per-cone oracles and
    /// per-class shared engines (learnt clauses included), cone
    /// signatures, and the worker pool. Benchmarks use this to measure
    /// steady-state refinement without paying construction on every
    /// iteration.
    pub fn reset_refinement(&mut self) {
        for states in &mut self.modules {
            for st in states.iter_mut().flatten() {
                for j in 0..st.weights.len() {
                    st.weights[j] = st.lists[j].first().copied().unwrap_or(Time::NEG_INF);
                    st.cursor[j] = 0;
                    st.marked[j] = false;
                }
                st.fresh_stats = StabilityStats::default();
            }
        }
        self.verdict_memo.clear();
        self.verdicts_loaded.clear();
        self.checks = 0;
        self.refinements = 0;
        self.wall = PhaseWall::default();
    }
}

/// Probes every `(cone, edges)` group of one signature class, in
/// order, all sharing the class's verdict `memo` and (in shared-solver
/// mode) its one incremental SAT `engine`.
fn refine_class(
    work: &mut [(usize, usize, OutputState, Vec<usize>)],
    memo: &mut HashMap<Vec<Time>, bool>,
    engine: &mut Option<SharedStabilityEngine>,
    opts: &DemandOptions,
    tracer: &mut Tracer,
) -> Result<RoundWork, NetlistError> {
    let mut round = RoundWork::default();
    for (_, _, st, edges) in work.iter_mut() {
        for &j in edges.iter() {
            st.refine_edge(j, opts, &mut round, memo, engine, tracer)?;
        }
    }
    Ok(round)
}

impl OutputState {
    fn new(leaf: &Netlist, out: NetId, opts: &DemandOptions) -> Result<OutputState, NetlistError> {
        let (cone, sources) = leaf.cone(out);
        let cone_out = cone.outputs()[0];
        let sta = TopoSta::new(&cone)?;
        let distinct = sta.distinct_lengths_to(cone_out, opts.lengths_cap);
        let mut cone_pos = vec![None; leaf.inputs().len()];
        for (p, src) in sources.iter().enumerate() {
            let mod_pos = leaf
                .inputs()
                .iter()
                .position(|pi| pi == src)
                .expect("cone sources are primary inputs");
            cone_pos[mod_pos] = Some(p);
        }
        let mut weights = Vec::with_capacity(leaf.inputs().len());
        let mut lists = Vec::with_capacity(leaf.inputs().len());
        for pos in &cone_pos {
            match pos {
                Some(p) => {
                    let list = distinct[cone.inputs()[*p].index()].clone();
                    weights.push(list.first().copied().unwrap_or(Time::NEG_INF));
                    lists.push(list);
                }
                None => {
                    weights.push(Time::NEG_INF);
                    lists.push(Vec::new());
                }
            }
        }
        let n = leaf.inputs().len();
        Ok(OutputState {
            cone,
            cone_pos,
            weights,
            lists,
            cursor: vec![0; n],
            marked: vec![false; n],
            sig: None,
            sig_done: false,
            oracle: None,
            engine_attached: false,
            fresh_stats: StabilityStats::default(),
        })
    }

    /// The cone's structural signature, computed on first use.
    fn ensure_sig(&mut self) -> Option<&ConeKey> {
        if !self.sig_done {
            self.sig_done = true;
            self.sig = cone_signature(&self.cone).ok();
        }
        self.sig.as_ref()
    }

    /// One refinement step of the edge into input `in_idx`: probe the
    /// next smaller distinct path length; accept or mark accurate.
    /// `memo` is the verdict memo of this cone's signature class (an
    /// unused empty map when sharing is off).
    fn refine_edge(
        &mut self,
        in_idx: usize,
        opts: &DemandOptions,
        round: &mut RoundWork,
        memo: &mut HashMap<Vec<Time>, bool>,
        engine: &mut Option<SharedStabilityEngine>,
        tracer: &mut Tracer,
    ) -> Result<(), NetlistError> {
        debug_assert!(!self.marked[in_idx]);
        let list = &self.lists[in_idx];
        let next = self.cursor[in_idx] + 1;
        let candidate = if next < list.len() {
            Some(list[next])
        } else if opts.try_irrelevant && self.weights[in_idx] != Time::NEG_INF {
            Some(Time::NEG_INF)
        } else {
            None
        };
        let Some(candidate) = candidate else {
            self.marked[in_idx] = true;
            return Ok(());
        };
        // Build cone arrivals: input j arrives at −w_j, the probed
        // input at −candidate.
        let n_cone = self.cone.inputs().len();
        let mut cone_arrivals = vec![Time::POS_INF; n_cone];
        for (j, pos) in self.cone_pos.iter().enumerate() {
            if let Some(p) = *pos {
                let w = if j == in_idx {
                    candidate
                } else {
                    self.weights[j]
                };
                cone_arrivals[p] = -w;
            }
        }
        let cone_out = self.cone.outputs()[0];
        round.checks += 1;
        // Signature-class sharing: probe the memo under the canonical
        // (slot-space) arrival vector before spending solver time. Only
        // under an unlimited budget — then the verdict is semantic and
        // the solver would necessarily have returned the same answer.
        let memo_key = if opts.cone_sig && opts.budget.is_unlimited() {
            self.sig
                .as_ref()
                .map(|key| key.to_slots(&cone_arrivals, Time::POS_INF))
        } else {
            None
        };
        if let Some(canon) = &memo_key {
            if let Some(&verdict) = memo.get(canon) {
                self.fresh_stats.cone_sig_hits += 1;
                if tracer.is_enabled() {
                    tracer.event(
                        "refine_probe",
                        vec![
                            ("input", Value::from(in_idx)),
                            ("candidate", Value::from(candidate.to_string())),
                            ("verdict", Value::from(if verdict { "ok" } else { "fail" })),
                            ("memo", Value::from(true)),
                        ],
                    );
                }
                self.apply_verdict(in_idx, candidate, Some(verdict), round);
                return Ok(());
            }
            self.fresh_stats.cone_sig_misses += 1;
        }
        // Shared-solver mode: the whole signature class answers from
        // one incremental instance. Eligibility matches the memo's
        // (`memo_key` is `Some` exactly when the signature exists and
        // the budget is unlimited), so budgeted runs never touch the
        // engine and stay bit-identical to the per-cone baseline.
        let stable = if opts.shared_solver && memo_key.is_some() {
            let key = self.sig.as_ref().expect("memo_key implies signature");
            if engine.is_none() {
                let mut fresh =
                    SharedStabilityEngine::new(self.cone.clone(), cone_out, key.clone())?;
                fresh.set_budget(opts.budget);
                *engine = Some(fresh);
            }
            let engine = engine.as_mut().expect("just created");
            if !self.engine_attached {
                self.engine_attached = true;
                engine.attach();
            }
            if tracer.is_enabled() {
                engine.set_episode_recording(true);
            }
            let stable = engine.query_budgeted(key, &cone_arrivals, Time::ZERO);
            if tracer.is_enabled() {
                for ep in engine.take_episodes() {
                    tracer.event("sat_episode", solve_episode_fields(&ep));
                }
            }
            stable
        } else if opts.reuse_oracle {
            if self.oracle.is_none() {
                let mut oracle = StabilityOracle::new_sat(self.cone.clone(), &cone_arrivals)?;
                oracle.set_budget(opts.budget);
                self.oracle = Some(oracle);
            }
            let oracle = self.oracle.as_mut().expect("just created");
            if tracer.is_enabled() {
                oracle.set_episode_recording(true);
            }
            let stable = oracle.query_budgeted(&cone_arrivals, cone_out, Time::ZERO);
            if tracer.is_enabled() {
                for ep in oracle.take_episodes() {
                    tracer.event("sat_episode", solve_episode_fields(&ep));
                }
            }
            stable
        } else {
            let mut analyzer = StabilityAnalyzer::new(&self.cone, &cone_arrivals, SatAlg::new())?;
            analyzer.set_budget(opts.budget);
            if tracer.is_enabled() {
                analyzer.alg_mut().set_episode_recording(true);
            }
            let stable = analyzer.try_is_stable_at(cone_out, Time::ZERO);
            if tracer.is_enabled() {
                for ep in analyzer.alg_mut().take_episodes() {
                    tracer.event("sat_episode", solve_episode_fields(&ep));
                }
            }
            self.fresh_stats.merge(&analyzer.stats());
            stable
        };
        if let (Some(canon), Some(verdict)) = (memo_key, stable) {
            memo.insert(canon, verdict);
        }
        if tracer.is_enabled() {
            tracer.event(
                "refine_probe",
                vec![
                    ("input", Value::from(in_idx)),
                    ("candidate", Value::from(candidate.to_string())),
                    (
                        "verdict",
                        Value::from(match stable {
                            Some(true) => "ok",
                            Some(false) => "fail",
                            None => "budget",
                        }),
                    ),
                    ("memo", Value::from(false)),
                ],
            );
        }
        self.apply_verdict(in_idx, candidate, stable, round);
        Ok(())
    }

    /// Applies a probe verdict to the edge into `in_idx`: accept the
    /// candidate weight, mark the edge accurate, or (on `None`, a
    /// budget interruption) mark it degraded at its proven weight.
    fn apply_verdict(
        &mut self,
        in_idx: usize,
        candidate: Time,
        stable: Option<bool>,
        round: &mut RoundWork,
    ) {
        match stable {
            Some(true) => {
                self.weights[in_idx] = candidate;
                if candidate == Time::NEG_INF {
                    self.marked[in_idx] = true; // nothing below −∞
                } else {
                    self.cursor[in_idx] += 1;
                }
                round.refinements += 1;
            }
            Some(false) => {
                self.marked[in_idx] = true;
            }
            None => {
                // Budget exhausted mid-probe: the candidate weight was
                // never proven, so keep the current (already validated)
                // weight and stop probing this edge — conservative, and
                // it cannot loop.
                self.marked[in_idx] = true;
                self.fresh_stats.degraded += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_fta::functional_circuit_delay;
    use hfta_netlist::gen::{carry_skip_adder, carry_skip_adder_flat, CsaDelays};
    use hfta_netlist::gen::{random_circuit, RandomCircuitSpec};
    use hfta_netlist::partition::cascade_bipartition;

    fn t(v: i64) -> Time {
        Time::new(v)
    }

    #[test]
    fn matches_flat_on_carry_skip_cascades() {
        for n in [4usize, 8, 12] {
            let name = format!("csa{n}.2");
            let design = carry_skip_adder(n, 2, CsaDelays::default());
            let mut an = DemandDrivenAnalyzer::new(&design, &name, Default::default()).unwrap();
            let result = an.analyze(&vec![t(0); 2 * n + 1]).unwrap();
            let flat = carry_skip_adder_flat(n, 2, CsaDelays::default()).unwrap();
            let exact = functional_circuit_delay(&flat).unwrap();
            assert_eq!(result.delay, exact, "n={n}");
            assert!(result.refinements > 0);
        }
    }

    #[test]
    fn refines_only_critical_edges() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", Default::default()).unwrap();
        let result = an.analyze(&[t(0); 17]).unwrap();
        // The refined carry edge: c_in (input 0) → c_out (output 2).
        assert_eq!(an.edge_weight("csa_block2", 2, 0), Some(t(2)));
        // A never-critical sum edge keeps its topological weight.
        assert_eq!(an.edge_weight("csa_block2", 0, 0), Some(t(2)));
        assert_eq!(an.edge_weight("csa_block2", 1, 1), Some(t(6)));
        // Only a handful of checks were needed (demand-driven!): far
        // fewer than full characterization of all 15 pin pairs.
        assert!(result.checks <= 12, "checks = {}", result.checks);
        // The refinement report names exactly the refined carry edge.
        let report = an.refinement_report();
        assert!(
            report.contains("csa_block2 out2 <- in0: 6 -> 2"),
            "{report}"
        );
        // The persistent oracle saw every probe.
        assert_eq!(result.stability.queries, result.checks);
        assert!(result.stability.sat_queries > 0);
    }

    #[test]
    fn conservative_on_partitioned_random_logic() {
        for seed in 0..4 {
            let spec = RandomCircuitSpec {
                inputs: 10,
                gates: 80,
                seed,
                locality: 12,
                global_fanin_prob: 0.2,
                mix: Default::default(),
            };
            let flat = random_circuit(&format!("r{seed}"), spec);
            let design = cascade_bipartition(&flat, 0.5).unwrap();
            let top_name = format!("r{seed}_top");
            let mut an = DemandDrivenAnalyzer::new(&design, &top_name, Default::default()).unwrap();
            let top = design.composite(&top_name).unwrap();
            let result = an.analyze(&vec![t(0); top.inputs().len()]).unwrap();
            let exact = functional_circuit_delay(&flat).unwrap();
            assert!(
                result.delay >= exact,
                "seed {seed}: demand-driven {} below flat {exact}",
                result.delay
            );
            // And no worse than pure topological analysis.
            let sta = TopoSta::new(&flat).unwrap();
            let topo = sta.circuit_delay(&vec![t(0); flat.inputs().len()]);
            assert!(result.delay <= topo, "seed {seed}");
        }
    }

    #[test]
    fn max_rounds_caps_work() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let opts = DemandOptions {
            max_rounds: Some(1),
            ..DemandOptions::default()
        };
        let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", opts).unwrap();
        let result = an.analyze(&[t(0); 17]).unwrap();
        assert!(result.rounds <= 2);
        // Still conservative (between flat and topological).
        let flat = carry_skip_adder_flat(8, 2, CsaDelays::default()).unwrap();
        let exact = functional_circuit_delay(&flat).unwrap();
        assert!(result.delay >= exact);
    }

    /// Regression for the `max_rounds` fall-through: once the cap is
    /// hit the loop must stop probing, so `checks` stops growing — at
    /// the cap itself and on every later `analyze` call.
    #[test]
    fn max_rounds_stops_checks_deterministically() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());

        // Cap 0: the graph is frozen before any probe.
        let opts = DemandOptions {
            max_rounds: Some(0),
            ..DemandOptions::default()
        };
        let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", opts).unwrap();
        let result = an.analyze(&[t(0); 17]).unwrap();
        assert_eq!(result.checks, 0);
        assert_eq!(result.rounds, 0);
        assert_eq!(result.refinements, 0);

        // Cap 1: exactly one round of probes, then frozen — a second
        // analyze adds no checks.
        let opts = DemandOptions {
            max_rounds: Some(1),
            ..DemandOptions::default()
        };
        let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", opts).unwrap();
        let first = an.analyze(&[t(0); 17]).unwrap();
        assert!(first.checks > 0);
        assert_eq!(first.rounds, 1);
        let second = an.analyze(&[t(0); 17]).unwrap();
        assert_eq!(
            second.checks, first.checks,
            "checks grew after the cap froze the graph"
        );

        // Uncapped needs more checks than one round: the cap really
        // cut the loop short rather than the loop having converged.
        let mut full =
            DemandDrivenAnalyzer::new(&design, "csa8.2", DemandOptions::default()).unwrap();
        let converged = full.analyze(&[t(0); 17]).unwrap();
        assert!(converged.checks > first.checks);
    }

    /// A zero-conflict budget interrupts every solver probe, yet the
    /// analysis terminates, stays sandwiched between flat and
    /// topological, and reports the abandoned edges as degraded.
    #[test]
    fn zero_budget_degrades_but_stays_conservative() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let opts = DemandOptions {
            budget: SolveBudget::default().with_conflicts(0),
            ..DemandOptions::default()
        };
        let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", opts).unwrap();
        let capped = an.analyze(&[t(0); 17]).unwrap();
        let mut full =
            DemandDrivenAnalyzer::new(&design, "csa8.2", DemandOptions::default()).unwrap();
        let exact = full.analyze(&[t(0); 17]).unwrap();
        assert!(
            capped.delay >= exact.delay,
            "{} < {}",
            capped.delay,
            exact.delay
        );
        let flat = carry_skip_adder_flat(8, 2, CsaDelays::default()).unwrap();
        let sta = TopoSta::new(&flat).unwrap();
        assert!(capped.delay <= sta.circuit_delay(&[t(0); 17]));
        assert!(capped.stability.degraded > 0, "{:?}", capped.stability);
        assert!(capped.stability.budget_hits > 0, "{:?}", capped.stability);
        // No refinement was ever accepted without proof.
        assert_eq!(capped.refinements, 0);
        // The unbudgeted run saw no budget activity at all.
        assert_eq!(exact.stability.degraded, 0);
        assert_eq!(exact.stability.budget_hits, 0);
    }

    /// Both kinds of cap — a round cap and a wall-clock deadline — are
    /// visible in the stats as degraded edges.
    #[test]
    fn capped_runs_report_degraded_edges() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());

        let opts = DemandOptions {
            max_rounds: Some(0),
            ..DemandOptions::default()
        };
        let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", opts).unwrap();
        let by_rounds = an.analyze(&[t(0); 17]).unwrap();
        assert!(
            by_rounds.stability.degraded > 0,
            "{:?}",
            by_rounds.stability
        );
        assert_eq!(by_rounds.checks, 0);

        let opts = DemandOptions {
            budget: SolveBudget::default().with_deadline(std::time::Instant::now()),
            ..DemandOptions::default()
        };
        let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", opts).unwrap();
        let by_deadline = an.analyze(&[t(0); 17]).unwrap();
        assert!(
            by_deadline.stability.degraded > 0,
            "{:?}",
            by_deadline.stability
        );
        // Both froze the graph at its topological weights, so they
        // agree on the (conservative) answer.
        assert_eq!(by_deadline.delay, by_rounds.delay);
    }

    #[test]
    fn skewed_arrivals_supported() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa4.2", Default::default()).unwrap();
        let mut arrivals = vec![t(0); 9];
        arrivals[0] = t(5); // c_in late, as in Figure 5
        let result = an.analyze(&arrivals).unwrap();
        // Flat reference.
        let flat = carry_skip_adder_flat(4, 2, CsaDelays::default()).unwrap();
        let mut flat_arr = vec![t(0); 9];
        flat_arr[0] = t(5);
        let mut flat_an = hfta_fta::DelayAnalyzer::new_sat(&flat, &flat_arr).unwrap();
        let exact = flat_an.circuit_delay();
        assert!(result.delay >= exact);
        assert_eq!(result.delay, exact, "accuracy preserved on this example");
    }

    /// The persistent-oracle path and the fresh-solver path agree on
    /// everything observable.
    #[test]
    fn fresh_solver_path_matches_oracle_path() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut with_oracle =
            DemandDrivenAnalyzer::new(&design, "csa8.2", DemandOptions::default()).unwrap();
        let fresh_opts = DemandOptions {
            reuse_oracle: false,
            ..DemandOptions::default()
        };
        let mut with_fresh = DemandDrivenAnalyzer::new(&design, "csa8.2", fresh_opts).unwrap();
        let a = with_oracle.analyze(&[t(0); 17]).unwrap();
        let b = with_fresh.analyze(&[t(0); 17]).unwrap();
        assert_eq!(a.delay, b.delay);
        assert_eq!(a.net_arrivals, b.net_arrivals);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.refinements, b.refinements);
        assert_eq!(
            with_oracle.refinement_report(),
            with_fresh.refinement_report()
        );
        // Both instrument their probes.
        assert_eq!(a.stability.queries, a.checks);
        assert_eq!(b.stability.queries, b.checks);
    }

    /// Parallel refinement is bit-identical to serial: same analysis
    /// (weights, delay, counters) and same refinement report.
    #[test]
    fn parallel_refinement_is_deterministic() {
        let specs: Vec<(Design, String, usize)> = {
            let mut v = Vec::new();
            let design = carry_skip_adder(12, 2, CsaDelays::default());
            v.push((design, "csa12.2".to_string(), 25));
            for seed in 0..2 {
                let spec = RandomCircuitSpec {
                    inputs: 10,
                    gates: 80,
                    seed,
                    locality: 12,
                    global_fanin_prob: 0.2,
                    mix: Default::default(),
                };
                let flat = random_circuit(&format!("r{seed}"), spec);
                let n = flat.inputs().len();
                let design = cascade_bipartition(&flat, 0.5).unwrap();
                v.push((design, format!("r{seed}_top"), n));
            }
            v
        };
        for (design, top, n_inputs) in &specs {
            let serial_opts = DemandOptions {
                threads: 1,
                ..DemandOptions::default()
            };
            // clamp off: the pool must really run multi-worker even on
            // machines with fewer cores than requested threads.
            let parallel_opts = DemandOptions {
                threads: 4,
                clamp_threads: false,
                ..DemandOptions::default()
            };
            let mut serial = DemandDrivenAnalyzer::new(design, top, serial_opts).unwrap();
            let mut parallel = DemandDrivenAnalyzer::new(design, top, parallel_opts).unwrap();
            let arrivals = vec![t(0); *n_inputs];
            let a = serial.analyze(&arrivals).unwrap();
            let b = parallel.analyze(&arrivals).unwrap();
            assert_eq!(a, b, "serial vs parallel diverged on {top}");
            assert_eq!(
                serial.refinement_report(),
                parallel.refinement_report(),
                "reports diverged on {top}"
            );
        }
    }

    /// Tracing is an observer: with a sink installed the analysis stays
    /// bit-identical (serial and parallel, counters included), and the
    /// trace carries `refine_round` spans with `refine_probe` and
    /// `sat_episode` events.
    #[test]
    fn traced_demand_is_bit_identical_and_records() {
        use hfta_fta::AnalysisConfig;
        use hfta_trace::TraceSink;

        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let arrivals = vec![t(0); 17];
        let mut plain = DemandDrivenAnalyzer::new(&design, "csa8.2", Default::default()).unwrap();
        let want = plain.analyze(&arrivals).unwrap();

        for threads in [1usize, 4] {
            let sink = TraceSink::enabled();
            let config = AnalysisConfig::default()
                .with_threads(threads)
                .with_thread_clamp(false)
                .with_trace(sink.clone());
            let mut traced = DemandDrivenAnalyzer::with_config(&design, "csa8.2", &config).unwrap();
            let got = traced.analyze(&arrivals).unwrap();
            assert_eq!(got, want, "threads={threads}");
            assert_eq!(plain.refinement_report(), traced.refinement_report());
            let trace = sink.drain();
            let names: Vec<&str> = trace.records().iter().map(|r| r.name).collect();
            for expected in ["refine_round", "refine_probe", "sat_episode"] {
                assert!(
                    names.contains(&expected),
                    "threads={threads}: missing {expected} in {names:?}"
                );
            }
        }

        // A frozen run records the freeze and its reason.
        let sink = TraceSink::enabled();
        let config = AnalysisConfig::default()
            .with_max_rounds(Some(0))
            .with_trace(sink.clone());
        let mut frozen = DemandDrivenAnalyzer::with_config(&design, "csa8.2", &config).unwrap();
        frozen.analyze(&arrivals).unwrap();
        let trace = sink.drain();
        assert!(
            trace.records().iter().any(|r| r.name == "refine_freeze"),
            "{:?}",
            trace.records()
        );
    }
}

#[cfg(test)]
mod cone_sig_tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder_flat, carry_skip_block, CsaDelays};
    use hfta_netlist::{Composite, Design};

    /// A cascade of `copies` identical 2-bit carry-skip blocks under
    /// *distinct* module names — structurally csa(2·copies).2, but the
    /// analyzer cannot share anything by name.
    fn replicated_design(copies: usize) -> (Design, usize) {
        let mut design = Design::new();
        let mut top = Composite::new("rep");
        let mut carry = top.add_input("c_in");
        for k in 0..copies {
            let mut block = carry_skip_block(2, CsaDelays::default());
            block.set_name(format!("blk{k}"));
            design.add_leaf(block).expect("fresh design");
            let mut ins = vec![carry];
            for i in 0..2 {
                ins.push(top.add_input(format!("a{k}_{i}")));
                ins.push(top.add_input(format!("b{k}_{i}")));
            }
            let mut outs = Vec::new();
            for i in 0..2 {
                let s = top.add_net(format!("s{k}_{i}"));
                top.mark_output(s);
                outs.push(s);
            }
            let c = top.add_net(format!("c{k}"));
            outs.push(c);
            top.add_instance(format!("u{k}"), format!("blk{k}"), &ins, &outs);
            carry = c;
        }
        top.mark_output(carry);
        let n = top.inputs().len();
        design.add_composite(top).expect("fresh design");
        (design, n)
    }

    /// The verdict memo shares probes across renamed block copies, and
    /// the analysis is bit-identical to a memo-free run.
    #[test]
    fn memo_shares_verdicts_across_isomorphic_modules() {
        let (design, n) = replicated_design(4);
        let arrivals = vec![Time::ZERO; n];
        let mut with_memo = DemandDrivenAnalyzer::new(&design, "rep", Default::default()).unwrap();
        let a = with_memo.analyze(&arrivals).unwrap();
        let off = DemandOptions {
            cone_sig: false,
            ..DemandOptions::default()
        };
        let mut without = DemandDrivenAnalyzer::new(&design, "rep", off).unwrap();
        let b = without.analyze(&arrivals).unwrap();

        // Identical blocks, identical initial weights: the later blocks
        // answer their carry-chain probes from the memo.
        assert!(
            a.stability.cone_sig_hits > 0,
            "no memo hits: {:?}",
            a.stability
        );
        assert_eq!(b.stability.cone_sig_hits, 0);
        assert_eq!(b.stability.cone_sig_misses, 0);

        // The analysis itself is bit-identical either way; only solver
        // effort differs (memo hits skip SAT queries entirely).
        assert_eq!(a.delay, b.delay);
        assert_eq!(a.net_arrivals, b.net_arrivals);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.refinements, b.refinements);
        assert_eq!(with_memo.refinement_report(), without.refinement_report());
        assert!(a.stability.sat_queries < b.stability.sat_queries);

        // Sanity: this is csa8.2 in disguise; the skip false path must
        // still be discovered through shared verdicts.
        let flat = carry_skip_adder_flat(8, 2, CsaDelays::default()).unwrap();
        let exact = hfta_fta::functional_circuit_delay(&flat).unwrap();
        assert_eq!(a.delay, exact);
    }

    /// Serial and parallel schedules agree on everything observable,
    /// including the memo hit/miss counters: one signature class stays
    /// on one worker.
    #[test]
    fn memo_sharing_is_deterministic_under_threads() {
        let (design, n) = replicated_design(4);
        let arrivals = vec![Time::ZERO; n];
        let mut serial = DemandDrivenAnalyzer::new(&design, "rep", Default::default()).unwrap();
        let parallel_opts = DemandOptions {
            threads: 4,
            clamp_threads: false,
            ..DemandOptions::default()
        };
        let mut parallel = DemandDrivenAnalyzer::new(&design, "rep", parallel_opts).unwrap();
        let a = serial.analyze(&arrivals).unwrap();
        let b = parallel.analyze(&arrivals).unwrap();
        assert_eq!(a, b);
        assert_eq!(serial.refinement_report(), parallel.refinement_report());
        assert!(a.stability.cone_sig_hits > 0);
    }

    /// Verdicts persisted by one session warm-start the next: a cold
    /// analyzer answers probes from disk, bit-identically and with
    /// strictly fewer SAT queries.
    #[test]
    fn persisted_verdicts_warm_start_a_cold_session() {
        let dir = std::env::temp_dir().join(format!("hfta-demand-verdicts-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let (design, n) = replicated_design(4);
        let arrivals = vec![Time::ZERO; n];

        let mut emit = DemandDrivenAnalyzer::new(&design, "rep", Default::default()).unwrap();
        emit.set_model_db_emit(ModelDb::open(&dir).unwrap());
        let a = emit.analyze(&arrivals).unwrap();
        assert!(emit.model_db_stats().verdicts_stored > 0, "nothing flushed");

        let mut warm = DemandDrivenAnalyzer::new(&design, "rep", Default::default()).unwrap();
        warm.set_model_db_use(ModelDb::open_read_only(&dir));
        let b = warm.analyze(&arrivals).unwrap();
        assert!(
            warm.model_db_stats().verdicts_loaded > 0,
            "no verdicts loaded: {:?}",
            warm.model_db_stats()
        );

        // Bit-identical analysis; the warm run answers from disk what
        // the cold run had to solve.
        assert_eq!(a.delay, b.delay);
        assert_eq!(a.net_arrivals, b.net_arrivals);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.checks, b.checks);
        assert_eq!(a.refinements, b.refinements);
        assert!(b.stability.sat_queries < a.stability.sat_queries);

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A limited budget disables sharing: budgeted verdicts depend on
    /// solver history, so every probe must run its own solve.
    #[test]
    fn limited_budget_disables_memo_sharing() {
        let (design, n) = replicated_design(4);
        let arrivals = vec![Time::ZERO; n];
        let opts = DemandOptions {
            budget: SolveBudget::default().with_conflicts(1_000_000),
            ..DemandOptions::default()
        };
        let mut an = DemandDrivenAnalyzer::new(&design, "rep", opts).unwrap();
        let capped = an.analyze(&arrivals).unwrap();
        assert_eq!(capped.stability.cone_sig_hits, 0);
        assert_eq!(capped.stability.cone_sig_misses, 0);
        // The budget is generous, so the answer still converges.
        let mut full = DemandDrivenAnalyzer::new(&design, "rep", Default::default()).unwrap();
        assert_eq!(capped.delay, full.analyze(&arrivals).unwrap().delay);
    }
}

#[cfg(test)]
mod infinite_arrival_tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, CsaDelays};

    #[test]
    fn pos_inf_arrival_flows_through() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa4.2", Default::default()).unwrap();
        let mut arrivals = vec![Time::ZERO; 9];
        arrivals[1] = Time::POS_INF; // a0 never arrives
        let result = an.analyze(&arrivals).unwrap();
        // Outputs depending on a0 never stabilize; others stay finite.
        assert_eq!(result.output_arrivals[0], Time::POS_INF); // s0 needs a0
        assert_eq!(result.delay, Time::POS_INF);
        // s3 of the second block depends on the carry chain → +inf too,
        // but the analysis itself must terminate (this assertion is the
        // point of the test).
        assert!(result.rounds < 100);
    }

    #[test]
    fn neg_inf_arrival_is_benign() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa4.2", Default::default()).unwrap();
        let mut arrivals = vec![Time::ZERO; 9];
        arrivals[0] = Time::NEG_INF; // carry-in settled from forever
        let result = an.analyze(&arrivals).unwrap();
        assert!(result.delay.is_finite());
        // a0/b0 dominate: the usual 12.
        assert_eq!(result.delay, Time::new(12));
    }
}

#[cfg(test)]
mod reuse_tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, carry_skip_adder_flat, CsaDelays};

    /// The Section 3.3 benefit applies to demand-driven refinement too:
    /// an accepted edge weight was validated by a required-time check
    /// (inputs at the negated weights), which does not depend on the
    /// top-level arrival condition — so refinement survives across
    /// `analyze` calls and later analyses start from the sharpened
    /// graph.
    #[test]
    fn refinement_is_reused_across_arrival_conditions() {
        let design = carry_skip_adder(8, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa8.2", Default::default()).unwrap();
        let first = an.analyze(&[Time::ZERO; 17]).unwrap();
        assert!(first.checks > 0);

        // Second condition: skewed carry-in. The carry edge is already
        // refined, so few (often zero) new checks are needed.
        let mut skewed = vec![Time::ZERO; 17];
        skewed[0] = Time::new(9);
        let checks_before = an.checks;
        let second = an.analyze(&skewed).unwrap();
        let new_checks = second.checks - checks_before;
        assert!(
            new_checks <= first.checks,
            "reuse failed: {new_checks} new checks vs {} initially",
            first.checks
        );

        // And the result is still sandwiched against flat analysis.
        let flat = carry_skip_adder_flat(8, 2, CsaDelays::default()).unwrap();
        let mut flat_an = hfta_fta::DelayAnalyzer::new_sat(&flat, &skewed).unwrap();
        let exact = flat_an.circuit_delay();
        assert!(second.delay >= exact);
        let sta = TopoSta::new(&flat).unwrap();
        assert!(second.delay <= sta.circuit_delay(&skewed));
    }
}

impl DemandDrivenAnalyzer<'_> {
    /// Renders the current timing graph as Graphviz `dot`: one node per
    /// top-level net, one edge per module pin pair labelled with its
    /// current weight. Refined edges (below topological) are drawn in
    /// red; `−∞` edges are omitted.
    #[must_use]
    pub fn timing_graph_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.top.name());
        let _ = writeln!(s, "  rankdir=LR;");
        for &pi in self.top.inputs() {
            let _ = writeln!(s, "  \"{}\" [shape=diamond];", self.top.net_name(pi));
        }
        for &po in self.top.outputs() {
            let _ = writeln!(s, "  \"{}\" [shape=doublecircle];", self.top.net_name(po));
        }
        for (idx, inst) in self.top.instances().iter().enumerate() {
            let states = &self.modules[self.inst_module[idx]];
            for (o, &out_net) in inst.outputs.iter().enumerate() {
                let st = states[o].as_ref().expect(STATE_PRESENT);
                for (j, &in_net) in inst.inputs.iter().enumerate() {
                    let w = st.weights[j];
                    if w == Time::NEG_INF {
                        continue;
                    }
                    let topo = st.lists[j].first().copied().unwrap_or(Time::NEG_INF);
                    let refined = w < topo;
                    let _ = writeln!(
                        s,
                        "  \"{}\" -> \"{}\" [label=\"{}:{}\"{}];",
                        self.top.net_name(in_net),
                        self.top.net_name(out_net),
                        inst.name,
                        w,
                        if refined { ", color=red" } else { "" }
                    );
                }
            }
        }
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, CsaDelays};

    #[test]
    fn timing_graph_dot_marks_refined_edges() {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let mut an = DemandDrivenAnalyzer::new(&design, "csa4.2", Default::default()).unwrap();
        let _ = an.analyze(&[Time::ZERO; 9]).unwrap();
        let dot = an.timing_graph_dot();
        assert!(dot.starts_with("digraph"));
        assert!(
            dot.contains("color=red"),
            "refined carry edge flagged:\n{dot}"
        );
        assert!(dot.contains("shape=diamond"));
        assert!(dot.ends_with("}\n"));
    }
}
