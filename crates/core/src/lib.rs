//! Hierarchical functional timing analysis — the primary contribution
//! of Kukimoto & Brayton, *"Hierarchical Functional Timing Analysis"*,
//! DAC 1998.
//!
//! Functional (false-path-aware) timing analysis under tight
//! sensitization criteria traditionally required a flat netlist; this
//! crate implements the paper's hierarchical formulation, sound under
//! the XBD0 delay model:
//!
//! * [`ModuleTiming`] ([`module_timing`]) — step 1: each leaf module is
//!   characterized once into per-output sets of incomparable timing
//!   tuples via required-time analysis, capturing false paths *inside*
//!   the module while remaining valid under any environment. Also the
//!   paper's black-box IP abstraction (Section 7), with a text
//!   serialization.
//! * [`HierAnalyzer`] ([`hier`]) — step 2: min–max propagation of
//!   arrival times through the instance DAG (Section 3). Conservative
//!   with respect to flat analysis (Theorem 1).
//! * [`DemandDrivenAnalyzer`] ([`demand`]) — the improved algorithm of
//!   Section 5: topological edge weights refined only where critical,
//!   one distinct path length at a time, each probe a functional
//!   stability check.
//! * [`IncrementalAnalyzer`] ([`incremental`]) — Section 3.3: module
//!   edits re-characterize only the edited module; arrival-condition
//!   changes re-run only the cheap top-level propagation.
//!
//! # Example
//!
//! ```
//! use hfta_core::{HierAnalyzer, HierOptions};
//! use hfta_netlist::gen::{carry_skip_adder, CsaDelays};
//! use hfta_netlist::Time;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Section 4 example: a 4-bit adder from two 2-bit
//! // carry-skip blocks, all inputs arriving at t = 0.
//! let design = carry_skip_adder(4, 2, CsaDelays::default());
//! let mut hier = HierAnalyzer::new(&design, "csa4.2", HierOptions::default())?;
//! let analysis = hier.analyze(&vec![Time::ZERO; 9])?;
//! // The final carry c4 arrives at 10 — matching flat XBD0 analysis,
//! // while topological analysis would claim 14.
//! assert_eq!(*analysis.output_arrivals.last().expect("c4"), Time::new(10));
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod deadline;
pub mod demand;
pub mod hier;
pub mod incremental;
pub mod module_timing;
pub mod naive;

pub use compose::{
    analyze_multilevel, analyze_multilevel_with, characterize_recursive, ComposeOptions,
};
pub use deadline::DeadlineToken;
pub use demand::{DemandAnalysis, DemandDrivenAnalyzer, DemandOptions};
pub use hier::{propagate, HierAnalysis, HierAnalyzer, HierOptions, HierStats};
pub use incremental::{IncrementalAnalyzer, WarmSnapshot};
pub use module_timing::{ModelSource, ModuleTiming, ParseModelError};
pub use naive::{find_underapproximation, independent_relaxation_model, Underapproximation};

// Re-export the tuple/model vocabulary — plus the unified analysis
// configuration and trace types — so downstream users need only this
// crate plus the netlist crate.
pub use hfta_fta::{
    AnalysisConfig, CharacterizeOptions, ModelDbSpec, SchedulerSeat, SolveBudget, TimingModel,
    TimingTuple, Trace, TraceSink, Tracer,
};
// The persistent model database analyzers warm-start from (attach one
// via AnalysisConfig::with_use_models / with_emit_models or the
// set_model_db_* methods).
pub use hfta_modeldb::{ModelDb, ModelDbStats};
// The work-stealing pool parallel phases run on: build one, seat it in
// an AnalysisConfig (or set_scheduler), and analyzers share workers.
pub use hfta_sched::{SchedStats, Scheduler};
