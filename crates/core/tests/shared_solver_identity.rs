//! Bit-identity property suite for shared-solver mode: one incremental
//! SAT instance per module (domain-restricted queries, cross-cone
//! learnt sharing, between-query inprocessing) must be observationally
//! indistinguishable from fresh per-cone solvers. Verdicts, arrival
//! times, delays, and refinement round/check counts must match exactly
//! — solver reuse may only change *how fast* an answer arrives, never
//! *which* answer, and never how the refinement loop walks the design.
//!
//! Budgeted runs are pinned too: a limited budget disables shared mode
//! on every path (degraded results must not contaminate shared state),
//! so the flag must be a no-op there.

use hfta_core::{AnalysisConfig, DemandDrivenAnalyzer, HierAnalyzer, HierOptions};
use hfta_fta::{CharacterizeOptions, SolveBudget, TimingReport};
use hfta_netlist::gen::{random_circuit, GateMix, RandomCircuitSpec};
use hfta_netlist::partition::cascade_bipartition;
use hfta_netlist::Time;
use hfta_testkit::{from_fn_with_shrink, prop, Rng, Strategy};

/// Random partitionable circuits (≥ 2 gates); shrinking reduces gate
/// and input counts toward a minimal failing netlist.
fn spec_strategy() -> impl Strategy<Value = RandomCircuitSpec> {
    from_fn_with_shrink(
        |rng: &mut Rng| RandomCircuitSpec {
            inputs: rng.gen_range(3usize..8),
            gates: rng.gen_range(8usize..40),
            seed: rng.next_u64(),
            locality: rng.gen_range(4usize..12),
            global_fanin_prob: 0.2,
            mix: if rng.next_bool() {
                GateMix::XorHeavy
            } else {
                GateMix::NandHeavy
            },
        },
        |spec: &RandomCircuitSpec| {
            let mut out = Vec::new();
            if spec.gates > 8 {
                out.push(RandomCircuitSpec {
                    gates: 8.max(spec.gates / 2),
                    ..*spec
                });
            }
            if spec.inputs > 3 {
                out.push(RandomCircuitSpec {
                    inputs: spec.inputs - 1,
                    ..*spec
                });
            }
            if spec.seed != 0 {
                out.push(RandomCircuitSpec { seed: 0, ..*spec });
            }
            out
        },
    )
}

/// Random primary-input arrivals: a small finite window with an
/// occasional −∞ (unexercised pin).
fn arrivals_strategy(inputs: usize) -> impl Strategy<Value = Vec<Time>> {
    from_fn_with_shrink(
        move |rng: &mut Rng| {
            (0..inputs)
                .map(|_| {
                    if rng.gen_range(0..8) == 0 {
                        Time::NEG_INF
                    } else {
                        Time::new(rng.gen_range(-4i64..9))
                    }
                })
                .collect()
        },
        |v: &Vec<Time>| {
            let mut out = Vec::new();
            for i in 0..v.len() {
                if v[i] != Time::ZERO {
                    let mut w = v.clone();
                    w[i] = Time::ZERO;
                    out.push(w);
                }
            }
            out
        },
    )
}

fn hier_options(shared: bool) -> HierOptions {
    HierOptions {
        characterize: CharacterizeOptions::default().with_shared_solver(shared),
        ..HierOptions::default()
    }
}

// Two-step characterization: the per-module shared instance answers
// every validity check exactly like a fresh per-cone analyzer, so the
// characterized models — and everything propagated from them — match.
prop!(cases = 32, fn two_step_shared_matches_per_cone(spec in spec_strategy()) {
    let flat = random_circuit("s", spec);
    let arrivals = vec![Time::ZERO; flat.inputs().len()];
    let design = cascade_bipartition(&flat, 0.5).expect("partitions");

    let mut shared = HierAnalyzer::new(&design, "s_top", hier_options(true)).expect("valid");
    let a = shared.analyze(&arrivals).expect("analyzes");
    let mut fresh = HierAnalyzer::new(&design, "s_top", hier_options(false)).expect("valid");
    let b = fresh.analyze(&arrivals).expect("analyzes");

    assert_eq!(a.delay, b.delay, "delay diverged");
    assert_eq!(a.output_arrivals, b.output_arrivals, "output arrivals diverged");
    assert_eq!(a.net_arrivals, b.net_arrivals, "net arrivals diverged");
    assert_eq!(
        a.stats.modules_characterized, b.stats.modules_characterized,
        "characterization count diverged"
    );
});

// Demand-driven refinement walks the design one edge probe at a time;
// the per-class shared engine must return the exact verdict the
// per-cone oracle would, in the same order — pinned by comparing the
// full round/check/refinement trajectory, not just the answer.
prop!(cases = 32, fn demand_shared_matches_per_cone(
    spec in spec_strategy(),
) {
    let flat = random_circuit("s", spec);
    let design = cascade_bipartition(&flat, 0.5).expect("partitions");
    let inputs = design.composite("s_top").expect("top").inputs().len();
    let mut cases = hfta_testkit::Rng::seed_from_u64(spec.seed ^ 0x5ead);
    let arrivals: Vec<Time> = (0..inputs)
        .map(|_| Time::new(cases.gen_range(-3i64..7)))
        .collect();

    let mut shared = DemandDrivenAnalyzer::new(
        &design,
        "s_top",
        hfta_core::DemandOptions::default(),
    )
    .expect("valid");
    let a = shared.analyze(&arrivals).expect("analyzes");
    let mut fresh = DemandDrivenAnalyzer::new(
        &design,
        "s_top",
        hfta_core::DemandOptions {
            shared_solver: false,
            ..Default::default()
        },
    )
    .expect("valid");
    let b = fresh.analyze(&arrivals).expect("analyzes");

    assert_eq!(a.delay, b.delay, "delay diverged");
    assert_eq!(a.output_arrivals, b.output_arrivals, "output arrivals diverged");
    assert_eq!(a.rounds, b.rounds, "round trajectory diverged");
    assert_eq!(a.checks, b.checks, "check count diverged");
    assert_eq!(a.refinements, b.refinements, "refinement count diverged");
});

// Flat report path under random arrival conditions: the whole-module
// shared instance and per-output fresh analyzers produce the same
// report (arrivals, false-path flags, circuit delays), in whatever
// query order the report generator uses.
prop!(cases = 32, fn report_shared_matches_per_cone(spec in spec_strategy()) {
    let nl = random_circuit("s", spec);
    let mut cases = hfta_testkit::Rng::seed_from_u64(spec.seed ^ 0x0f1a7);
    for _ in 0..2 {
        let arrivals: Vec<Time> = (0..nl.inputs().len())
            .map(|_| Time::new(cases.gen_range(-4i64..9)))
            .collect();
        let on = AnalysisConfig::default();
        let off = AnalysisConfig::default().with_shared_solver(false);
        let (a, _) = TimingReport::generate(&nl, &arrivals, Time::ZERO, &on).expect("analyzes");
        let (b, _) = TimingReport::generate(&nl, &arrivals, Time::ZERO, &off).expect("analyzes");
        assert_eq!(a, b, "reports diverged under arrivals {arrivals:?}");
    }
});

// Under a limited budget the shared flag must be inert: both settings
// fall back to per-cone solvers (degraded verdicts never touch shared
// state), so the budgeted analyses are bit-identical.
prop!(cases = 24, fn budgeted_runs_ignore_the_shared_flag(
    spec in spec_strategy(),
    conflicts in from_fn_with_shrink(
        |rng: &mut Rng| rng.gen_range(1u64..12),
        |c: &u64| if *c > 1 { vec![1, *c / 2] } else { vec![] },
    ),
) {
    let flat = random_circuit("s", spec);
    let design = cascade_bipartition(&flat, 0.5).expect("partitions");
    let inputs = design.composite("s_top").expect("top").inputs().len();
    let arrivals = vec![Time::ZERO; inputs];
    let budget = SolveBudget::default().with_conflicts(conflicts);

    let run = |shared: bool| {
        let mut an = DemandDrivenAnalyzer::new(
            &design,
            "s_top",
            hfta_core::DemandOptions {
                budget,
                shared_solver: shared,
                ..Default::default()
            },
        )
        .expect("valid");
        an.analyze(&arrivals).expect("analyzes")
    };
    let a = run(true);
    let b = run(false);
    assert_eq!(a.delay, b.delay, "budgeted delay diverged");
    assert_eq!(a.output_arrivals, b.output_arrivals, "budgeted arrivals diverged");
    assert_eq!(a.rounds, b.rounds, "budgeted rounds diverged");
    assert_eq!(a.checks, b.checks, "budgeted checks diverged");

    // And the budgeted two-step path likewise.
    let hier = |shared: bool| {
        let opts = HierOptions {
            characterize: CharacterizeOptions::default()
                .with_budget(budget)
                .with_shared_solver(shared),
            ..HierOptions::default()
        };
        let mut an = HierAnalyzer::new(&design, "s_top", opts).expect("valid");
        an.analyze(&arrivals).expect("analyzes")
    };
    let a = hier(true);
    let b = hier(false);
    assert_eq!(a.delay, b.delay, "budgeted two-step delay diverged");
    assert_eq!(a.output_arrivals, b.output_arrivals, "budgeted two-step arrivals diverged");
});

// The arrivals strategy is exercised on the flat path so −∞ pins and
// shifted windows hit the shared instance's slot mapping too.
prop!(cases = 24, fn report_shared_matches_under_random_conditions(
    spec in spec_strategy(),
    cond_seed in from_fn_with_shrink(
        |rng: &mut Rng| rng.next_u64(),
        |s: &u64| if *s == 0 { vec![] } else { vec![0] },
    ),
) {
    let nl = random_circuit("s", spec);
    let mut rng = hfta_testkit::Rng::seed_from_u64(cond_seed);
    let strat = arrivals_strategy(nl.inputs().len());
    let arrivals = strat.generate(&mut rng);
    let on = AnalysisConfig::default();
    let off = AnalysisConfig::default().with_shared_solver(false);
    let (a, _) = TimingReport::generate(&nl, &arrivals, Time::ZERO, &on).expect("analyzes");
    let (b, _) = TimingReport::generate(&nl, &arrivals, Time::ZERO, &off).expect("analyzes");
    assert_eq!(a, b, "reports diverged under arrivals {arrivals:?}");
});
