//! Scheduler integration tests: parallel analysis must be bit-identical
//! to serial at every thread count, on the happy path and on the
//! budgeted/degraded one, and the persistent pool must spawn workers
//! once per analyzer lifetime — not once per refinement round.
//!
//! All parallel cases here disable the thread clamp
//! ([`DemandOptions::clamp_threads`] / [`HierOptions::clamp_threads`])
//! so the pool genuinely runs multi-worker even on a 1-core CI box;
//! determinism that held only under a lucky schedule would pass a
//! clamped test vacuously.

use hfta_core::SolveBudget;
use hfta_core::{
    AnalysisConfig, DemandDrivenAnalyzer, DemandOptions, HierAnalyzer, HierOptions, Scheduler,
    TraceSink,
};
use hfta_netlist::gen::{modular_design, GateMix, ModularDesignSpec};
use hfta_netlist::{Design, Time};
use hfta_trace::Value;

/// A small layered multi-flavor design: distinct modules (real fan-out
/// for the characterization pool) and enough instances that demand
/// refinement rounds span several signature classes.
fn fixture() -> (Design, String, Vec<Time>) {
    let spec = ModularDesignSpec {
        flavors: 3,
        instances: 24,
        gates_per_module: 30,
        layers: 4,
        seed: 7,
        mix: GateMix::NandHeavy,
    };
    let design = modular_design(spec);
    let top = spec.top_name();
    let n = design.composite(&top).expect("top").inputs().len();
    let arrivals = vec![Time::ZERO; n];
    (design, top, arrivals)
}

#[test]
fn parallel_matches_serial_at_every_thread_count() {
    let (design, top, arrivals) = fixture();
    let hier_serial = HierAnalyzer::new(&design, &top, HierOptions::default())
        .expect("valid")
        .analyze(&arrivals)
        .expect("analyzes");
    let demand_serial = DemandDrivenAnalyzer::new(&design, &top, DemandOptions::default())
        .expect("valid")
        .analyze(&arrivals)
        .expect("analyzes");
    for threads in [2usize, 4, 8] {
        let hier_opts = HierOptions::default()
            .with_threads(threads)
            .with_thread_clamp(false);
        let got = HierAnalyzer::new(&design, &top, hier_opts)
            .expect("valid")
            .analyze(&arrivals)
            .expect("analyzes");
        assert_eq!(got.delay, hier_serial.delay, "hier threads={threads}");
        assert_eq!(
            got.output_arrivals, hier_serial.output_arrivals,
            "hier threads={threads}"
        );
        assert_eq!(
            got.net_arrivals, hier_serial.net_arrivals,
            "hier threads={threads}"
        );

        let demand_opts = DemandOptions::default()
            .with_threads(threads)
            .with_thread_clamp(false);
        let got = DemandDrivenAnalyzer::new(&design, &top, demand_opts)
            .expect("valid")
            .analyze(&arrivals)
            .expect("analyzes");
        assert_eq!(got.delay, demand_serial.delay, "demand threads={threads}");
        assert_eq!(
            got.output_arrivals, demand_serial.output_arrivals,
            "demand threads={threads}"
        );
        // The refinement trajectory itself is schedule-independent,
        // not just the answer.
        assert_eq!(got.rounds, demand_serial.rounds, "demand threads={threads}");
        assert_eq!(got.checks, demand_serial.checks, "demand threads={threads}");
        assert_eq!(
            got.refinements, demand_serial.refinements,
            "demand threads={threads}"
        );
    }
}

/// A per-probe conflict budget degrades some verdicts; which ones
/// degrade is a function of the probe, not of the schedule, so the
/// budgeted path must stay bit-identical too.
#[test]
fn budgeted_parallel_matches_budgeted_serial() {
    let (design, top, arrivals) = fixture();
    let budget = SolveBudget::default().with_conflicts(2);
    let serial =
        DemandDrivenAnalyzer::new(&design, &top, DemandOptions::default().with_budget(budget))
            .expect("valid")
            .analyze(&arrivals)
            .expect("analyzes");
    for threads in [2usize, 8] {
        let opts = DemandOptions::default()
            .with_budget(budget)
            .with_threads(threads)
            .with_thread_clamp(false);
        let got = DemandDrivenAnalyzer::new(&design, &top, opts)
            .expect("valid")
            .analyze(&arrivals)
            .expect("analyzes");
        assert_eq!(got.delay, serial.delay, "threads={threads}");
        assert_eq!(
            got.output_arrivals, serial.output_arrivals,
            "threads={threads}"
        );
        assert_eq!(got.rounds, serial.rounds, "threads={threads}");
        assert_eq!(got.checks, serial.checks, "threads={threads}");
    }
}

/// An already-expired deadline freezes every cone before refinement
/// starts; serial and parallel must degrade to the identical
/// (topological) answer, merged in class order.
#[test]
fn expired_deadline_is_bit_identical_across_schedules() {
    let (design, top, arrivals) = fixture();
    let expired = || SolveBudget::default().with_deadline(std::time::Instant::now());
    let serial = DemandDrivenAnalyzer::new(
        &design,
        &top,
        DemandOptions::default().with_budget(expired()),
    )
    .expect("valid")
    .analyze(&arrivals)
    .expect("analyzes");
    let opts = DemandOptions::default()
        .with_budget(expired())
        .with_threads(4)
        .with_thread_clamp(false);
    let got = DemandDrivenAnalyzer::new(&design, &top, opts)
        .expect("valid")
        .analyze(&arrivals)
        .expect("analyzes");
    assert_eq!(got.delay, serial.delay);
    assert_eq!(got.output_arrivals, serial.output_arrivals);
    assert!(got.stability.degraded > 0, "{:?}", got.stability);
}

/// A deadline that fires mid-refinement cannot promise bit-identity
/// (wall clocks differ per schedule), but the parallel run must still
/// terminate, merge cleanly, and stay conservative with respect to the
/// exact answer.
#[test]
fn mid_run_deadline_terminates_and_stays_conservative() {
    let (design, top, arrivals) = fixture();
    let exact = DemandDrivenAnalyzer::new(&design, &top, DemandOptions::default())
        .expect("valid")
        .analyze(&arrivals)
        .expect("analyzes");
    let deadline = std::time::Instant::now() + std::time::Duration::from_micros(200);
    let opts = DemandOptions::default()
        .with_budget(SolveBudget::default().with_deadline(deadline))
        .with_threads(4)
        .with_thread_clamp(false);
    let mut an = DemandDrivenAnalyzer::new(&design, &top, opts).expect("valid");
    let got = an.analyze(&arrivals).expect("analyzes");
    assert!(
        got.delay >= exact.delay,
        "degraded answer must stay conservative: {:?} < {:?}",
        got.delay,
        exact.delay
    );
    // The analyzer is left whole: a second, un-hurried analysis on the
    // same instance still works and reproduces the frozen answer.
    let again = an.analyze(&arrivals).expect("analyzes");
    assert_eq!(again.delay, got.delay);
}

/// Satellite of the scheduling bugfix: workers are spawned once per
/// pool, not once per refinement round (the old `thread::scope` path
/// re-spawned every round of every analyze call).
#[test]
fn worker_spawn_count_is_per_pool_not_per_round() {
    let (design, top, arrivals) = fixture();
    let opts = DemandOptions::default()
        .with_threads(4)
        .with_thread_clamp(false);
    let mut an = DemandDrivenAnalyzer::new(&design, &top, opts).expect("valid");
    let first = an.analyze(&arrivals).expect("analyzes");
    assert!(first.rounds > 1, "fixture must need several rounds");
    an.reset_refinement();
    let second = an.analyze(&arrivals).expect("analyzes");
    assert_eq!(second.delay, first.delay);
    let pool = an.scheduler_handle().expect("pool was created lazily");
    assert_eq!(pool.threads(), 4);
    assert_eq!(
        pool.workers_spawned(),
        4,
        "spawn count must be O(threads), not O(rounds x threads): \
         {} rounds ran twice",
        first.rounds
    );
}

/// Requesting more threads than the machine has clamps the pool and
/// says so in the trace.
#[test]
fn clamp_is_reported_in_the_trace() {
    let (design, top, arrivals) = fixture();
    let available = hfta_sched::available_parallelism();
    let requested = available * 2;
    let sink = TraceSink::enabled();
    let config = AnalysisConfig::new()
        .with_threads(requested)
        .with_trace(sink.clone());
    let mut an = DemandDrivenAnalyzer::with_config(&design, &top, &config).expect("valid");
    an.analyze(&arrivals).expect("analyzes");
    let trace = sink.drain();
    let clamp_events: Vec<_> = trace
        .records()
        .iter()
        .filter(|r| r.name == "threads_clamped")
        .collect();
    assert_eq!(clamp_events.len(), 1, "reported once, not once per round");
    let fields = &clamp_events[0].fields;
    let field = |k: &str| {
        fields
            .iter()
            .find(|(name, _)| *name == k)
            .unwrap_or_else(|| panic!("missing field {k}"))
            .1
            .clone()
    };
    assert_eq!(field("requested"), Value::from(requested));
    assert_eq!(field("effective"), Value::from(available));
}

/// One pool seated in an `AnalysisConfig` serves several analyzers:
/// nobody respawns workers, and answers match the serial ones.
#[test]
fn one_pool_is_shared_across_analyzers() {
    let (design, top, arrivals) = fixture();
    let pool = Scheduler::new(2);
    let config = AnalysisConfig::new()
        .with_threads(2)
        .with_scheduler(pool.clone());

    let mut hier = HierAnalyzer::with_config(&design, &top, &config).expect("valid");
    let mut demand = DemandDrivenAnalyzer::with_config(&design, &top, &config).expect("valid");
    let hier_got = hier.analyze(&arrivals).expect("analyzes");
    let demand_got = demand.analyze(&arrivals).expect("analyzes");

    assert_eq!(pool.workers_spawned(), 2, "both analyzers rode one pool");
    let hier_serial = HierAnalyzer::new(&design, &top, HierOptions::default())
        .expect("valid")
        .analyze(&arrivals)
        .expect("analyzes");
    let demand_serial = DemandDrivenAnalyzer::new(&design, &top, DemandOptions::default())
        .expect("valid")
        .analyze(&arrivals)
        .expect("analyzes");
    assert_eq!(hier_got.delay, hier_serial.delay);
    assert_eq!(hier_got.output_arrivals, hier_serial.output_arrivals);
    assert_eq!(demand_got.delay, demand_serial.delay);
    assert_eq!(demand_got.output_arrivals, demand_serial.output_arrivals);
}
