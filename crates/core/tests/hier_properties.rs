//! Property tests on the hierarchical analyzers: Theorem 1
//! conservativeness for both the two-step and demand-driven engines on
//! random partitioned circuits, model-source dominance, and
//! characterization self-consistency.

use hfta_core::{DemandDrivenAnalyzer, HierAnalyzer, HierOptions, ModelSource, ModuleTiming};
use hfta_fta::{CharacterizeOptions, DelayAnalyzer, TopoSta};
use hfta_netlist::gen::{random_circuit, GateMix, RandomCircuitSpec};
use hfta_netlist::partition::cascade_bipartition;
use hfta_netlist::Time;
use hfta_testkit::{from_fn_with_shrink, prop, Rng, Strategy};

/// Random partitionable circuits (≥ 2 gates); shrinking reduces gate
/// and input counts toward a minimal failing netlist.
fn spec_strategy() -> impl Strategy<Value = RandomCircuitSpec> {
    from_fn_with_shrink(
        |rng: &mut Rng| RandomCircuitSpec {
            inputs: rng.gen_range(3usize..9),
            gates: rng.gen_range(8usize..50),
            seed: rng.next_u64(),
            locality: rng.gen_range(4usize..14),
            global_fanin_prob: 0.15,
            mix: if rng.next_bool() {
                GateMix::XorHeavy
            } else {
                GateMix::NandHeavy
            },
        },
        |spec: &RandomCircuitSpec| {
            let mut out = Vec::new();
            if spec.gates > 8 {
                out.push(RandomCircuitSpec {
                    gates: 8.max(spec.gates / 2),
                    ..*spec
                });
                out.push(RandomCircuitSpec {
                    gates: spec.gates - 1,
                    ..*spec
                });
            }
            if spec.inputs > 3 {
                out.push(RandomCircuitSpec {
                    inputs: spec.inputs - 1,
                    ..*spec
                });
            }
            if spec.seed != 0 {
                out.push(RandomCircuitSpec { seed: 0, ..*spec });
            }
            out
        },
    )
}

// Theorem 1 for the two-step analyzer:
// flat functional ≤ hierarchical estimate ≤ topological.
prop!(cases = 64, fn two_step_is_conservative(spec in spec_strategy()) {
    let flat = random_circuit("h", spec);
    let arrivals = vec![Time::ZERO; flat.inputs().len()];
    let mut an = DelayAnalyzer::new_sat(&flat, &arrivals).expect("acyclic");
    let exact = an.circuit_delay();
    let sta = TopoSta::new(&flat).expect("acyclic");
    let topo = sta.circuit_delay(&arrivals);

    let design = cascade_bipartition(&flat, 0.5).expect("partitions");
    let mut hier = HierAnalyzer::new(&design, "h_top", HierOptions::default())
        .expect("valid");
    let est = hier.analyze(&arrivals).expect("analyzes").delay;
    assert!(est >= exact, "optimistic: {est} < {exact}");
    assert!(est <= topo, "worse than topological: {est} > {topo}");
});

// Two-step and demand-driven agree on the final delay estimate — they
// implement the same abstraction with different evaluation orders.
prop!(cases = 64, fn demand_driven_matches_two_step(spec in spec_strategy()) {
    let flat = random_circuit("h", spec);
    let arrivals = vec![Time::ZERO; flat.inputs().len()];
    let design = cascade_bipartition(&flat, 0.5).expect("partitions");

    let mut hier = HierAnalyzer::new(&design, "h_top", HierOptions::default())
        .expect("valid");
    let two_step = hier.analyze(&arrivals).expect("analyzes").delay;

    let mut dd = DemandDrivenAnalyzer::new(&design, "h_top", Default::default())
        .expect("valid");
    let demand = dd.analyze(&arrivals).expect("analyzes").delay;
    assert_eq!(demand, two_step, "engines disagree");
});

// Functional leaf models never give a worse hierarchical estimate
// than topological ones (they are pointwise tighter abstractions).
prop!(cases = 64, fn functional_models_dominate_topological(spec in spec_strategy()) {
    let flat = random_circuit("h", spec);
    let arrivals = vec![Time::ZERO; flat.inputs().len()];
    let design = cascade_bipartition(&flat, 0.5).expect("partitions");

    let mut functional = HierAnalyzer::new(&design, "h_top", HierOptions::default())
        .expect("valid");
    let f = functional.analyze(&arrivals).expect("analyzes").delay;

    let topo_opts = HierOptions {
        source: ModelSource::Topological,
        ..HierOptions::default()
    };
    let mut topological = HierAnalyzer::new(&design, "h_top", topo_opts).expect("valid");
    let t = topological.analyze(&arrivals).expect("analyzes").delay;
    assert!(f <= t, "functional {f} worse than topological {t}");
});

// A characterized module's models verify against their own netlist:
// `ModuleTiming::verify` finds no violations (tuple stable times are
// sound per-output abstractions of the leaf).
prop!(cases = 64, fn characterization_verifies_against_leaf(spec in spec_strategy()) {
    let nl = random_circuit("leaf", spec);
    let timing = ModuleTiming::characterize(
        &nl,
        ModelSource::Functional,
        CharacterizeOptions::default(),
    )
    .expect("characterizes");
    let violations = timing.verify(&nl).expect("verifies");
    assert!(violations.is_empty(), "violations: {violations:?}");
});

// The timing-model text format round-trips characterized modules.
prop!(cases = 64, fn module_timing_text_roundtrip(spec in spec_strategy()) {
    let nl = random_circuit("leaf", spec);
    let timing = ModuleTiming::characterize(
        &nl,
        ModelSource::Functional,
        CharacterizeOptions::default(),
    )
    .expect("characterizes");
    let text = timing.to_text();
    let parsed = ModuleTiming::from_text(&text).expect("parses");
    assert_eq!(parsed.module(), timing.module());
    assert_eq!(parsed.input_names(), timing.input_names());
    assert_eq!(parsed.output_names(), timing.output_names());
    assert_eq!(parsed.models().len(), timing.models().len());
    for (a, b) in parsed.models().iter().zip(timing.models()) {
        assert_eq!(a.tuples(), b.tuples());
    }
});
