//! Write-through model persistence: with the model database attached
//! for both use *and* emit (the CLI's `--use-models` default), every
//! model the daemon characterizes — including ECO recharacterizations
//! — lands back in the store, so a restarted daemon over the edited
//! design warm-starts with zero characterizations and byte-identical
//! answers.

use hfta_fta::AnalysisConfig;
use hfta_netlist::gen::{carry_skip_adder, CsaDelays};
use hfta_netlist::GateId;
use hfta_serve::ServeSession;

fn unique_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hfta-write-through-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn restart_after_eco_warms_from_write_through_store() {
    let dir = unique_dir("store");
    let design = carry_skip_adder(4, 2, CsaDelays::default());

    // The edit the daemon will absorb, mirrored onto a cold copy so
    // the "restarted" session loads the post-ECO design from scratch.
    let mut leaf = design.leaf("csa_block2").unwrap().clone();
    let gid = GateId::from_index(0);
    let gate_net = leaf.net_name(leaf.gate(gid).output).to_string();
    leaf.set_gate_delay(gid, 7);
    let mut edited = design.clone();
    edited.replace_leaf(leaf).unwrap();

    let write_through = AnalysisConfig::default()
        .with_use_models(&dir)
        .with_emit_models(&dir);

    // First daemon lifetime: the store is cold, so warming
    // characterizes, and the ECO recharacterizes the edited module;
    // write-through persists both models.
    let mut first = ServeSession::new(design, "csa4.2", &write_through).unwrap();
    first.warm().unwrap();
    assert!(
        first.characterizations() > 0,
        "cold store must characterize"
    );
    let eco =
        format!(r#"{{"id":"e","kind":"eco","module":"csa_block2","gate":"{gate_net}","delay":7}}"#);
    let (resp, _) = first.handle_line(&eco);
    assert!(resp.unwrap().contains(r#""ok":true"#));
    let (want, _) = first.handle_line(r#"{"id":"r","kind":"report"}"#);
    let want = want.unwrap();
    drop(first);

    // Restarted daemon over the edited design: every model — including
    // the post-ECO one — comes from the store.
    let mut second = ServeSession::new(edited.clone(), "csa4.2", &write_through).unwrap();
    second.warm().unwrap();
    assert_eq!(
        second.characterizations(),
        0,
        "restart must warm-start from the write-through store"
    );
    let (got, _) = second.handle_line(r#"{"id":"r","kind":"report"}"#);
    assert_eq!(
        got.unwrap(),
        want,
        "warm-started answers are byte-identical"
    );
    drop(second);

    // Control: against a fresh, empty store the edited module has
    // nowhere to warm-start from.
    let empty = unique_dir("empty");
    let read_only = AnalysisConfig::default().with_use_models(&empty);
    let mut control = ServeSession::new(edited, "csa4.2", &read_only).unwrap();
    control.warm().unwrap();
    assert!(
        control.characterizations() > 0,
        "an empty store cannot warm-start"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}
