//! Hostile-input tests for the serve protocol: every malformed,
//! truncated, oversized or type-confused request must produce a
//! structured error (or be skipped) without poisoning any warm state.
//! The witness is bit-identity: a good query answered *after* the
//! attack must match, byte for byte, the same query answered by a
//! session that never saw it.

use std::io::Cursor;

use hfta_fta::AnalysisConfig;
use hfta_netlist::gen::{carry_skip_adder, CsaDelays};
use hfta_serve::{serve_lines, Action, ServeSession};
use hfta_trace::TraceSink;

const GOOD: &str = r#"{"id":"probe","kind":"report"}"#;

fn fresh_session() -> ServeSession {
    let design = carry_skip_adder(4, 2, CsaDelays::default());
    let mut session = ServeSession::new(design, "csa4.2", &AnalysisConfig::default()).unwrap();
    session.warm().unwrap();
    session
}

/// The reference answer: what an unmolested session says to `GOOD`.
fn reference_report() -> String {
    let mut session = fresh_session();
    let (resp, action) = session.handle_line(GOOD);
    assert_eq!(action, Action::Continue);
    resp.expect("report answers")
}

/// A catalogue of hostile lines: truncated JSON, unknown kinds, bad
/// id/field types, missing required fields, conflicting ECO shapes,
/// over-deep nesting, raw control characters, trailing garbage.
fn hostile_lines() -> Vec<String> {
    let mut lines = vec![
        // Truncated mid-token and mid-string.
        r#"{"id":1,"kind":"rep"#.to_string(),
        r#"{"id":1,"kind":"report"#.to_string(),
        "{".to_string(),
        // Not JSON at all.
        "GET / HTTP/1.1".to_string(),
        // Unknown request kind.
        r#"{"id":2,"kind":"frobnicate"}"#.to_string(),
        // Ids must be numbers, strings or null.
        r#"{"id":[1,2],"kind":"report"}"#.to_string(),
        r#"{"id":{"a":1},"kind":"report"}"#.to_string(),
        // Type confusion in required fields.
        r#"{"id":3,"kind":"delay","output":42}"#.to_string(),
        r#"{"id":3,"kind":"delay"}"#.to_string(),
        r#"{"id":4,"kind":"slack","net":null}"#.to_string(),
        r#"{"id":5,"kind":"whatif","module":"blk0","output":"z"}"#.to_string(),
        r#"{"id":6,"kind":"whatif","module":9,"output":"z","arrivals":{}}"#.to_string(),
        // Unknown names inside otherwise well-typed requests.
        r#"{"id":7,"kind":"delay","output":"no_such_output"}"#.to_string(),
        r#"{"id":8,"kind":"report","arrivals":{"no_such_pin":3}}"#.to_string(),
        r#"{"id":9,"kind":"eco","module":"no_such_module","gate":"g","delay":1}"#.to_string(),
        // ECO needs gate+delay XOR bench, never both, never neither.
        r#"{"id":10,"kind":"eco","module":"blk0"}"#.to_string(),
        r#"{"id":11,"kind":"eco","module":"blk0","gate":"g","delay":1,"bench":""}"#.to_string(),
        // Trailing garbage after a complete value.
        r#"{"id":12,"kind":"report"} {"id":13,"kind":"report"}"#.to_string(),
        // Raw control character inside a string.
        "{\"id\":14,\"kind\":\"delay\",\"output\":\"a\u{1}b\"}".to_string(),
        // Arrivals of the wrong shape / wrong arity.
        r#"{"id":15,"kind":"report","arrivals":[0,0]}"#.to_string(),
        r#"{"id":16,"kind":"report","arrivals":"zero"}"#.to_string(),
    ];
    // Nesting past the codec's depth cap.
    let deep = format!("{}1{}", "[".repeat(64), "]".repeat(64));
    lines.push(format!(r#"{{"id":17,"kind":"report","arrivals":{deep}}}"#));
    lines
}

/// Every hostile line is answered with a structured `"ok":false`
/// error, and the good query asked right after each one is
/// bit-identical to the untouched session's answer.
#[test]
fn hostile_lines_error_structurally_and_poison_nothing() {
    let want = reference_report();
    let mut session = fresh_session();
    for line in hostile_lines() {
        let (resp, action) = session.handle_line(&line);
        assert_eq!(
            action,
            Action::Continue,
            "hostile line must not stop: {line}"
        );
        let resp = resp.unwrap_or_else(|| panic!("hostile line must be answered: {line}"));
        assert!(
            resp.contains(r#""ok":false"#),
            "hostile line must error: {line} -> {resp}"
        );
        assert!(
            resp.contains(r#""error":"#),
            "error responses carry a message: {resp}"
        );
        // The error itself must be valid JSON (clients parse it).
        hfta_serve::json::parse(&resp)
            .unwrap_or_else(|e| panic!("error response is not JSON ({e:?}): {resp}"));

        let (good, _) = session.handle_line(GOOD);
        assert_eq!(
            good.as_deref(),
            Some(want.as_str()),
            "state poisoned by: {line}"
        );
    }
}

/// Oversized lines are rejected with a structured error under the
/// session's byte cap, and the next (small) query still answers
/// bit-identically.
#[test]
fn oversized_line_is_rejected_then_service_resumes() {
    let want = reference_report();
    let mut session = fresh_session();
    session.set_max_line(256);
    let big = format!(
        r#"{{"id":1,"kind":"report","junk":"{}"}}"#,
        "x".repeat(4096)
    );
    let (resp, action) = session.handle_line(&big);
    assert_eq!(action, Action::Continue);
    assert!(resp.unwrap().contains(r#""ok":false"#));
    let (good, _) = session.handle_line(GOOD);
    assert_eq!(good.as_deref(), Some(want.as_str()));
}

/// The transport loop survives a whole hostile transcript ending in a
/// mid-stream disconnect (a truncated final line with no newline):
/// every line gets an answer, the partial line gets a structured
/// error, and the loop returns cleanly instead of hanging or dying.
#[test]
fn transport_survives_hostile_transcript_and_disconnect() {
    let want = reference_report();
    let mut transcript = String::new();
    transcript.push_str(GOOD);
    transcript.push('\n');
    for line in hostile_lines() {
        transcript.push_str(&line);
        transcript.push('\n');
    }
    transcript.push_str(GOOD);
    transcript.push('\n');
    transcript.push_str(r#"{"id":99,"kind":"rep"#); // disconnect mid-line

    let mut session = fresh_session();
    let mut out = Vec::new();
    let action = serve_lines(
        &mut session,
        Cursor::new(transcript.into_bytes()),
        &mut out,
        None,
        &TraceSink::disabled(),
    )
    .unwrap();
    assert_eq!(action, Action::Continue, "EOF is a clean non-shutdown exit");

    let out = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(
        lines.len(),
        hostile_lines().len() + 3,
        "every line answered: {out}"
    );
    assert_eq!(lines.first(), Some(&want.as_str()));
    assert_eq!(
        lines[lines.len() - 2],
        want,
        "good query after the attack is bit-identical"
    );
    assert!(
        lines.last().unwrap().contains(r#""ok":false"#),
        "truncated final line gets a structured error: {}",
        lines.last().unwrap()
    );
    for line in &lines[1..lines.len() - 2] {
        assert!(line.contains(r#""ok":false"#), "hostile answered: {line}");
    }
}
