//! ECO soundness property: a warm serve session that absorbs a random
//! sequence of gate-delay edits answers exactly like a cold analysis
//! of the final edited design. Incrementality — re-characterizing only
//! the edited module, retiring only its oracle — may change *how much
//! work* an answer costs, never *which* answer arrives.

use hfta_core::{HierAnalyzer, HierOptions};
use hfta_fta::AnalysisConfig;
use hfta_netlist::gen::{modular_design, GateMix, ModularDesignSpec};
use hfta_netlist::{Design, GateId, Time};
use hfta_serve::json::Json;
use hfta_serve::ServeSession;
use hfta_testkit::{from_fn_with_shrink, prop, vec_of, Rng, Strategy};

fn seed_strategy() -> impl Strategy<Value = u64> {
    from_fn_with_shrink(
        |rng: &mut Rng| rng.gen_range(0u64..1_000_000),
        |s: &u64| if *s == 0 { vec![] } else { vec![0, *s / 2] },
    )
}

/// One edit: which instantiated flavor, which gate in it, what delay.
/// Picks are raw draws reduced modulo the actual counts at use time.
fn edit_strategy() -> impl Strategy<Value = (usize, usize, u32)> {
    from_fn_with_shrink(
        |rng: &mut Rng| {
            (
                rng.gen_range(0usize..64),
                rng.gen_range(0usize..4096),
                rng.gen_range(0u32..9),
            )
        },
        |&(m, g, d): &(usize, usize, u32)| {
            let mut out = Vec::new();
            if m > 0 {
                out.push((0, g, d));
            }
            if g > 0 {
                out.push((m, g / 2, d));
            }
            if d > 1 {
                out.push((m, g, 1));
            }
            out
        },
    )
}

/// Asks the session for a full report and checks delay + every output
/// arrival against a cold [`HierAnalyzer`] over `cold`, via the same
/// JSON encoding the daemon uses (so ±∞ compare exactly too).
fn assert_matches_cold(session: &mut ServeSession, cold: &Design, top: &str, context: &str) {
    let composite = cold.composite(top).expect("top is composite");
    let mut fresh = HierAnalyzer::new(cold, top, HierOptions::default()).unwrap();
    let analysis = fresh
        .analyze(&vec![Time::ZERO; composite.inputs().len()])
        .unwrap();

    let (resp, _) = session.handle_line(r#"{"id":"check","kind":"report"}"#);
    let resp = resp.expect("report answers");
    let parsed = hfta_serve::json::parse(&resp).expect("response is JSON");
    assert_eq!(
        parsed.get("ok"),
        Some(&Json::Bool(true)),
        "{context}: {resp}"
    );
    assert_eq!(
        parsed.get("delay").map(Json::to_string),
        Some(hfta_serve::protocol::time_to_json(analysis.delay).to_string()),
        "{context}: delay diverged from cold analysis: {resp}"
    );
    let outputs = parsed.get("outputs").expect("report carries outputs");
    for (k, &po) in composite.outputs().iter().enumerate() {
        let name = composite.net_name(po);
        assert_eq!(
            outputs.get(name).map(Json::to_string),
            Some(hfta_serve::protocol::time_to_json(analysis.output_arrivals[k]).to_string()),
            "{context}: output `{name}` diverged from cold analysis: {resp}"
        );
    }
}

// Each case warms a small multi-flavor design, then interleaves random
// ECO gate-delay edits with report checks. `HFTA_PROP_CASES` overrides
// the count as usual.
prop!(cases = 8, fn eco_edits_answer_like_cold_reanalysis(
    seed in seed_strategy(),
    edits in vec_of(edit_strategy(), 1..5),
) {
    let spec = ModularDesignSpec {
        flavors: 3,
        instances: 6,
        gates_per_module: 22,
        layers: 2,
        seed,
        mix: GateMix::NandHeavy,
    };
    let design = modular_design(spec);
    let top = spec.top_name();
    // Only instantiated flavors matter for timing; edit those.
    let mut modules: Vec<String> = design
        .composite(&top)
        .unwrap()
        .instances()
        .iter()
        .map(|i| i.module.clone())
        .collect();
    modules.sort();
    modules.dedup();

    let mut session =
        ServeSession::new(design.clone(), &top, &AnalysisConfig::default()).unwrap();
    session.warm().unwrap();
    assert_matches_cold(&mut session, &design, &top, "pre-edit");

    // `cold` tracks the design the daemon *should* now be serving.
    let mut cold = design;
    for (k, &(m_pick, g_pick, delay)) in edits.iter().enumerate() {
        let module = &modules[m_pick % modules.len()];
        let mut edited = cold.leaf(module).unwrap().clone();
        let gid = GateId::from_index(g_pick % edited.gate_count());
        let gate_net = edited.net_name(edited.gate(gid).output).to_string();
        edited.set_gate_delay(gid, delay);
        cold.replace_leaf(edited).unwrap();

        let request = format!(
            r#"{{"id":{k},"kind":"eco","module":{},"gate":{},"delay":{delay}}}"#,
            Json::Str(module.clone()),
            Json::Str(gate_net.clone()),
        );
        let (resp, _) = session.handle_line(&request);
        let resp = resp.expect("eco answers");
        assert!(
            resp.contains(r#""ok":true"#),
            "eco edit {k} ({module}/{gate_net} -> {delay}) failed: {resp}"
        );
        assert_matches_cold(
            &mut session,
            &cold,
            &top,
            &format!("after edit {k} ({module}/{gate_net} -> {delay}), seed {seed}"),
        );
    }
});
