//! Socket-level concurrency tests for [`serve_unix_socket`]: N
//! concurrent clients replaying shuffled transcript slices must each
//! receive a response stream byte-identical to a serial
//! single-connection replay of their slice; hostile clients —
//! disconnecting mid-request, sending oversized lines — must never
//! poison their neighbours; ECO edits run behind the write barrier and
//! are either fully visible or fully invisible to concurrent readers.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use hfta_fta::AnalysisConfig;
use hfta_netlist::gen::{carry_skip_adder, CsaDelays};
use hfta_netlist::GateId;
use hfta_sched::Scheduler;
use hfta_serve::{serve_unix_socket, Action, ServeCounters, ServeSession};
use hfta_testkit::{from_fn_with_shrink, prop, Rng, Strategy};
use hfta_trace::TraceSink;

fn seed_strategy() -> impl Strategy<Value = u64> {
    from_fn_with_shrink(
        |rng: &mut Rng| rng.gen_range(0u64..1_000_000),
        |s: &u64| if *s == 0 { vec![] } else { vec![0, *s / 2] },
    )
}

/// A warm session over the standard 4-bit/2-block carry-skip adder.
fn session() -> ServeSession {
    let design = carry_skip_adder(4, 2, CsaDelays::default());
    let mut s = ServeSession::new(design, "csa4.2", &AnalysisConfig::default()).unwrap();
    s.warm().unwrap();
    s
}

/// The serial oracle: replays `lines` one at a time through an
/// in-memory session — exactly what a single-connection client with no
/// neighbours would get.
fn serial_replay(session: &mut ServeSession, lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| {
            let (resp, action) = session.handle_line(line);
            assert_eq!(
                action,
                Action::Continue,
                "oracle must not shut down: {line}"
            );
            resp.expect("every request line is answered")
        })
        .collect()
}

/// A daemon running [`serve_unix_socket`] on its own thread and socket
/// path; the session comes back out at shutdown for counter checks.
struct Daemon {
    path: PathBuf,
    handle: thread::JoinHandle<ServeSession>,
}

static NEXT_SOCKET: AtomicUsize = AtomicUsize::new(0);

fn spawn_daemon(mut session: ServeSession, threads: usize) -> Daemon {
    let path = std::env::temp_dir().join(format!(
        "hfta-serve-test-{}-{}.sock",
        std::process::id(),
        NEXT_SOCKET.fetch_add(1, Ordering::Relaxed)
    ));
    let handle = {
        let path = path.clone();
        thread::spawn(move || {
            let pool = (threads > 1).then(|| Scheduler::new(threads));
            serve_unix_socket(&mut session, &path, pool.as_ref(), &TraceSink::disabled())
                .expect("daemon serves");
            session
        })
    };
    Daemon { path, handle }
}

impl Daemon {
    /// Connects, retrying until the daemon thread has bound the socket.
    fn connect(&self) -> UnixStream {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match UnixStream::connect(&self.path) {
                Ok(stream) => return stream,
                Err(_) if Instant::now() < deadline => thread::sleep(Duration::from_millis(2)),
                Err(e) => panic!("daemon socket never came up: {e}"),
            }
        }
    }

    /// Sends `shutdown` on a fresh connection, joins the daemon thread
    /// and returns the final counters.
    fn shutdown(self) -> ServeCounters {
        let mut conn = self.connect();
        writeln!(conn, r#"{{"id":"bye","kind":"shutdown"}}"#).expect("shutdown writes");
        let mut line = String::new();
        let _ = BufReader::new(&conn).read_line(&mut line);
        let session = self.handle.join().expect("daemon thread panicked");
        session.counters()
    }
}

/// Pipelines every request, then reads exactly one response per
/// request (the per-connection FIFO contract).
fn exchange(conn: &mut UnixStream, lines: &[String]) -> Vec<String> {
    let mut reader = BufReader::new(conn.try_clone().expect("stream clones"));
    for line in lines {
        conn.write_all(line.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
    }
    conn.flush().unwrap();
    lines
        .iter()
        .map(|_| {
            let mut resp = String::new();
            let n = reader.read_line(&mut resp).expect("daemon answers");
            assert!(n > 0, "daemon hung up before answering");
            while resp.ends_with('\n') {
                resp.pop();
            }
            resp
        })
        .collect()
}

/// A mixed transcript hitting every read-only kind (`stats` excluded:
/// its counters legitimately depend on interleaving).
fn request_pool() -> Vec<String> {
    let mut pool = Vec::new();
    let mut id = 0;
    for k in 0..4i64 {
        pool.push(format!(
            r#"{{"id":{id},"kind":"report","arrivals":{{"c_in":{k}}}}}"#
        ));
        id += 1;
        pool.push(format!(
            r#"{{"id":{id},"kind":"delay","output":"s3","arrivals":{{"a0":{k}}}}}"#
        ));
        id += 1;
        pool.push(format!(
            r#"{{"id":{id},"kind":"slack","net":"c4","required":{}}}"#,
            10 + k
        ));
        id += 1;
        pool.push(format!(
            r#"{{"id":{id},"kind":"whatif","module":"csa_block2","output":"c_out","arrivals":{{"c_in":{k}}}}}"#
        ));
        id += 1;
    }
    pool
}

// The determinism pin from the issue: shuffle a mixed transcript, deal
// it to 4 concurrent clients over a real unix socket (sharded pool
// active), and require every connection's stream to be byte-identical
// to the serial single-connection replay of its slice.
prop!(cases = 4, fn concurrent_clients_match_serial_replay(seed in seed_strategy()) {
    const CLIENTS: usize = 4;
    let mut requests = request_pool();
    let mut rng = Rng::seed_from_u64(seed);
    for i in (1..requests.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        requests.swap(i, j);
    }
    let slice_len = requests.len() / CLIENTS;
    let slices: Vec<Vec<String>> = requests.chunks(slice_len).map(<[String]>::to_vec).collect();

    let mut oracle = session();
    let expected: Vec<Vec<String>> = slices
        .iter()
        .map(|slice| serial_replay(&mut oracle, slice))
        .collect();

    let daemon = spawn_daemon(session(), 3);
    let results: Vec<Vec<String>> = thread::scope(|scope| {
        let handles: Vec<_> = slices
            .iter()
            .map(|slice| {
                let daemon = &daemon;
                scope.spawn(move || exchange(&mut daemon.connect(), slice))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    for (k, (got, want)) in results.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "connection {k} diverged from serial replay (seed {seed})");
    }

    let counters = daemon.shutdown();
    assert_eq!(counters.connections_accepted, CLIENTS as u64 + 1);
    assert_eq!(counters.connections_active, 0);
    assert!(counters.queue_depth_hwm >= 1);
    assert_eq!(counters.errors, 0);
});

/// One client hanging up mid-request (and another vanishing before
/// reading its answer) must not disturb a third connection's answers.
#[test]
fn mid_request_disconnect_does_not_poison_other_connections() {
    let mut oracle = session();
    let good = vec![r#"{"id":"g","kind":"report"}"#.to_string()];
    let want = serial_replay(&mut oracle, &good);

    let daemon = spawn_daemon(session(), 1);

    // Half a request — no trailing newline — then hang up.
    let mut victim = daemon.connect();
    victim.write_all(br#"{"id":"bad","kind":"rep"#).unwrap();
    victim.flush().unwrap();
    drop(victim);

    // A complete request whose answer nobody will ever read.
    let mut ghost = daemon.connect();
    writeln!(ghost, r#"{{"id":"ghost","kind":"report"}}"#).unwrap();
    ghost.flush().unwrap();
    drop(ghost);

    let got = exchange(&mut daemon.connect(), &good);
    assert_eq!(got, want, "good query after a neighbour's disconnect");

    let counters = daemon.shutdown();
    assert_eq!(counters.connections_accepted, 4);
    assert_eq!(counters.connections_active, 0);
}

/// An oversized line gets a structured error and the *same* connection
/// keeps answering — byte-identically — afterwards.
#[test]
fn oversized_line_is_rejected_but_connection_survives() {
    let mut served = session();
    served.set_max_line(128);
    let mut oracle = session();
    let good = r#"{"id":"after","kind":"delay","output":"s3"}"#.to_string();
    let want = serial_replay(&mut oracle, std::slice::from_ref(&good));

    let daemon = spawn_daemon(served, 1);
    let mut conn = daemon.connect();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let huge = format!(
        "{{\"id\":1,\"kind\":\"report\",\"pad\":\"{}\"}}\n",
        "x".repeat(1 << 12)
    );
    conn.write_all(huge.as_bytes()).unwrap();
    conn.flush().unwrap();
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    assert!(first.contains("exceeds 128 bytes"), "{first}");

    conn.write_all(good.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    conn.flush().unwrap();
    let mut second = String::new();
    reader.read_line(&mut second).unwrap();
    assert_eq!(
        second.trim_end_matches('\n'),
        want[0],
        "good query after bad"
    );

    drop((conn, reader));
    let counters = daemon.shutdown();
    assert!(counters.errors >= 1, "{counters:?}");
}

/// An ECO runs behind the write barrier: the editing connection sees
/// strictly before/after answers in FIFO order, and a concurrent
/// reader only ever sees the pre-edit or post-edit report — never a
/// torn in-between state.
#[test]
fn eco_behind_write_barrier_keeps_reads_coherent() {
    let design = carry_skip_adder(4, 2, CsaDelays::default());
    let leaf = design.leaf("csa_block2").unwrap();
    // Slow down the gate driving c_out: every path to that output runs
    // through it, so the report is guaranteed to change.
    let c_out = *leaf.outputs().last().unwrap();
    let gid = (0..leaf.gate_count())
        .map(GateId::from_index)
        .find(|&g| leaf.gate(g).output == c_out)
        .expect("c_out is gate-driven");
    let gate_net = leaf.net_name(leaf.gate(gid).output).to_string();

    let report = r#"{"id":"r","kind":"report"}"#.to_string();
    let eco = format!(
        r#"{{"id":"e","kind":"eco","module":"csa_block2","gate":"{gate_net}","delay":60}}"#
    );
    let mut oracle = session();
    let pre = serial_replay(&mut oracle, std::slice::from_ref(&report))[0].clone();
    let eco_ok = serial_replay(&mut oracle, std::slice::from_ref(&eco))[0].clone();
    assert!(eco_ok.contains(r#""ok":true"#), "{eco_ok}");
    let post = serial_replay(&mut oracle, std::slice::from_ref(&report))[0].clone();
    assert_ne!(pre, post, "the edit must be visible in reports");

    let daemon = spawn_daemon(session(), 3);
    thread::scope(|scope| {
        let watcher = {
            let daemon = &daemon;
            let report = &report;
            scope.spawn(move || {
                let mut conn = daemon.connect();
                (0..20)
                    .map(|_| exchange(&mut conn, std::slice::from_ref(report)).remove(0))
                    .collect::<Vec<String>>()
            })
        };
        let got = exchange(
            &mut daemon.connect(),
            &[report.clone(), eco.clone(), report.clone()],
        );
        assert_eq!(
            got[0], pre,
            "read queued before the ECO sees the old design"
        );
        assert!(got[1].contains(r#""ok":true"#), "{}", got[1]);
        assert_eq!(
            got[2], post,
            "read queued after the ECO sees the new design"
        );
        for seen in watcher.join().expect("watcher panicked") {
            assert!(
                seen == pre || seen == post,
                "torn read during concurrent ECO: {seen}"
            );
        }
    });

    let counters = daemon.shutdown();
    assert_eq!(counters.eco_edits, 1);
    assert_eq!(counters.connections_active, 0);
}
