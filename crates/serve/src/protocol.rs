//! The serve request/response protocol.
//!
//! One request is one JSON object on one line; one response is one JSON
//! object on one line. Every request carries an `id` that is echoed
//! verbatim in its response (number, string or `null`), so clients may
//! pipeline requests and match completions out of order. The full
//! schema is tabulated in DESIGN.md ("Server mode").
//!
//! Parsing is split in two so that *semantic* errors still echo the
//! request id: the JSON layer either yields a value or a positioned
//! syntax error (id unknown → `null`), and the request layer extracts
//! the id first, before validating the rest.

use hfta_netlist::Time;

use crate::json::{self, Json, ObjBuilder};

/// The arrival-time payload of a request: named per input, or
/// positional in input order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Arrivals {
    /// `{"a":0,"b":-3}` — inputs not named default to `0`.
    Named(Vec<(String, Time)>),
    /// `[0,-3,5]` — must cover every input.
    Positional(Vec<Time>),
}

/// An ECO (engineering change order) edit to one leaf module.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EcoEdit {
    /// Change the delay of the gate driving net `gate` to `delay`.
    GateDelay {
        /// Output net of the edited gate.
        gate: String,
        /// The new propagation delay.
        delay: u32,
    },
    /// Replace the module body with a netlist parsed from ISCAS
    /// `.bench` text (ports must match the old body).
    Replace {
        /// The `.bench` source of the new body.
        bench: String,
    },
}

/// What a request asks for.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RequestKind {
    /// Full timing report of the design.
    Report {
        /// Optional top-level arrival override (defaults to all-zero).
        arrivals: Option<Arrivals>,
    },
    /// Arrival time of one named primary output.
    Delay {
        /// The output's net name in the top module.
        output: String,
        /// Optional top-level arrival override.
        arrivals: Option<Arrivals>,
    },
    /// Slack on one named top-level net.
    Slack {
        /// The net name in the top module.
        net: String,
        /// Required time; defaults to the circuit delay.
        required: Option<Time>,
        /// Optional top-level arrival override.
        arrivals: Option<Arrivals>,
    },
    /// What-if: the functional arrival of one leaf-module output under
    /// a hypothetical arrival condition, answered by rebinding that
    /// module's persistent stability oracle (no re-encoding).
    WhatIf {
        /// The leaf module name.
        module: String,
        /// The output's net name inside the module.
        output: String,
        /// The hypothetical module-input arrivals.
        arrivals: Arrivals,
    },
    /// ECO edit of one leaf module, followed by incremental re-analysis.
    Eco {
        /// The leaf module name.
        module: String,
        /// The edit to apply.
        edit: EcoEdit,
    },
    /// Session counters (characterizations, cache traffic, requests).
    Stats,
    /// Answer `ok` and stop the daemon cleanly.
    Shutdown,
}

/// One parsed request.
#[derive(Clone, PartialEq, Debug)]
pub struct Request {
    /// Echoed verbatim in the response.
    pub id: Json,
    /// What is being asked.
    pub kind: RequestKind,
    /// Per-request deadline in milliseconds: on expiry the answer
    /// degrades (soundly) instead of blocking.
    pub deadline_ms: Option<u64>,
}

impl Request {
    /// Whether this request only reads warm state (no cache mutation
    /// beyond oracle/model warming) — the batching loop may shard these
    /// across workers.
    #[must_use]
    pub fn is_read_only(&self) -> bool {
        !matches!(self.kind, RequestKind::Eco { .. } | RequestKind::Shutdown)
    }
}

/// Converts a JSON time value: integers are finite times, the strings
/// `"-inf"` / `"+inf"` (or `"inf"`) are the infinities.
pub fn time_from_json(v: &Json) -> Result<Time, String> {
    match v {
        Json::Num(n) => Ok(Time::new(*n)),
        Json::Str(s) if s == "-inf" => Ok(Time::NEG_INF),
        Json::Str(s) if s == "+inf" || s == "inf" => Ok(Time::POS_INF),
        other => Err(format!(
            "expected integer time or \"-inf\"/\"+inf\", got {other}"
        )),
    }
}

/// Converts a [`Time`] to its JSON form: finite values as integers, the
/// infinities as the strings `"-inf"` / `"+inf"`.
#[must_use]
pub fn time_to_json(t: Time) -> Json {
    match t.finite() {
        Some(v) => Json::Num(v),
        None if t == Time::NEG_INF => Json::Str("-inf".to_string()),
        None => Json::Str("+inf".to_string()),
    }
}

fn arrivals_from_json(v: &Json) -> Result<Arrivals, String> {
    match v {
        Json::Obj(fields) => {
            let mut named = Vec::with_capacity(fields.len());
            for (k, t) in fields {
                named.push((
                    k.clone(),
                    time_from_json(t).map_err(|e| format!("arrival `{k}`: {e}"))?,
                ));
            }
            Ok(Arrivals::Named(named))
        }
        Json::Arr(items) => {
            let mut times = Vec::with_capacity(items.len());
            for (i, t) in items.iter().enumerate() {
                times.push(time_from_json(t).map_err(|e| format!("arrival [{i}]: {e}"))?);
            }
            Ok(Arrivals::Positional(times))
        }
        other => Err(format!(
            "`arrivals` must be an object or array, got {other}"
        )),
    }
}

fn require_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string `{key}` field"))
}

fn optional_arrivals(obj: &Json) -> Result<Option<Arrivals>, String> {
    obj.get("arrivals").map(arrivals_from_json).transpose()
}

/// Parses one request line. On failure the error carries the id (when
/// one could be extracted — `null` otherwise) so the caller can still
/// address the structured error response.
pub fn parse_request(line: &str) -> Result<Request, (Json, String)> {
    let value = json::parse(line).map_err(|e| (Json::Null, format!("bad JSON: {e}")))?;
    if !matches!(value, Json::Obj(_)) {
        return Err((Json::Null, "request must be a JSON object".to_string()));
    }
    let id = match value.get("id") {
        None => Json::Null,
        Some(v @ (Json::Num(_) | Json::Str(_) | Json::Null)) => v.clone(),
        Some(_) => {
            return Err((
                Json::Null,
                "`id` must be a number, string or null".to_string(),
            ))
        }
    };
    let fail = |msg: String| (id.clone(), msg);
    let kind_name = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing or non-string `kind` field".to_string()))?;
    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(Json::Num(n)) if *n >= 0 => Some(*n as u64),
        Some(_) => {
            return Err(fail(
                "`deadline_ms` must be a non-negative integer".to_string(),
            ))
        }
    };
    let kind = match kind_name {
        "report" => RequestKind::Report {
            arrivals: optional_arrivals(&value).map_err(&fail)?,
        },
        "delay" => RequestKind::Delay {
            output: require_str(&value, "output").map_err(&fail)?,
            arrivals: optional_arrivals(&value).map_err(&fail)?,
        },
        "slack" => RequestKind::Slack {
            net: require_str(&value, "net").map_err(&fail)?,
            required: value
                .get("required")
                .map(time_from_json)
                .transpose()
                .map_err(&fail)?,
            arrivals: optional_arrivals(&value).map_err(&fail)?,
        },
        "whatif" => RequestKind::WhatIf {
            module: require_str(&value, "module").map_err(&fail)?,
            output: require_str(&value, "output").map_err(&fail)?,
            arrivals: value
                .get("arrivals")
                .ok_or_else(|| fail("`whatif` needs an `arrivals` field".to_string()))
                .and_then(|v| arrivals_from_json(v).map_err(&fail))?,
        },
        "eco" => {
            let module = require_str(&value, "module").map_err(&fail)?;
            let edit = match (value.get("gate"), value.get("bench")) {
                (Some(_), Some(_)) => {
                    return Err(fail(
                        "`eco` takes `gate`+`delay` or `bench`, not both".to_string(),
                    ))
                }
                (Some(_), None) => {
                    let gate = require_str(&value, "gate").map_err(&fail)?;
                    let delay = match value.get("delay") {
                        Some(Json::Num(n)) if *n >= 0 && *n <= i64::from(u32::MAX) => *n as u32,
                        _ => {
                            return Err(fail(
                                "`eco` delay edit needs a non-negative integer `delay`".to_string(),
                            ))
                        }
                    };
                    EcoEdit::GateDelay { gate, delay }
                }
                (None, Some(_)) => EcoEdit::Replace {
                    bench: require_str(&value, "bench").map_err(&fail)?,
                },
                (None, None) => {
                    return Err(fail(
                        "`eco` needs `gate`+`delay` or a `bench` body".to_string(),
                    ))
                }
            };
            RequestKind::Eco { module, edit }
        }
        "stats" => RequestKind::Stats,
        "shutdown" => RequestKind::Shutdown,
        other => return Err(fail(format!("unknown request kind `{other}`"))),
    };
    Ok(Request {
        id,
        kind,
        deadline_ms,
    })
}

/// How a typed [`Response`] answers: a successful payload of one
/// request kind, or a structured error.
#[derive(Clone, PartialEq, Debug)]
pub enum Outcome {
    /// A successful answer: the echoed request kind plus the response
    /// fields in the exact order [`Response::encode`] will emit them.
    Ok {
        /// The request kind this answers (echoed in the response).
        kind: &'static str,
        /// Ordered response fields after `id`/`ok`/`kind`.
        fields: Vec<(String, Json)>,
    },
    /// A structured error (`"ok":false`).
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// One typed response — the value [`dispatch`] computes and sharded
/// workers/tests consume directly; the JSON codec only ever sees it at
/// the transport edge, through [`Response::encode`].
///
/// [`dispatch`]: crate::ServeSession::dispatch
#[derive(Clone, PartialEq, Debug)]
pub struct Response {
    /// The request id, echoed verbatim.
    pub id: Json,
    /// The answer.
    pub outcome: Outcome,
}

impl Response {
    /// A successful response of `kind` with `fields` (in emit order).
    #[must_use]
    pub fn ok(id: &Json, kind: &'static str, fields: Vec<(String, Json)>) -> Response {
        Response {
            id: id.clone(),
            outcome: Outcome::Ok { kind, fields },
        }
    }

    /// A structured error response.
    #[must_use]
    pub fn error(id: &Json, message: impl Into<String>) -> Response {
        Response {
            id: id.clone(),
            outcome: Outcome::Error {
                message: message.into(),
            },
        }
    }

    /// Whether this is a successful (`"ok":true`) response.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, Outcome::Ok { .. })
    }

    /// Looks up a response field by name (`Ok` outcomes only).
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Json> {
        match &self.outcome {
            Outcome::Ok { fields, .. } => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            Outcome::Error { .. } => None,
        }
    }

    /// Renders the single-line JSON wire form: byte-identical to what
    /// the daemon has always emitted (`{"id":…,"ok":true,"kind":…,…}`
    /// or `{"id":…,"ok":false,"error":…}`, fixed key order).
    #[must_use]
    pub fn encode(&self) -> String {
        match &self.outcome {
            Outcome::Ok { kind, fields } => {
                let mut b = ok_response(&self.id, kind);
                for (k, v) in fields {
                    b = b.field(k, v.clone());
                }
                b.build().to_string()
            }
            Outcome::Error { message } => error_response(&self.id, message),
        }
    }
}

/// Starts an `ok` response: `{"id":…,"ok":true,"kind":…}` with the key
/// order every response shares.
#[must_use]
pub fn ok_response(id: &Json, kind: &str) -> ObjBuilder {
    ObjBuilder::new()
        .field("id", id.clone())
        .field("ok", Json::Bool(true))
        .field("kind", Json::Str(kind.to_string()))
}

/// A structured error response: `{"id":…,"ok":false,"error":…}`.
#[must_use]
pub fn error_response(id: &Json, message: &str) -> String {
    ObjBuilder::new()
        .field("id", id.clone())
        .field("ok", Json::Bool(false))
        .field("error", Json::Str(message.to_string()))
        .build()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_requests() {
        let r = parse_request(r#"{"id":1,"kind":"report"}"#).unwrap();
        assert_eq!(r.id, Json::Num(1));
        assert_eq!(r.kind, RequestKind::Report { arrivals: None });
        assert!(r.is_read_only());

        let r = parse_request(r#"{"id":"q","kind":"delay","output":"s3"}"#).unwrap();
        assert!(matches!(r.kind, RequestKind::Delay { ref output, .. } if output == "s3"));

        let r = parse_request(r#"{"kind":"shutdown"}"#).unwrap();
        assert_eq!(r.id, Json::Null);
        assert!(!r.is_read_only());
    }

    #[test]
    fn whatif_needs_arrivals() {
        let err =
            parse_request(r#"{"id":7,"kind":"whatif","module":"m","output":"z"}"#).unwrap_err();
        assert_eq!(err.0, Json::Num(7), "semantic error still echoes the id");
        assert!(err.1.contains("arrivals"));
    }

    #[test]
    fn arrivals_both_shapes() {
        let r = parse_request(
            r#"{"id":1,"kind":"whatif","module":"m","output":"z","arrivals":{"a":0,"b":"-inf"}}"#,
        )
        .unwrap();
        match r.kind {
            RequestKind::WhatIf {
                arrivals: Arrivals::Named(named),
                ..
            } => {
                assert_eq!(named[1], ("b".to_string(), Time::NEG_INF));
            }
            other => panic!("{other:?}"),
        }
        let r = parse_request(
            r#"{"id":1,"kind":"whatif","module":"m","output":"z","arrivals":[1,2,"+inf"]}"#,
        )
        .unwrap();
        match r.kind {
            RequestKind::WhatIf {
                arrivals: Arrivals::Positional(times),
                ..
            } => {
                assert_eq!(times, vec![Time::new(1), Time::new(2), Time::POS_INF]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eco_shapes_and_conflicts() {
        let r =
            parse_request(r#"{"id":1,"kind":"eco","module":"m","gate":"z","delay":3}"#).unwrap();
        assert!(matches!(
            r.kind,
            RequestKind::Eco { edit: EcoEdit::GateDelay { ref gate, delay: 3 }, .. } if gate == "z"
        ));
        assert!(!r.is_read_only());
        let err =
            parse_request(r#"{"id":1,"kind":"eco","module":"m","gate":"z","delay":3,"bench":"x"}"#)
                .unwrap_err();
        assert!(err.1.contains("not both"));
        let err = parse_request(r#"{"id":1,"kind":"eco","module":"m"}"#).unwrap_err();
        assert!(err.1.contains("eco"));
    }

    #[test]
    fn unknown_kind_and_bad_id() {
        let err = parse_request(r#"{"id":5,"kind":"frobnicate"}"#).unwrap_err();
        assert_eq!(err.0, Json::Num(5));
        assert!(err.1.contains("unknown request kind"));
        let err = parse_request(r#"{"id":[1],"kind":"report"}"#).unwrap_err();
        assert_eq!(err.0, Json::Null);
    }

    #[test]
    fn time_json_roundtrip() {
        for t in [
            Time::NEG_INF,
            Time::new(-7),
            Time::ZERO,
            Time::new(42),
            Time::POS_INF,
        ] {
            assert_eq!(time_from_json(&time_to_json(t)).unwrap(), t);
        }
    }

    #[test]
    fn responses_are_deterministic() {
        let ok = ok_response(&Json::Num(3), "stats").build().to_string();
        assert_eq!(ok, r#"{"id":3,"ok":true,"kind":"stats"}"#);
        assert_eq!(
            error_response(&Json::Null, "boom"),
            r#"{"id":null,"ok":false,"error":"boom"}"#
        );
    }
}
