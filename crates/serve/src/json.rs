//! A minimal JSON codec for the serve protocol.
//!
//! The workspace is hermetic (no external crates), so the daemon
//! carries its own parser and writer. The dialect is exactly what the
//! protocol needs — and nothing more:
//!
//! * numbers are 64-bit signed **integers** (timing values, delays and
//!   request ids are integral by construction; fractions and exponents
//!   are rejected with a structured error rather than silently
//!   rounded);
//! * strings support the standard escapes plus `\uXXXX` for the BMP
//!   (surrogate pairs are rejected — module and net names are ASCII);
//! * nesting depth is capped so hostile input like `[[[[…` fails with
//!   an error instead of exhausting the stack.
//!
//! Objects preserve insertion order on both parse and write, which is
//! what makes golden-transcript diffs byte-stable.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`]. The protocol needs 3
/// (request object → arrivals object); everything deeper is hostile.
pub const MAX_DEPTH: usize = 16;

/// A parsed JSON value (integer-only numbers, see the module docs).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number.
    Num(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last wins on
    /// lookup, all retained on write).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks a key up in an object (`None` for non-objects and missing
    /// keys). Last occurrence wins, matching every mainstream parser.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is a number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact serialization (no whitespace), keys in insertion order —
/// `Json::to_string` is byte-stable, which is what makes golden
/// transcripts diffable.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a human-readable reason.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an
/// error (a request line is exactly one value).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first offense: syntax errors,
/// non-integer numbers, nesting beyond [`MAX_DEPTH`], or trailing
/// garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("non-integer numbers are not part of this protocol"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<i64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of i64 range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("surrogate \\u escape unsupported")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input is valid UTF-8");
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

/// Convenience: an object builder keeping insertion order.
#[derive(Default)]
pub struct ObjBuilder {
    fields: Vec<(String, Json)>,
}

impl ObjBuilder {
    /// An empty object.
    #[must_use]
    pub fn new() -> ObjBuilder {
        ObjBuilder::default()
    }

    /// Appends a field.
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> ObjBuilder {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Finishes the object.
    #[must_use]
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let text = r#"{"id":1,"kind":"delay","arrivals":{"a":0,"b":-3},"flags":[true,null]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("id"), Some(&Json::Num(1)));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("delay"));
    }

    #[test]
    fn rejects_fractions_and_exponents() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e3").is_err());
        assert!(parse("-2.0").is_err());
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        assert!(parse(r#"{"id":1"#).is_err());
        assert!(parse(r#"{"id":1} extra"#).is_err());
        assert!(parse("").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        let hostile = "[".repeat(2000) + &"]".repeat(2000);
        let err = parse(&hostile).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k"), Some(&Json::Num(2)));
    }
}
