//! The warm analysis session behind the daemon.
//!
//! [`ServeSession`] owns an [`IncrementalAnalyzer`] (which owns the
//! design, the content-hash-keyed model cache and the shared
//! cone-signature cache) plus one persistent [`StabilityOracle`] per
//! leaf module touched by a what-if query. Every request is one method
//! call; every answer is a deterministic single-line JSON string.
//!
//! Cache-warmth invariants (also tabulated in DESIGN.md):
//!
//! * a malformed or semantically invalid request mutates **nothing** —
//!   the next good request answers bit-identically to a fresh analysis;
//! * a per-request deadline rides the solver budget: on expiry the
//!   answer degrades soundly (`"degraded":true`) and, because degraded
//!   models are never cached, later un-deadlined requests recompute
//!   exactly;
//! * an ECO edit invalidates exactly the edited module: its model
//!   (by content hash) and its what-if oracle; all other warm state
//!   survives.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use hfta_core::{HierAnalysis, IncrementalAnalyzer};
use hfta_fta::sta::TopoSta;
use hfta_fta::{AnalysisConfig, SolveBudget, StabilityOracle};
use hfta_netlist::{bench_format, Design, NetId, Netlist, NetlistError, Time};
use hfta_trace::{TraceSink, Value};

use crate::json::{Json, ObjBuilder};
use crate::protocol::{
    error_response, ok_response, parse_request, time_to_json, Arrivals, EcoEdit, Request,
    RequestKind,
};

/// Default cap on one request line (bytes). Oversized lines are
/// answered with a structured error and skipped without buffering.
pub const DEFAULT_MAX_LINE: usize = 1 << 20;

/// What the server loop should do after a response.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Keep serving.
    Continue,
    /// Stop cleanly (a `shutdown` request was answered).
    Shutdown,
}

/// A persistent per-module stability oracle plus the derived data the
/// binary search needs. The netlist clone feeds [`TopoSta`] bounds
/// while the oracle is mutably borrowed — split-borrow friendly.
#[derive(Debug)]
pub(crate) struct ModuleOracle {
    netlist: Netlist,
    oracle: StabilityOracle,
    /// Content hash of the leaf this oracle encodes; an ECO bumps the
    /// hash and retires the oracle.
    hash: u64,
}

impl ModuleOracle {
    /// Builds the oracle; with `shared` the backend runs in
    /// shared-solver mode (one incremental instance for the whole
    /// module, each probe domain-restricted to its output's transitive
    /// fanin — bit-identical answers, see
    /// [`StabilityOracle::new_sat_shared`]). Sessions pass `shared`
    /// when their base budget is unlimited; budgeted sessions keep the
    /// plain backend so degradations match the baseline exactly.
    fn new(leaf: &Netlist, shared: bool) -> Result<ModuleOracle, NetlistError> {
        let zeros = vec![Time::ZERO; leaf.inputs().len()];
        let oracle = if shared {
            StabilityOracle::new_sat_shared(leaf.clone(), &zeros)?
        } else {
            StabilityOracle::new_sat(leaf.clone(), &zeros)?
        };
        Ok(ModuleOracle {
            netlist: leaf.clone(),
            oracle,
            hash: leaf.content_hash(),
        })
    }

    /// The functional (XBD0) arrival of `net` under `arrivals`,
    /// answered by rebinding the persistent oracle — the same binary
    /// search as `DelayAnalyzer::output_arrival`, but over solver state
    /// that survives across queries. Returns `(arrival, degraded)`;
    /// a degraded answer is the (sound) topological arrival.
    pub(crate) fn functional_arrival(
        &mut self,
        arrivals: &[Time],
        net: NetId,
        budget: SolveBudget,
    ) -> (Time, bool) {
        let sta = TopoSta::new(&self.netlist).expect("oracle construction validated acyclicity");
        let topo = sta.arrival_times(arrivals)[net.index()];
        let first = first_event(&self.netlist, arrivals, net);
        if first == Time::POS_INF {
            // No finite events reach the net: stability is
            // time-independent and the topological bound is exact.
            return (topo, false);
        }
        self.oracle.set_budget(budget);
        self.oracle.set_arrivals(arrivals);
        let lo = first.finite().expect("checked finite");
        match self.oracle.try_is_stable_at(net, Time::new(lo - 1)) {
            Some(true) => return (Time::NEG_INF, false),
            Some(false) => {}
            None => return (topo, true),
        }
        let hi = match topo.finite() {
            Some(h) => h,
            None => {
                // Some arrivals are +∞: probe the latest finite event.
                let hi = latest_finite_event(&sta, &self.netlist, arrivals);
                match self.oracle.try_is_stable_at(net, Time::new(hi)) {
                    Some(true) => hi,
                    Some(false) => return (Time::POS_INF, false),
                    None => return (topo, true),
                }
            }
        };
        let (mut lo, mut hi) = (lo - 1, hi);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            match self.oracle.try_is_stable_at(net, Time::new(mid)) {
                Some(true) => hi = mid,
                Some(false) => lo = mid,
                None => return (topo, true),
            }
        }
        (Time::new(hi), false)
    }
}

/// Earliest finite event at `net`: min-propagation of finite arrivals
/// only (mirrors `DelayAnalyzer`'s lower search bound).
fn first_event(nl: &Netlist, arrivals: &[Time], net: NetId) -> Time {
    let mut first = vec![Time::POS_INF; nl.net_count()];
    for (k, &pi) in nl.inputs().iter().enumerate() {
        if arrivals[k].is_finite() {
            first[pi.index()] = arrivals[k];
        }
    }
    for &g in &nl.topo_gates().expect("validated acyclic") {
        let gate = nl.gate(g);
        let best = gate
            .inputs
            .iter()
            .map(|n| first[n.index()])
            .fold(Time::POS_INF, Time::min);
        if best != Time::POS_INF {
            first[gate.output.index()] = best + Time::from(gate.delay);
        }
    }
    first[net.index()]
}

/// Latest finite event reaching any net: max over finite-arrival inputs
/// of (arrival + longest path to the target's cone). Mirrors
/// `DelayAnalyzer::latest_finite_event` but conservatively uses the
/// whole-netlist longest paths (only an upper search bound).
fn latest_finite_event(sta: &TopoSta<'_>, nl: &Netlist, arrivals: &[Time]) -> i64 {
    let mut latest = i64::MIN / 4;
    for &out in nl.outputs() {
        let long = sta.longest_to(out);
        for (k, &pi) in nl.inputs().iter().enumerate() {
            if let (Some(a), Some(d)) = (arrivals[k].finite(), long[pi.index()].finite()) {
                latest = latest.max(a + d);
            }
        }
    }
    latest
}

/// A what-if query resolved to raw analyzer inputs, ready to run on
/// any thread that holds the module's oracle.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct PreparedWhatIf {
    pub(crate) id: Json,
    pub(crate) module: String,
    pub(crate) output: String,
    pub(crate) net: NetId,
    pub(crate) arrivals: Vec<Time>,
    pub(crate) budget: SolveBudget,
}

impl PreparedWhatIf {
    /// Runs the query against `oracle` and renders the response line.
    pub(crate) fn run(&self, oracle: &mut ModuleOracle) -> String {
        let (arrival, degraded) = oracle.functional_arrival(&self.arrivals, self.net, self.budget);
        ok_response(&self.id, "whatif")
            .field("module", Json::Str(self.module.clone()))
            .field("output", Json::Str(self.output.clone()))
            .field("arrival", time_to_json(arrival))
            .field("degraded", Json::Bool(degraded))
            .build()
            .to_string()
    }
}

/// Session counters reported by the `stats` request.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServeCounters {
    /// Requests answered (including errors).
    pub requests: u64,
    /// Requests answered with `"ok":false`.
    pub errors: u64,
    /// What-if queries served by persistent oracles.
    pub whatif_queries: u64,
    /// ECO edits applied.
    pub eco_edits: u64,
    /// Query responses replayed from the arrivals-keyed response cache
    /// (only unlimited-budget, deadline-free requests are eligible).
    pub cache_hits: u64,
    /// Eligible query responses that had to be computed.
    pub cache_misses: u64,
}

/// Cap on the arrivals-keyed response cache — a full cache skips
/// inserts (never evicts: hit entries stay bit-stable for the
/// session's life).
const RESPONSE_CACHE_CAP: usize = 4096;

/// Key of one cached query response: the request kind plus every input
/// that determines the answer (resolved arrival vectors, so named and
/// positional payloads that mean the same condition share an entry).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ResponseKey {
    Report {
        arrivals: Vec<Time>,
    },
    Delay {
        output: String,
        arrivals: Vec<Time>,
    },
    Slack {
        net: String,
        required: Option<Time>,
        arrivals: Vec<Time>,
    },
}

/// One warm, long-lived analysis session: the daemon's state.
#[derive(Debug)]
pub struct ServeSession {
    analyzer: IncrementalAnalyzer,
    top: String,
    /// Top-level primary-input names, in input order.
    input_names: Vec<String>,
    /// Top-level primary-output names, in output order.
    output_names: Vec<String>,
    base_budget: SolveBudget,
    /// Deadline applied to requests that don't carry their own.
    default_deadline_ms: Option<u64>,
    oracles: HashMap<String, ModuleOracle>,
    /// Whether per-module oracles use shared-solver mode (from
    /// [`AnalysisConfig::shared_solver`]).
    shared_solver: bool,
    /// Arrivals-keyed response cache: response fields (everything after
    /// the echoed id) of previously answered queries. Only filled and
    /// consulted for unlimited-budget, deadline-free requests — those
    /// answers are deterministic functions of the key, so a replay is
    /// byte-identical to a recompute. An ECO clears it wholesale.
    response_cache: HashMap<ResponseKey, Vec<(String, Json)>>,
    trace: TraceSink,
    max_line: usize,
    counters: ServeCounters,
}

impl ServeSession {
    /// Builds a session for module `top` of `design`, wiring budgets,
    /// model databases and the trace sink from `config`.
    ///
    /// # Errors
    ///
    /// Same as [`IncrementalAnalyzer::with_config`]: validation
    /// failures, a missing/non-composite top, non-leaf instances, and
    /// I/O errors opening the emit model database.
    pub fn new(design: Design, top: &str, config: &AnalysisConfig) -> Result<Self, NetlistError> {
        let analyzer = IncrementalAnalyzer::with_config(design, top, config)?;
        let composite = analyzer
            .design()
            .composite(top)
            .expect("validated by the analyzer constructor");
        let input_names = composite
            .inputs()
            .iter()
            .map(|&n| composite.net_name(n).to_string())
            .collect();
        let output_names = composite
            .outputs()
            .iter()
            .map(|&n| composite.net_name(n).to_string())
            .collect();
        Ok(ServeSession {
            analyzer,
            top: top.to_string(),
            input_names,
            output_names,
            base_budget: config.budget,
            default_deadline_ms: None,
            oracles: HashMap::new(),
            shared_solver: config.shared_solver,
            response_cache: HashMap::new(),
            trace: config.trace.clone(),
            max_line: DEFAULT_MAX_LINE,
            counters: ServeCounters::default(),
        })
    }

    /// Sets the deadline applied to requests that don't carry their own
    /// `deadline_ms` (the CLI's `--deadline-ms`).
    pub fn set_default_deadline_ms(&mut self, ms: Option<u64>) {
        self.default_deadline_ms = ms;
    }

    /// Sets the per-line byte cap (protocol hygiene; the server loop
    /// also enforces it while streaming).
    pub fn set_max_line(&mut self, max: usize) {
        self.max_line = max.max(1);
    }

    /// The per-line byte cap.
    #[must_use]
    pub fn max_line(&self) -> usize {
        self.max_line
    }

    /// Session counters so far.
    #[must_use]
    pub fn counters(&self) -> &ServeCounters {
        &self.counters
    }

    /// Total characterizations across the session (the number a warm
    /// start keeps at zero).
    #[must_use]
    pub fn characterizations(&self) -> u64 {
        self.analyzer.characterizations()
    }

    /// Warms the session: characterizes (or loads from the model
    /// database) every leaf model and runs one all-zero propagation.
    /// The daemon calls this once before serving.
    ///
    /// # Errors
    ///
    /// Returns characterization/propagation errors.
    pub fn warm(&mut self) -> Result<HierAnalysis, NetlistError> {
        let arrivals = vec![Time::ZERO; self.input_names.len()];
        self.analyzer.analyze(&arrivals)
    }

    /// Handles one raw request line, returning the response line (no
    /// trailing newline) and what the server loop should do next.
    /// Empty lines yield no response (`None`).
    pub fn handle_line(&mut self, line: &str) -> (Option<String>, Action) {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return (None, Action::Continue);
        }
        if trimmed.len() > self.max_line {
            return (
                Some(self.booked_error(
                    &Json::Null,
                    &format!("request line exceeds {} bytes", self.max_line),
                )),
                Action::Continue,
            );
        }
        let request = match parse_request(trimmed) {
            Ok(r) => r,
            Err((id, message)) => {
                return (Some(self.booked_error(&id, &message)), Action::Continue)
            }
        };
        let mut tracer = self.trace.tracer();
        let span = tracer.is_enabled().then(|| tracer.begin("serve_request"));
        let shutdown = matches!(request.kind, RequestKind::Shutdown);
        let (response, ok) = match self.respond(&request) {
            Ok(body) => (body.to_string(), true),
            Err(message) => (error_response(&request.id, &message), false),
        };
        if let Some(span) = span {
            tracer.end_with(
                span,
                vec![
                    ("kind", Value::from(kind_name(&request.kind))),
                    ("ok", Value::from(ok)),
                ],
            );
        }
        self.trace.absorb(tracer);
        self.counters.requests += 1;
        if !ok {
            self.counters.errors += 1;
        }
        let action = if shutdown && ok {
            Action::Shutdown
        } else {
            Action::Continue
        };
        (Some(response), action)
    }

    /// Books an error response into the counters.
    fn booked_error(&mut self, id: &Json, message: &str) -> String {
        self.counters.requests += 1;
        self.counters.errors += 1;
        error_response(id, message)
    }

    fn respond(&mut self, request: &Request) -> Result<Json, String> {
        match &request.kind {
            RequestKind::Report { arrivals } => self.do_report(request, arrivals.as_ref()),
            RequestKind::Delay { output, arrivals } => {
                self.do_delay(request, output, arrivals.as_ref())
            }
            RequestKind::Slack {
                net,
                required,
                arrivals,
            } => self.do_slack(request, net, *required, arrivals.as_ref()),
            RequestKind::WhatIf {
                module,
                output,
                arrivals,
            } => self.do_whatif(request, module, output, arrivals),
            RequestKind::Eco { module, edit } => self.do_eco(request, module, edit),
            RequestKind::Stats => Ok(self.do_stats(request)),
            RequestKind::Shutdown => Ok(ok_response(&request.id, "shutdown").build()),
        }
    }

    /// Resolves the optional top-level arrival payload (default:
    /// all-zero).
    fn top_arrivals(&self, arrivals: Option<&Arrivals>) -> Result<Vec<Time>, String> {
        resolve_arrivals(arrivals, &self.input_names, &self.top)
    }

    /// Whether `request`'s response may come from (and feed) the
    /// response cache: its effective budget must be unlimited and
    /// deadline-free, so the answer is a pure function of the cache
    /// key. Budgeted/deadlined answers can degrade and depend on solver
    /// history — they are never cached or replayed.
    fn cache_eligible(&self, request: &Request) -> bool {
        self.base_budget.is_unlimited()
            && request.deadline_ms.or(self.default_deadline_ms).is_none()
    }

    /// Cache probe for an eligible request (books a hit or miss);
    /// ineligible requests bypass the cache without touching counters.
    fn cache_lookup(
        &mut self,
        request: &Request,
        key: &ResponseKey,
    ) -> Option<Vec<(String, Json)>> {
        if !self.cache_eligible(request) {
            return None;
        }
        match self.response_cache.get(key) {
            Some(fields) => {
                self.counters.cache_hits += 1;
                Some(fields.clone())
            }
            None => {
                self.counters.cache_misses += 1;
                None
            }
        }
    }

    /// Inserts a computed response unless the cache is full.
    fn cache_insert(&mut self, key: ResponseKey, fields: &[(String, Json)]) {
        if self.response_cache.len() < RESPONSE_CACHE_CAP {
            self.response_cache.insert(key, fields.to_vec());
        }
    }

    /// The budget one request runs under: the base budget, tightened by
    /// the request's (or the session's default) deadline.
    fn budget_for(&self, request: &Request) -> SolveBudget {
        match request.deadline_ms.or(self.default_deadline_ms) {
            Some(ms) => self
                .base_budget
                .with_deadline(Instant::now() + Duration::from_millis(ms)),
            None => self.base_budget,
        }
    }

    /// Runs one top-level analysis under the request's budget. A
    /// deadline-tightened budget clears the signature cache (its
    /// entries replay the outcomes of the budget that filled them) but
    /// never the model cache — only undegraded models live there.
    fn analyze(&mut self, request: &Request, arrivals: &[Time]) -> Result<HierAnalysis, String> {
        let budget = self.budget_for(request);
        self.analyzer.set_budget(budget);
        let result = self.analyzer.analyze(arrivals);
        self.analyzer.set_budget(self.base_budget);
        result.map_err(|e| e.to_string())
    }

    fn do_report(
        &mut self,
        request: &Request,
        arrivals: Option<&Arrivals>,
    ) -> Result<Json, String> {
        let arr = self.top_arrivals(arrivals)?;
        let key = ResponseKey::Report {
            arrivals: arr.clone(),
        };
        if let Some(fields) = self.cache_lookup(request, &key) {
            return Ok(assemble(&request.id, "report", fields));
        }
        let analysis = self.analyze(request, &arr)?;
        let mut outputs = ObjBuilder::new();
        for (name, &t) in self.output_names.iter().zip(&analysis.output_arrivals) {
            outputs = outputs.field(name, time_to_json(t));
        }
        let fields = vec![
            ("delay".to_string(), time_to_json(analysis.delay)),
            ("outputs".to_string(), outputs.build()),
            (
                "characterized".to_string(),
                Json::Num(analysis.stats.modules_characterized as i64),
            ),
            (
                "degraded".to_string(),
                Json::Bool(analysis.stats.modules_degraded > 0),
            ),
        ];
        // Only fully-warm answers are cached: a response that reports
        // `characterized > 0` would replay that stale counter.
        if self.cache_eligible(request) && analysis.stats.modules_characterized == 0 {
            self.cache_insert(key, &fields);
        }
        Ok(assemble(&request.id, "report", fields))
    }

    fn do_delay(
        &mut self,
        request: &Request,
        output: &str,
        arrivals: Option<&Arrivals>,
    ) -> Result<Json, String> {
        let pos = self
            .output_names
            .iter()
            .position(|n| n == output)
            .ok_or_else(|| format!("no primary output `{output}` in module `{}`", self.top))?;
        let arr = self.top_arrivals(arrivals)?;
        let key = ResponseKey::Delay {
            output: output.to_string(),
            arrivals: arr.clone(),
        };
        if let Some(fields) = self.cache_lookup(request, &key) {
            return Ok(assemble(&request.id, "delay", fields));
        }
        let analysis = self.analyze(request, &arr)?;
        let fields = vec![
            ("output".to_string(), Json::Str(output.to_string())),
            (
                "arrival".to_string(),
                time_to_json(analysis.output_arrivals[pos]),
            ),
            (
                "degraded".to_string(),
                Json::Bool(analysis.stats.modules_degraded > 0),
            ),
        ];
        if self.cache_eligible(request) && analysis.stats.modules_characterized == 0 {
            self.cache_insert(key, &fields);
        }
        Ok(assemble(&request.id, "delay", fields))
    }

    fn do_slack(
        &mut self,
        request: &Request,
        net: &str,
        required: Option<Time>,
        arrivals: Option<&Arrivals>,
    ) -> Result<Json, String> {
        let net_id = self
            .analyzer
            .design()
            .composite(&self.top)
            .expect("validated")
            .find_net(net)
            .ok_or_else(|| format!("no net `{net}` in module `{}`", self.top))?;
        let arr = self.top_arrivals(arrivals)?;
        let key = ResponseKey::Slack {
            net: net.to_string(),
            required,
            arrivals: arr.clone(),
        };
        if let Some(fields) = self.cache_lookup(request, &key) {
            return Ok(assemble(&request.id, "slack", fields));
        }
        let analysis = self.analyze(request, &arr)?;
        let arrival = analysis.net_arrivals[net_id.index()];
        let required = required.unwrap_or(analysis.delay);
        let fields = vec![
            ("net".to_string(), Json::Str(net.to_string())),
            ("arrival".to_string(), time_to_json(arrival)),
            ("required".to_string(), time_to_json(required)),
            ("slack".to_string(), time_to_json(required - arrival)),
            (
                "degraded".to_string(),
                Json::Bool(analysis.stats.modules_degraded > 0),
            ),
        ];
        if self.cache_eligible(request) && analysis.stats.modules_characterized == 0 {
            self.cache_insert(key, &fields);
        }
        Ok(assemble(&request.id, "slack", fields))
    }

    /// Resolves a what-if request against the named leaf module,
    /// ready to run wherever its oracle is.
    pub(crate) fn prepare_whatif(
        &self,
        request: &Request,
        module: &str,
        output: &str,
        arrivals: &Arrivals,
    ) -> Result<PreparedWhatIf, String> {
        let leaf = self
            .analyzer
            .design()
            .leaf(module)
            .ok_or_else(|| format!("no leaf module `{module}` in the design"))?;
        let input_names: Vec<String> = leaf
            .inputs()
            .iter()
            .map(|&n| leaf.net_name(n).to_string())
            .collect();
        let times = resolve_arrivals(Some(arrivals), &input_names, module)?;
        let net = leaf
            .find_net(output)
            .ok_or_else(|| format!("no net `{output}` in module `{module}`"))?;
        Ok(PreparedWhatIf {
            id: request.id.clone(),
            module: module.to_string(),
            output: output.to_string(),
            net,
            arrivals: times,
            budget: self.budget_for(request),
        })
    }

    /// Takes the named module's oracle out of the session (building it
    /// on first use), e.g. to ship it to a pool worker.
    pub(crate) fn checkout_oracle(&mut self, module: &str) -> Result<ModuleOracle, String> {
        let leaf = self
            .analyzer
            .design()
            .leaf(module)
            .ok_or_else(|| format!("no leaf module `{module}` in the design"))?;
        let hash = leaf.content_hash();
        match self.oracles.remove(module) {
            // A stale oracle (the module was ECO-edited while the
            // oracle sat idle) is silently rebuilt.
            Some(oracle) if oracle.hash == hash => Ok(oracle),
            _ => ModuleOracle::new(leaf, self.shared_solver && self.base_budget.is_unlimited())
                .map_err(|e| e.to_string()),
        }
    }

    /// Returns an oracle after use.
    pub(crate) fn checkin_oracle(&mut self, module: String, oracle: ModuleOracle) {
        self.oracles.insert(module, oracle);
    }

    /// Number of live per-module oracles.
    #[must_use]
    pub fn oracle_count(&self) -> usize {
        self.oracles.len()
    }

    // What-if answers are deliberately *not* response-cached: repeats
    // are already served warm by the per-module oracle's memo, and the
    // sharded batch path must stay byte-identical (counters included)
    // to serial execution.
    fn do_whatif(
        &mut self,
        request: &Request,
        module: &str,
        output: &str,
        arrivals: &Arrivals,
    ) -> Result<Json, String> {
        let prepared = self.prepare_whatif(request, module, output, arrivals)?;
        let mut oracle = self.checkout_oracle(module)?;
        let (arrival, degraded) =
            oracle.functional_arrival(&prepared.arrivals, prepared.net, prepared.budget);
        self.checkin_oracle(module.to_string(), oracle);
        self.counters.whatif_queries += 1;
        Ok(ok_response(&request.id, "whatif")
            .field("module", Json::Str(module.to_string()))
            .field("output", Json::Str(output.to_string()))
            .field("arrival", time_to_json(arrival))
            .field("degraded", Json::Bool(degraded))
            .build())
    }

    /// Books a parallel-path what-if into the counters (the response
    /// itself was rendered by the worker).
    pub(crate) fn book_whatif(&mut self) {
        self.counters.requests += 1;
        self.counters.whatif_queries += 1;
    }

    /// Books a parallel-path error response into the counters.
    pub(crate) fn book_error(&mut self) {
        self.counters.requests += 1;
        self.counters.errors += 1;
    }

    fn do_eco(&mut self, request: &Request, module: &str, edit: &EcoEdit) -> Result<Json, String> {
        let old = self
            .analyzer
            .design()
            .leaf(module)
            .ok_or_else(|| format!("no leaf module `{module}` in the design"))?;
        let edited = match edit {
            EcoEdit::GateDelay { gate, delay } => {
                let mut nl = old.clone();
                let net = nl
                    .find_net(gate)
                    .ok_or_else(|| format!("no net `{gate}` in module `{module}`"))?;
                let gid = nl
                    .driver(net)
                    .ok_or_else(|| format!("net `{gate}` has no driving gate (primary input?)"))?;
                nl.set_gate_delay(gid, *delay);
                nl
            }
            EcoEdit::Replace { bench } => {
                let nl = bench_format::parse(bench, module)
                    .map_err(|e| format!("bad `bench` body: {e}"))?;
                check_same_ports(old, &nl)?;
                nl
            }
        };
        self.analyzer
            .replace_module(edited)
            .map_err(|e| e.to_string())?;
        // The edited module's oracle encodes the old body; retire it.
        self.oracles.remove(module);
        // Every cached response may depend on the edited module —
        // clear wholesale (cheap, and ECOs are rare next to queries).
        self.response_cache.clear();
        self.counters.eco_edits += 1;
        let arrivals = vec![Time::ZERO; self.input_names.len()];
        let analysis = self.analyze(request, &arrivals)?;
        Ok(ok_response(&request.id, "eco")
            .field("module", Json::Str(module.to_string()))
            .field(
                "recharacterized",
                Json::Num(analysis.stats.modules_characterized as i64),
            )
            .field("delay", time_to_json(analysis.delay))
            .field("degraded", Json::Bool(analysis.stats.modules_degraded > 0))
            .build())
    }

    fn do_stats(&mut self, request: &Request) -> Json {
        let db = self.analyzer.model_db_stats();
        ok_response(&request.id, "stats")
            .field(
                "characterized",
                Json::Num(self.analyzer.characterizations() as i64),
            )
            .field("model_db_hits", Json::Num(db.hits as i64))
            .field("model_db_misses", Json::Num(db.misses as i64))
            .field("oracles", Json::Num(self.oracles.len() as i64))
            .field("requests", Json::Num(self.counters.requests as i64))
            .field("errors", Json::Num(self.counters.errors as i64))
            .field(
                "whatif_queries",
                Json::Num(self.counters.whatif_queries as i64),
            )
            .field("eco_edits", Json::Num(self.counters.eco_edits as i64))
            .field("cache_hits", Json::Num(self.counters.cache_hits as i64))
            .field("cache_misses", Json::Num(self.counters.cache_misses as i64))
            .build()
    }
}

/// Renders a response from its kind and cached/computed fields.
fn assemble(id: &Json, kind: &str, fields: Vec<(String, Json)>) -> Json {
    let mut b = ok_response(id, kind);
    for (k, v) in fields {
        b = b.field(&k, v);
    }
    b.build()
}

/// Resolves an arrival payload against `input_names` (default 0 for
/// unnamed inputs; positional payloads must cover every input).
fn resolve_arrivals(
    arrivals: Option<&Arrivals>,
    input_names: &[String],
    module: &str,
) -> Result<Vec<Time>, String> {
    match arrivals {
        None => Ok(vec![Time::ZERO; input_names.len()]),
        Some(Arrivals::Named(named)) => {
            let mut times = vec![Time::ZERO; input_names.len()];
            for (name, t) in named {
                let pos = input_names
                    .iter()
                    .position(|n| n == name)
                    .ok_or_else(|| format!("no primary input `{name}` in module `{module}`"))?;
                times[pos] = *t;
            }
            Ok(times)
        }
        Some(Arrivals::Positional(times)) => {
            if times.len() != input_names.len() {
                return Err(format!(
                    "positional arrivals cover {} inputs, module `{module}` has {}",
                    times.len(),
                    input_names.len()
                ));
            }
            Ok(times.clone())
        }
    }
}

/// The ports of an ECO replacement must match the old body exactly
/// (same input/output names in the same order) — the top composite's
/// instances bind by position.
fn check_same_ports(old: &Netlist, new: &Netlist) -> Result<(), String> {
    let names = |nl: &Netlist, nets: &[NetId]| -> Vec<String> {
        nets.iter().map(|&n| nl.net_name(n).to_string()).collect()
    };
    let (oi, ni) = (names(old, old.inputs()), names(new, new.inputs()));
    if oi != ni {
        return Err(format!(
            "replacement inputs {ni:?} do not match the module's {oi:?}"
        ));
    }
    let (oo, no) = (names(old, old.outputs()), names(new, new.outputs()));
    if oo != no {
        return Err(format!(
            "replacement outputs {no:?} do not match the module's {oo:?}"
        ));
    }
    Ok(())
}

fn kind_name(kind: &RequestKind) -> &'static str {
    match kind {
        RequestKind::Report { .. } => "report",
        RequestKind::Delay { .. } => "delay",
        RequestKind::Slack { .. } => "slack",
        RequestKind::WhatIf { .. } => "whatif",
        RequestKind::Eco { .. } => "eco",
        RequestKind::Stats => "stats",
        RequestKind::Shutdown => "shutdown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, CsaDelays};

    fn session() -> ServeSession {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        ServeSession::new(design, "csa4.2", &AnalysisConfig::default()).unwrap()
    }

    fn line(s: &mut ServeSession, req: &str) -> String {
        let (resp, action) = s.handle_line(req);
        assert_eq!(action, Action::Continue);
        resp.expect("non-empty line gets a response")
    }

    #[test]
    fn report_matches_direct_analysis() {
        let mut s = session();
        s.warm().unwrap();
        let resp = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        // Section 4: c4 arrives at 10; the last sum bit s3 dominates
        // the circuit delay at 12.
        assert!(resp.contains(r#""delay":12"#), "{resp}");
        assert!(resp.contains(r#""c4":10"#), "{resp}");
        assert!(resp.contains(r#""s3":12"#), "{resp}");
        assert!(resp.contains(r#""characterized":0"#), "warm: {resp}");
        assert!(resp.contains(r#""ok":true"#), "{resp}");
    }

    #[test]
    fn whatif_matches_fresh_delay_analyzer() {
        use hfta_fta::DelayAnalyzer;

        let mut s = session();
        let resp = line(
            &mut s,
            r#"{"id":2,"kind":"whatif","module":"csa_block2","output":"c_out","arrivals":{"c_in":5}}"#,
        );
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let leaf = design.leaf("csa_block2").unwrap();
        let mut arrivals = vec![Time::ZERO; 5];
        arrivals[0] = Time::new(5); // c_in is input 0
        let mut fresh = DelayAnalyzer::new_sat(leaf, &arrivals).unwrap();
        let want = fresh.output_arrival(leaf.find_net("c_out").unwrap());
        assert_eq!(want, Time::new(8), "paper figure 5");
        assert!(resp.contains(r#""arrival":8"#), "{resp}");
        assert_eq!(s.oracle_count(), 1);
        // Another condition reuses the same oracle.
        let resp = line(
            &mut s,
            r#"{"id":3,"kind":"whatif","module":"csa_block2","output":"c_out","arrivals":{}}"#,
        );
        assert!(resp.contains(r#""arrival":8"#), "{resp}");
        assert_eq!(s.oracle_count(), 1);
    }

    #[test]
    fn eco_delay_edit_recharacterizes_one_module() {
        let mut s = session();
        s.warm().unwrap();
        assert_eq!(s.characterizations(), 1);
        let resp = line(
            &mut s,
            r#"{"id":4,"kind":"eco","module":"csa_block2","gate":"c_out","delay":9}"#,
        );
        assert!(resp.contains(r#""recharacterized":1"#), "{resp}");
        assert_eq!(s.characterizations(), 2);
        // The report is bit-identical to a cold analysis of the edited
        // design.
        let mut edited = carry_skip_adder(4, 2, CsaDelays::default());
        let mut block = edited.leaf("csa_block2").unwrap().clone();
        let c_out = block.find_net("c_out").unwrap();
        let gid = block.driver(c_out).unwrap();
        block.set_gate_delay(gid, 9);
        edited.replace_leaf(block).unwrap();
        let mut cold = IncrementalAnalyzer::new(edited, "csa4.2", Default::default()).unwrap();
        let want = cold.analyze(&[Time::ZERO; 9]).unwrap().delay;
        let resp = line(&mut s, r#"{"id":5,"kind":"report"}"#);
        assert!(
            resp.contains(&format!(r#""delay":{}"#, want.raw())),
            "want {want}, got {resp}"
        );
    }

    #[test]
    fn bad_requests_get_structured_errors_and_mutate_nothing() {
        let mut s = session();
        s.warm().unwrap();
        let before = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        for bad in [
            r#"{"id":2,"kind":"report""#,                  // truncated JSON
            r#"{"id":3,"kind":"frobnicate"}"#,             // unknown kind
            r#"{"id":4,"kind":"delay"}"#,                  // missing field
            r#"{"id":5,"kind":"delay","output":"ghost"}"#, // unknown output
            "[1,2,3]",                                     // not an object
        ] {
            let resp = line(&mut s, bad);
            assert!(resp.contains(r#""ok":false"#), "{bad} -> {resp}");
        }
        let after = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        assert_eq!(before, after, "errors must not perturb the warm session");
        assert_eq!(s.counters().errors, 5);
    }

    #[test]
    fn shutdown_stops_the_loop() {
        let mut s = session();
        let (resp, action) = s.handle_line(r#"{"id":9,"kind":"shutdown"}"#);
        assert_eq!(action, Action::Shutdown);
        assert!(resp.unwrap().contains(r#""kind":"shutdown""#));
    }

    #[test]
    fn oversized_line_is_rejected_structurally() {
        let mut s = session();
        s.set_max_line(64);
        let huge = format!(r#"{{"id":1,"kind":"report","pad":"{}"}}"#, "x".repeat(256));
        let (resp, action) = s.handle_line(&huge);
        assert_eq!(action, Action::Continue);
        assert!(resp.unwrap().contains("exceeds 64 bytes"));
    }

    #[test]
    fn repeated_queries_replay_from_the_response_cache() {
        let mut s = session();
        s.warm().unwrap();
        let first = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        let again = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        assert_eq!(first, again, "replay must be byte-identical");
        assert_eq!(s.counters().cache_misses, 1);
        assert_eq!(s.counters().cache_hits, 1);
        // Same condition spelled differently (explicit zero arrivals)
        // resolves to the same key.
        let named = line(&mut s, r#"{"id":2,"kind":"report","arrivals":{"a0":0}}"#);
        assert_eq!(s.counters().cache_hits, 2);
        assert!(named.contains(r#""id":2"#), "{named}");
        // Delay and slack are cached under their own keys.
        line(&mut s, r#"{"id":3,"kind":"delay","output":"s3"}"#);
        line(&mut s, r#"{"id":4,"kind":"delay","output":"s3"}"#);
        line(
            &mut s,
            r#"{"id":5,"kind":"slack","net":"s3","required":15}"#,
        );
        line(
            &mut s,
            r#"{"id":6,"kind":"slack","net":"s3","required":15}"#,
        );
        assert_eq!(s.counters().cache_hits, 4);
        assert_eq!(s.counters().cache_misses, 3);
        let stats = line(&mut s, r#"{"id":7,"kind":"stats"}"#);
        assert!(stats.contains(r#""cache_hits":4"#), "{stats}");
        assert!(stats.contains(r#""cache_misses":3"#), "{stats}");
    }

    #[test]
    fn deadline_requests_bypass_the_response_cache() {
        let mut s = session();
        s.warm().unwrap();
        line(&mut s, r#"{"id":1,"kind":"report","deadline_ms":60000}"#);
        line(&mut s, r#"{"id":1,"kind":"report","deadline_ms":60000}"#);
        assert_eq!(s.counters().cache_hits, 0);
        assert_eq!(s.counters().cache_misses, 0);
        // A session-wide default deadline disables it too.
        s.set_default_deadline_ms(Some(60_000));
        line(&mut s, r#"{"id":2,"kind":"report"}"#);
        assert_eq!(s.counters().cache_misses, 0);
        s.set_default_deadline_ms(None);
        line(&mut s, r#"{"id":3,"kind":"report"}"#);
        assert_eq!(s.counters().cache_misses, 1);
    }

    #[test]
    fn eco_clears_the_response_cache() {
        let mut s = session();
        s.warm().unwrap();
        let before = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        assert_eq!(s.counters().cache_misses, 1);
        line(
            &mut s,
            r#"{"id":2,"kind":"eco","module":"csa_block2","gate":"c_out","delay":9}"#,
        );
        // The edit invalidated every cached answer: the next report is a
        // miss and reflects the new timing.
        let after = line(&mut s, r#"{"id":3,"kind":"report"}"#);
        assert_eq!(s.counters().cache_misses, 2);
        assert_eq!(s.counters().cache_hits, 0);
        assert_ne!(
            before.replace(r#""id":1"#, r#""id":3"#),
            after,
            "stale answer replayed across an ECO"
        );
    }
}
