//! The warm analysis session behind the daemon.
//!
//! [`ServeSession`] owns an [`IncrementalAnalyzer`] (which owns the
//! design, the content-hash-keyed model cache and the shared
//! cone-signature cache) plus one persistent [`StabilityOracle`] per
//! leaf module touched by a what-if query. Every request is one method
//! call; every answer is a deterministic single-line JSON string.
//!
//! Cache-warmth invariants (also tabulated in DESIGN.md):
//!
//! * a malformed or semantically invalid request mutates **nothing** —
//!   the next good request answers bit-identically to a fresh analysis;
//! * a per-request deadline rides the solver budget: on expiry the
//!   answer degrades soundly (`"degraded":true`) and, because degraded
//!   models are never cached, later un-deadlined requests recompute
//!   exactly;
//! * an ECO edit invalidates exactly the edited module: its model
//!   (by content hash) and its what-if oracle; all other warm state
//!   survives.
//!
//! The session splits along a read/write seam. Once every module model
//! is warm, [`ServeSession::read_view`] hands out a [`ReadView`] —
//! an `Arc`-shared, immutable core (a [`WarmSnapshot`] of the design
//! plus the contention-safe response cache) that answers
//! `report`/`delay`/`slack` byte-identically to the exclusive path
//! from any thread. Everything that mutates (`eco`, oracle state,
//! booked counters) stays on the exclusive writer half behind
//! `&mut ServeSession`; an ECO drops the view and the next read
//! rebuilds it from the re-warmed analyzer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hfta_core::{HierAnalysis, IncrementalAnalyzer, WarmSnapshot};
use hfta_fta::sta::TopoSta;
use hfta_fta::{AnalysisConfig, SolveBudget, StabilityOracle};
use hfta_netlist::{bench_format, Design, NetId, Netlist, NetlistError, Time};
use hfta_trace::{TraceSink, Value};

use crate::json::{Json, ObjBuilder};
use crate::protocol::{
    parse_request, time_to_json, Arrivals, EcoEdit, Request, RequestKind, Response,
};

/// Default cap on one request line (bytes). Oversized lines are
/// answered with a structured error and skipped without buffering.
pub const DEFAULT_MAX_LINE: usize = 1 << 20;

/// What the server loop should do after a response.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Keep serving.
    Continue,
    /// Stop cleanly (a `shutdown` request was answered).
    Shutdown,
}

/// A persistent per-module stability oracle plus the derived data the
/// binary search needs. The netlist clone feeds [`TopoSta`] bounds
/// while the oracle is mutably borrowed — split-borrow friendly.
#[derive(Debug)]
pub(crate) struct ModuleOracle {
    netlist: Netlist,
    oracle: StabilityOracle,
    /// Content hash of the leaf this oracle encodes; an ECO bumps the
    /// hash and retires the oracle.
    hash: u64,
}

impl ModuleOracle {
    /// Builds the oracle; with `shared` the backend runs in
    /// shared-solver mode (one incremental instance for the whole
    /// module, each probe domain-restricted to its output's transitive
    /// fanin — bit-identical answers, see
    /// [`StabilityOracle::new_sat_shared`]). Sessions pass `shared`
    /// when their base budget is unlimited; budgeted sessions keep the
    /// plain backend so degradations match the baseline exactly.
    fn new(leaf: &Netlist, shared: bool) -> Result<ModuleOracle, NetlistError> {
        let zeros = vec![Time::ZERO; leaf.inputs().len()];
        let oracle = if shared {
            StabilityOracle::new_sat_shared(leaf.clone(), &zeros)?
        } else {
            StabilityOracle::new_sat(leaf.clone(), &zeros)?
        };
        Ok(ModuleOracle {
            netlist: leaf.clone(),
            oracle,
            hash: leaf.content_hash(),
        })
    }

    /// The functional (XBD0) arrival of `net` under `arrivals`,
    /// answered by rebinding the persistent oracle — the same binary
    /// search as `DelayAnalyzer::output_arrival`, but over solver state
    /// that survives across queries. Returns `(arrival, degraded)`;
    /// a degraded answer is the (sound) topological arrival.
    pub(crate) fn functional_arrival(
        &mut self,
        arrivals: &[Time],
        net: NetId,
        budget: SolveBudget,
    ) -> (Time, bool) {
        let sta = TopoSta::new(&self.netlist).expect("oracle construction validated acyclicity");
        let topo = sta.arrival_times(arrivals)[net.index()];
        let first = first_event(&self.netlist, arrivals, net);
        if first == Time::POS_INF {
            // No finite events reach the net: stability is
            // time-independent and the topological bound is exact.
            return (topo, false);
        }
        self.oracle.set_budget(budget);
        self.oracle.set_arrivals(arrivals);
        let lo = first.finite().expect("checked finite");
        match self.oracle.try_is_stable_at(net, Time::new(lo - 1)) {
            Some(true) => return (Time::NEG_INF, false),
            Some(false) => {}
            None => return (topo, true),
        }
        let hi = match topo.finite() {
            Some(h) => h,
            None => {
                // Some arrivals are +∞: probe the latest finite event.
                let hi = latest_finite_event(&sta, &self.netlist, arrivals);
                match self.oracle.try_is_stable_at(net, Time::new(hi)) {
                    Some(true) => hi,
                    Some(false) => return (Time::POS_INF, false),
                    None => return (topo, true),
                }
            }
        };
        let (mut lo, mut hi) = (lo - 1, hi);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            match self.oracle.try_is_stable_at(net, Time::new(mid)) {
                Some(true) => hi = mid,
                Some(false) => lo = mid,
                None => return (topo, true),
            }
        }
        (Time::new(hi), false)
    }
}

/// Earliest finite event at `net`: min-propagation of finite arrivals
/// only (mirrors `DelayAnalyzer`'s lower search bound).
fn first_event(nl: &Netlist, arrivals: &[Time], net: NetId) -> Time {
    let mut first = vec![Time::POS_INF; nl.net_count()];
    for (k, &pi) in nl.inputs().iter().enumerate() {
        if arrivals[k].is_finite() {
            first[pi.index()] = arrivals[k];
        }
    }
    for &g in &nl.topo_gates().expect("validated acyclic") {
        let gate = nl.gate(g);
        let best = gate
            .inputs
            .iter()
            .map(|n| first[n.index()])
            .fold(Time::POS_INF, Time::min);
        if best != Time::POS_INF {
            first[gate.output.index()] = best + Time::from(gate.delay);
        }
    }
    first[net.index()]
}

/// Latest finite event reaching any net: max over finite-arrival inputs
/// of (arrival + longest path to the target's cone). Mirrors
/// `DelayAnalyzer::latest_finite_event` but conservatively uses the
/// whole-netlist longest paths (only an upper search bound).
fn latest_finite_event(sta: &TopoSta<'_>, nl: &Netlist, arrivals: &[Time]) -> i64 {
    let mut latest = i64::MIN / 4;
    for &out in nl.outputs() {
        let long = sta.longest_to(out);
        for (k, &pi) in nl.inputs().iter().enumerate() {
            if let (Some(a), Some(d)) = (arrivals[k].finite(), long[pi.index()].finite()) {
                latest = latest.max(a + d);
            }
        }
    }
    latest
}

/// A what-if query resolved to raw analyzer inputs, ready to run on
/// any thread that holds the module's oracle.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct PreparedWhatIf {
    pub(crate) id: Json,
    pub(crate) module: String,
    pub(crate) output: String,
    pub(crate) net: NetId,
    pub(crate) arrivals: Vec<Time>,
    pub(crate) budget: SolveBudget,
}

impl PreparedWhatIf {
    /// Runs the query against `oracle` and builds the typed response.
    pub(crate) fn run(&self, oracle: &mut ModuleOracle) -> Response {
        let (arrival, degraded) = oracle.functional_arrival(&self.arrivals, self.net, self.budget);
        Response::ok(
            &self.id,
            "whatif",
            vec![
                ("module".to_string(), Json::Str(self.module.clone())),
                ("output".to_string(), Json::Str(self.output.clone())),
                ("arrival".to_string(), time_to_json(arrival)),
                ("degraded".to_string(), Json::Bool(degraded)),
            ],
        )
    }
}

/// Session counters reported by the `stats` request (a point-in-time
/// snapshot assembled by [`ServeSession::counters`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServeCounters {
    /// Requests answered (including errors).
    pub requests: u64,
    /// Requests answered with `"ok":false`.
    pub errors: u64,
    /// What-if queries served by persistent oracles.
    pub whatif_queries: u64,
    /// ECO edits applied.
    pub eco_edits: u64,
    /// Query responses replayed from the arrivals-keyed response cache
    /// (only unlimited-budget, deadline-free requests are eligible).
    pub cache_hits: u64,
    /// Eligible query responses that had to be computed.
    pub cache_misses: u64,
    /// Unix-socket connections accepted over the daemon's life.
    pub connections_accepted: u64,
    /// Unix-socket connections currently open.
    pub connections_active: u64,
    /// High-water mark of the bounded multi-client request queue.
    pub queue_depth_hwm: u64,
    /// Mutating requests (`eco`/`shutdown`) that drained earlier
    /// requests out of their batch before running (write barrier).
    pub barrier_waits: u64,
}

/// The subset of counters booked serially on the writer half (one
/// increment per answered request, on the dispatcher thread).
#[derive(Clone, Copy, Debug, Default)]
struct Booked {
    requests: u64,
    errors: u64,
    whatif_queries: u64,
    eco_edits: u64,
}

/// Connection/queue counters shared with the socket server's accept
/// and reader threads (lock-free; exact totals, relaxed ordering).
#[derive(Debug, Default)]
pub(crate) struct ConnCounters {
    pub(crate) accepted: AtomicU64,
    pub(crate) active: AtomicU64,
    pub(crate) queue_depth_hwm: AtomicU64,
    pub(crate) barrier_waits: AtomicU64,
}

impl ConnCounters {
    /// Raises the queue high-water mark to at least `depth`.
    pub(crate) fn note_queue_depth(&self, depth: u64) {
        self.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Cap on the arrivals-keyed response cache — a full cache skips
/// inserts (never evicts: hit entries stay bit-stable for the
/// session's life).
const RESPONSE_CACHE_CAP: usize = 4096;

/// Key of one cached query response: the request kind plus every input
/// that determines the answer (resolved arrival vectors, so named and
/// positional payloads that mean the same condition share an entry).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ResponseKey {
    Report {
        arrivals: Vec<Time>,
    },
    Delay {
        output: String,
        arrivals: Vec<Time>,
    },
    Slack {
        net: String,
        required: Option<Time>,
        arrivals: Vec<Time>,
    },
}

/// The arrivals-keyed response cache, contention-safe so sharded read
/// workers and the exclusive writer half share one instance. Entries
/// are deterministic functions of their key, so a racing double-insert
/// stores the same bytes either way.
#[derive(Debug, Default)]
struct ResponseCache {
    map: Mutex<HashMap<ResponseKey, Vec<(String, Json)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResponseCache {
    /// Cache probe for an eligible request (books a hit or miss);
    /// ineligible requests bypass the cache without touching counters.
    fn lookup(&self, key: &ResponseKey, eligible: bool) -> Option<Vec<(String, Json)>> {
        if !eligible {
            return None;
        }
        let map = self.map.lock().expect("response cache poisoned");
        match map.get(key) {
            Some(fields) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(fields.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a computed response unless the cache is full.
    fn insert(&self, key: ResponseKey, fields: &[(String, Json)]) {
        let mut map = self.map.lock().expect("response cache poisoned");
        if map.len() < RESPONSE_CACHE_CAP {
            map.insert(key, fields.to_vec());
        }
    }

    /// Drops every entry (ECO invalidation).
    fn clear(&self) {
        self.map.lock().expect("response cache poisoned").clear();
    }
}

/// The shared read-only core of a fully-warm session: a detached
/// [`WarmSnapshot`] plus everything needed to answer
/// `report`/`delay`/`slack` byte-identically to the exclusive path —
/// from any thread, concurrently. Handed out by
/// [`ServeSession::read_view`] only when every module model is warm,
/// which is exactly when those answers involve no solver work (pure
/// propagation: `characterized` is 0 and nothing can degrade).
#[derive(Debug)]
pub(crate) struct ReadView {
    top: String,
    input_names: Vec<String>,
    output_names: Vec<String>,
    snapshot: WarmSnapshot,
    /// Whether the session's base budget is unlimited (the static half
    /// of response-cache eligibility).
    cache_base: bool,
    default_deadline_ms: Option<u64>,
    cache: Arc<ResponseCache>,
}

impl ReadView {
    fn cache_eligible(&self, request: &Request) -> bool {
        self.cache_base && request.deadline_ms.or(self.default_deadline_ms).is_none()
    }

    /// Answers one read-only request. Panics on any other kind — the
    /// dispatcher routes only `report`/`delay`/`slack` here.
    pub(crate) fn respond(&self, request: &Request) -> Response {
        let result = match &request.kind {
            RequestKind::Report { arrivals } => self.report(request, arrivals.as_ref()),
            RequestKind::Delay { output, arrivals } => {
                self.delay(request, output, arrivals.as_ref())
            }
            RequestKind::Slack {
                net,
                required,
                arrivals,
            } => self.slack(request, net, *required, arrivals.as_ref()),
            _ => unreachable!("ReadView serves only report/delay/slack"),
        };
        result.unwrap_or_else(|message| Response::error(&request.id, message))
    }

    fn analyze(&self, arrivals: &[Time]) -> Result<HierAnalysis, String> {
        self.snapshot.analyze(arrivals).map_err(|e| e.to_string())
    }

    fn report(&self, request: &Request, arrivals: Option<&Arrivals>) -> Result<Response, String> {
        let arr = resolve_arrivals(arrivals, &self.input_names, &self.top)?;
        let key = ResponseKey::Report {
            arrivals: arr.clone(),
        };
        let eligible = self.cache_eligible(request);
        if let Some(fields) = self.cache.lookup(&key, eligible) {
            return Ok(Response::ok(&request.id, "report", fields));
        }
        let analysis = self.analyze(&arr)?;
        let fields = report_fields(&self.output_names, &analysis);
        if eligible {
            self.cache.insert(key, &fields);
        }
        Ok(Response::ok(&request.id, "report", fields))
    }

    fn delay(
        &self,
        request: &Request,
        output: &str,
        arrivals: Option<&Arrivals>,
    ) -> Result<Response, String> {
        let pos = self
            .output_names
            .iter()
            .position(|n| n == output)
            .ok_or_else(|| format!("no primary output `{output}` in module `{}`", self.top))?;
        let arr = resolve_arrivals(arrivals, &self.input_names, &self.top)?;
        let key = ResponseKey::Delay {
            output: output.to_string(),
            arrivals: arr.clone(),
        };
        let eligible = self.cache_eligible(request);
        if let Some(fields) = self.cache.lookup(&key, eligible) {
            return Ok(Response::ok(&request.id, "delay", fields));
        }
        let analysis = self.analyze(&arr)?;
        let fields = delay_fields(output, pos, &analysis);
        if eligible {
            self.cache.insert(key, &fields);
        }
        Ok(Response::ok(&request.id, "delay", fields))
    }

    fn slack(
        &self,
        request: &Request,
        net: &str,
        required: Option<Time>,
        arrivals: Option<&Arrivals>,
    ) -> Result<Response, String> {
        let net_id = self
            .snapshot
            .composite()
            .find_net(net)
            .ok_or_else(|| format!("no net `{net}` in module `{}`", self.top))?;
        let arr = resolve_arrivals(arrivals, &self.input_names, &self.top)?;
        let key = ResponseKey::Slack {
            net: net.to_string(),
            required,
            arrivals: arr.clone(),
        };
        let eligible = self.cache_eligible(request);
        if let Some(fields) = self.cache.lookup(&key, eligible) {
            return Ok(Response::ok(&request.id, "slack", fields));
        }
        let analysis = self.analyze(&arr)?;
        let fields = slack_fields(net, net_id, required, &analysis);
        if eligible {
            self.cache.insert(key, &fields);
        }
        Ok(Response::ok(&request.id, "slack", fields))
    }
}

/// One warm, long-lived analysis session: the daemon's state.
#[derive(Debug)]
pub struct ServeSession {
    analyzer: IncrementalAnalyzer,
    top: String,
    /// Top-level primary-input names, in input order.
    input_names: Vec<String>,
    /// Top-level primary-output names, in output order.
    output_names: Vec<String>,
    base_budget: SolveBudget,
    /// Deadline applied to requests that don't carry their own.
    default_deadline_ms: Option<u64>,
    oracles: HashMap<String, ModuleOracle>,
    /// Whether per-module oracles use shared-solver mode (from
    /// [`AnalysisConfig::shared_solver`]).
    shared_solver: bool,
    /// Arrivals-keyed response cache: response fields (everything after
    /// the echoed id) of previously answered queries. Only filled and
    /// consulted for unlimited-budget, deadline-free requests — those
    /// answers are deterministic functions of the key, so a replay is
    /// byte-identical to a recompute. An ECO clears it wholesale.
    /// Shared (`Arc`) with every outstanding [`ReadView`].
    cache: Arc<ResponseCache>,
    /// Lazily built shared read core; dropped on anything that could
    /// change read answers (ECO, default-deadline change) and rebuilt
    /// from the analyzer the next time it is fully warm.
    view: Option<Arc<ReadView>>,
    /// Connection/queue counters shared with the socket server.
    conn: Arc<ConnCounters>,
    trace: TraceSink,
    max_line: usize,
    booked: Booked,
}

impl ServeSession {
    /// Builds a session for module `top` of `design`, wiring budgets,
    /// model databases and the trace sink from `config`.
    ///
    /// # Errors
    ///
    /// Same as [`IncrementalAnalyzer::with_config`]: validation
    /// failures, a missing/non-composite top, non-leaf instances, and
    /// I/O errors opening the emit model database.
    pub fn new(design: Design, top: &str, config: &AnalysisConfig) -> Result<Self, NetlistError> {
        let analyzer = IncrementalAnalyzer::with_config(design, top, config)?;
        let composite = analyzer
            .design()
            .composite(top)
            .expect("validated by the analyzer constructor");
        let input_names = composite
            .inputs()
            .iter()
            .map(|&n| composite.net_name(n).to_string())
            .collect();
        let output_names = composite
            .outputs()
            .iter()
            .map(|&n| composite.net_name(n).to_string())
            .collect();
        Ok(ServeSession {
            analyzer,
            top: top.to_string(),
            input_names,
            output_names,
            base_budget: config.budget,
            default_deadline_ms: None,
            oracles: HashMap::new(),
            shared_solver: config.shared_solver,
            cache: Arc::new(ResponseCache::default()),
            view: None,
            conn: Arc::new(ConnCounters::default()),
            trace: config.trace.clone(),
            max_line: DEFAULT_MAX_LINE,
            booked: Booked::default(),
        })
    }

    /// Sets the deadline applied to requests that don't carry their own
    /// `deadline_ms` (the CLI's `--deadline-ms`). Drops the shared read
    /// view — cache eligibility depends on the default deadline.
    pub fn set_default_deadline_ms(&mut self, ms: Option<u64>) {
        self.default_deadline_ms = ms;
        self.view = None;
    }

    /// Sets the per-line byte cap (protocol hygiene; the server loop
    /// also enforces it while streaming).
    pub fn set_max_line(&mut self, max: usize) {
        self.max_line = max.max(1);
    }

    /// The per-line byte cap.
    #[must_use]
    pub fn max_line(&self) -> usize {
        self.max_line
    }

    /// Session counters so far (a point-in-time snapshot: the serially
    /// booked request counters plus the shared cache and connection
    /// atomics).
    #[must_use]
    pub fn counters(&self) -> ServeCounters {
        ServeCounters {
            requests: self.booked.requests,
            errors: self.booked.errors,
            whatif_queries: self.booked.whatif_queries,
            eco_edits: self.booked.eco_edits,
            cache_hits: self.cache.hits.load(Ordering::Relaxed),
            cache_misses: self.cache.misses.load(Ordering::Relaxed),
            connections_accepted: self.conn.accepted.load(Ordering::Relaxed),
            connections_active: self.conn.active.load(Ordering::Relaxed),
            queue_depth_hwm: self.conn.queue_depth_hwm.load(Ordering::Relaxed),
            barrier_waits: self.conn.barrier_waits.load(Ordering::Relaxed),
        }
    }

    /// The connection/queue counters shared with the socket server's
    /// accept and reader threads.
    pub(crate) fn conn_counters(&self) -> Arc<ConnCounters> {
        Arc::clone(&self.conn)
    }

    /// The shared read-only core, built lazily whenever every module
    /// model is warm (`None` on a cold or degraded session — callers
    /// fall back to the exclusive path). Cloning the `Arc` is cheap;
    /// the view answers read requests from any thread.
    pub(crate) fn read_view(&mut self) -> Option<Arc<ReadView>> {
        if self.view.is_none() {
            let snapshot = self.analyzer.warm_snapshot()?;
            self.view = Some(Arc::new(ReadView {
                top: self.top.clone(),
                input_names: self.input_names.clone(),
                output_names: self.output_names.clone(),
                snapshot,
                cache_base: self.base_budget.is_unlimited(),
                default_deadline_ms: self.default_deadline_ms,
                cache: Arc::clone(&self.cache),
            }));
        }
        self.view.clone()
    }

    /// Total characterizations across the session (the number a warm
    /// start keeps at zero).
    #[must_use]
    pub fn characterizations(&self) -> u64 {
        self.analyzer.characterizations()
    }

    /// Warms the session: characterizes (or loads from the model
    /// database) every leaf model and runs one all-zero propagation.
    /// The daemon calls this once before serving.
    ///
    /// # Errors
    ///
    /// Returns characterization/propagation errors.
    pub fn warm(&mut self) -> Result<HierAnalysis, NetlistError> {
        let arrivals = vec![Time::ZERO; self.input_names.len()];
        self.analyzer.analyze(&arrivals)
    }

    /// Handles one raw request line, returning the response line (no
    /// trailing newline) and what the server loop should do next.
    /// Empty lines yield no response (`None`). A thin
    /// parse→[`dispatch`](Self::dispatch)→encode wrapper: the JSON
    /// codec lives only at this transport edge.
    pub fn handle_line(&mut self, line: &str) -> (Option<String>, Action) {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return (None, Action::Continue);
        }
        if trimmed.len() > self.max_line {
            let response = self.booked_error(
                &Json::Null,
                format!("request line exceeds {} bytes", self.max_line),
            );
            return (Some(response.encode()), Action::Continue);
        }
        let request = match parse_request(trimmed) {
            Ok(r) => r,
            Err((id, message)) => {
                return (
                    Some(self.booked_error(&id, message).encode()),
                    Action::Continue,
                )
            }
        };
        let (response, action) = self.dispatch(&request);
        (Some(response.encode()), action)
    }

    /// Books a protocol-level error (oversized/unparsable line) into
    /// the counters and builds its typed response.
    pub(crate) fn booked_error(&mut self, id: &Json, message: impl Into<String>) -> Response {
        self.booked.requests += 1;
        self.booked.errors += 1;
        Response::error(id, message)
    }

    /// Answers one typed request: the core of the serve API. Read-only
    /// kinds (`report`/`delay`/`slack`) route through the shared
    /// `ReadView` whenever the session is fully warm — the same code
    /// path sharded pool workers run — so serial and concurrent
    /// execution produce byte-identical responses by construction.
    /// Everything else (and every cold-session request) runs on the
    /// exclusive writer half.
    pub fn dispatch(&mut self, request: &Request) -> (Response, Action) {
        let mut tracer = self.trace.tracer();
        let span = tracer.is_enabled().then(|| tracer.begin("serve_request"));
        let shutdown = matches!(request.kind, RequestKind::Shutdown);
        let result = match &request.kind {
            RequestKind::Report { .. } | RequestKind::Delay { .. } | RequestKind::Slack { .. } => {
                match self.read_view() {
                    Some(view) => Ok(view.respond(request)),
                    None => self.respond_exclusive(request),
                }
            }
            _ => self.respond_exclusive(request),
        };
        let response = result.unwrap_or_else(|message| Response::error(&request.id, message));
        let ok = response.is_ok();
        if let Some(span) = span {
            tracer.end_with(
                span,
                vec![
                    ("kind", Value::from(kind_name(&request.kind))),
                    ("ok", Value::from(ok)),
                ],
            );
        }
        self.trace.absorb(tracer);
        self.booked.requests += 1;
        if !ok {
            self.booked.errors += 1;
        }
        let action = if shutdown && ok {
            Action::Shutdown
        } else {
            Action::Continue
        };
        (response, action)
    }

    /// The writer-half request handlers (also the read fallback while
    /// models are cold or degraded).
    fn respond_exclusive(&mut self, request: &Request) -> Result<Response, String> {
        match &request.kind {
            RequestKind::Report { arrivals } => self.do_report(request, arrivals.as_ref()),
            RequestKind::Delay { output, arrivals } => {
                self.do_delay(request, output, arrivals.as_ref())
            }
            RequestKind::Slack {
                net,
                required,
                arrivals,
            } => self.do_slack(request, net, *required, arrivals.as_ref()),
            RequestKind::WhatIf {
                module,
                output,
                arrivals,
            } => self.do_whatif(request, module, output, arrivals),
            RequestKind::Eco { module, edit } => self.do_eco(request, module, edit),
            RequestKind::Stats => Ok(self.do_stats(request)),
            RequestKind::Shutdown => Ok(Response::ok(&request.id, "shutdown", Vec::new())),
        }
    }

    /// Resolves the optional top-level arrival payload (default:
    /// all-zero).
    fn top_arrivals(&self, arrivals: Option<&Arrivals>) -> Result<Vec<Time>, String> {
        resolve_arrivals(arrivals, &self.input_names, &self.top)
    }

    /// Whether `request`'s response may come from (and feed) the
    /// response cache: its effective budget must be unlimited and
    /// deadline-free, so the answer is a pure function of the cache
    /// key. Budgeted/deadlined answers can degrade and depend on solver
    /// history — they are never cached or replayed.
    fn cache_eligible(&self, request: &Request) -> bool {
        self.base_budget.is_unlimited()
            && request.deadline_ms.or(self.default_deadline_ms).is_none()
    }

    /// The budget one request runs under: the base budget, tightened by
    /// the request's (or the session's default) deadline.
    fn budget_for(&self, request: &Request) -> SolveBudget {
        match request.deadline_ms.or(self.default_deadline_ms) {
            Some(ms) => self
                .base_budget
                .with_deadline(Instant::now() + Duration::from_millis(ms)),
            None => self.base_budget,
        }
    }

    /// Runs one top-level analysis under the request's budget. A
    /// deadline-tightened budget clears the signature cache (its
    /// entries replay the outcomes of the budget that filled them) but
    /// never the model cache — only undegraded models live there.
    fn analyze(&mut self, request: &Request, arrivals: &[Time]) -> Result<HierAnalysis, String> {
        let budget = self.budget_for(request);
        self.analyzer.set_budget(budget);
        let result = self.analyzer.analyze(arrivals);
        self.analyzer.set_budget(self.base_budget);
        result.map_err(|e| e.to_string())
    }

    fn do_report(
        &mut self,
        request: &Request,
        arrivals: Option<&Arrivals>,
    ) -> Result<Response, String> {
        let arr = self.top_arrivals(arrivals)?;
        let key = ResponseKey::Report {
            arrivals: arr.clone(),
        };
        let eligible = self.cache_eligible(request);
        if let Some(fields) = self.cache.lookup(&key, eligible) {
            return Ok(Response::ok(&request.id, "report", fields));
        }
        let analysis = self.analyze(request, &arr)?;
        let fields = report_fields(&self.output_names, &analysis);
        // Only fully-warm answers are cached: a response that reports
        // `characterized > 0` would replay that stale counter.
        if eligible && analysis.stats.modules_characterized == 0 {
            self.cache.insert(key, &fields);
        }
        Ok(Response::ok(&request.id, "report", fields))
    }

    fn do_delay(
        &mut self,
        request: &Request,
        output: &str,
        arrivals: Option<&Arrivals>,
    ) -> Result<Response, String> {
        let pos = self
            .output_names
            .iter()
            .position(|n| n == output)
            .ok_or_else(|| format!("no primary output `{output}` in module `{}`", self.top))?;
        let arr = self.top_arrivals(arrivals)?;
        let key = ResponseKey::Delay {
            output: output.to_string(),
            arrivals: arr.clone(),
        };
        let eligible = self.cache_eligible(request);
        if let Some(fields) = self.cache.lookup(&key, eligible) {
            return Ok(Response::ok(&request.id, "delay", fields));
        }
        let analysis = self.analyze(request, &arr)?;
        let fields = delay_fields(output, pos, &analysis);
        if eligible && analysis.stats.modules_characterized == 0 {
            self.cache.insert(key, &fields);
        }
        Ok(Response::ok(&request.id, "delay", fields))
    }

    fn do_slack(
        &mut self,
        request: &Request,
        net: &str,
        required: Option<Time>,
        arrivals: Option<&Arrivals>,
    ) -> Result<Response, String> {
        let net_id = self
            .analyzer
            .design()
            .composite(&self.top)
            .expect("validated")
            .find_net(net)
            .ok_or_else(|| format!("no net `{net}` in module `{}`", self.top))?;
        let arr = self.top_arrivals(arrivals)?;
        let key = ResponseKey::Slack {
            net: net.to_string(),
            required,
            arrivals: arr.clone(),
        };
        let eligible = self.cache_eligible(request);
        if let Some(fields) = self.cache.lookup(&key, eligible) {
            return Ok(Response::ok(&request.id, "slack", fields));
        }
        let analysis = self.analyze(request, &arr)?;
        let fields = slack_fields(net, net_id, required, &analysis);
        if eligible && analysis.stats.modules_characterized == 0 {
            self.cache.insert(key, &fields);
        }
        Ok(Response::ok(&request.id, "slack", fields))
    }

    /// Resolves a what-if request against the named leaf module,
    /// ready to run wherever its oracle is.
    pub(crate) fn prepare_whatif(
        &self,
        request: &Request,
        module: &str,
        output: &str,
        arrivals: &Arrivals,
    ) -> Result<PreparedWhatIf, String> {
        let leaf = self
            .analyzer
            .design()
            .leaf(module)
            .ok_or_else(|| format!("no leaf module `{module}` in the design"))?;
        let input_names: Vec<String> = leaf
            .inputs()
            .iter()
            .map(|&n| leaf.net_name(n).to_string())
            .collect();
        let times = resolve_arrivals(Some(arrivals), &input_names, module)?;
        let net = leaf
            .find_net(output)
            .ok_or_else(|| format!("no net `{output}` in module `{module}`"))?;
        Ok(PreparedWhatIf {
            id: request.id.clone(),
            module: module.to_string(),
            output: output.to_string(),
            net,
            arrivals: times,
            budget: self.budget_for(request),
        })
    }

    /// Takes the named module's oracle out of the session (building it
    /// on first use), e.g. to ship it to a pool worker.
    pub(crate) fn checkout_oracle(&mut self, module: &str) -> Result<ModuleOracle, String> {
        let leaf = self
            .analyzer
            .design()
            .leaf(module)
            .ok_or_else(|| format!("no leaf module `{module}` in the design"))?;
        let hash = leaf.content_hash();
        match self.oracles.remove(module) {
            // A stale oracle (the module was ECO-edited while the
            // oracle sat idle) is silently rebuilt.
            Some(oracle) if oracle.hash == hash => Ok(oracle),
            _ => ModuleOracle::new(leaf, self.shared_solver && self.base_budget.is_unlimited())
                .map_err(|e| e.to_string()),
        }
    }

    /// Returns an oracle after use.
    pub(crate) fn checkin_oracle(&mut self, module: String, oracle: ModuleOracle) {
        self.oracles.insert(module, oracle);
    }

    /// Number of live per-module oracles.
    #[must_use]
    pub fn oracle_count(&self) -> usize {
        self.oracles.len()
    }

    // What-if answers are deliberately *not* response-cached: repeats
    // are already served warm by the per-module oracle's memo, and the
    // sharded batch path must stay byte-identical (counters included)
    // to serial execution.
    fn do_whatif(
        &mut self,
        request: &Request,
        module: &str,
        output: &str,
        arrivals: &Arrivals,
    ) -> Result<Response, String> {
        let prepared = self.prepare_whatif(request, module, output, arrivals)?;
        let mut oracle = self.checkout_oracle(module)?;
        let response = prepared.run(&mut oracle);
        self.checkin_oracle(module.to_string(), oracle);
        self.booked.whatif_queries += 1;
        Ok(response)
    }

    /// Books a sharded-path response into the counters (the response
    /// itself was computed by a pool worker). Successful what-ifs pass
    /// `whatif = true`.
    pub(crate) fn book(&mut self, ok: bool, whatif: bool) {
        self.booked.requests += 1;
        if !ok {
            self.booked.errors += 1;
        }
        if ok && whatif {
            self.booked.whatif_queries += 1;
        }
    }

    fn do_eco(
        &mut self,
        request: &Request,
        module: &str,
        edit: &EcoEdit,
    ) -> Result<Response, String> {
        let old = self
            .analyzer
            .design()
            .leaf(module)
            .ok_or_else(|| format!("no leaf module `{module}` in the design"))?;
        let edited = match edit {
            EcoEdit::GateDelay { gate, delay } => {
                let mut nl = old.clone();
                let net = nl
                    .find_net(gate)
                    .ok_or_else(|| format!("no net `{gate}` in module `{module}`"))?;
                let gid = nl
                    .driver(net)
                    .ok_or_else(|| format!("net `{gate}` has no driving gate (primary input?)"))?;
                nl.set_gate_delay(gid, *delay);
                nl
            }
            EcoEdit::Replace { bench } => {
                let nl = bench_format::parse(bench, module)
                    .map_err(|e| format!("bad `bench` body: {e}"))?;
                check_same_ports(old, &nl)?;
                nl
            }
        };
        self.analyzer
            .replace_module(edited)
            .map_err(|e| e.to_string())?;
        // The edited module's oracle encodes the old body; retire it.
        self.oracles.remove(module);
        // Invalidation order matters for concurrent readers: drop the
        // view first (no new reads against the old design), then clear
        // the cache (no stale replays), then re-analyze. Outstanding
        // view clones on workers keep answering for the *old* design
        // until the write barrier drains them — which is why the
        // server serializes ECOs behind it.
        self.view = None;
        self.cache.clear();
        self.booked.eco_edits += 1;
        let arrivals = vec![Time::ZERO; self.input_names.len()];
        let analysis = self.analyze(request, &arrivals)?;
        Ok(Response::ok(
            &request.id,
            "eco",
            vec![
                ("module".to_string(), Json::Str(module.to_string())),
                (
                    "recharacterized".to_string(),
                    Json::Num(analysis.stats.modules_characterized as i64),
                ),
                ("delay".to_string(), time_to_json(analysis.delay)),
                (
                    "degraded".to_string(),
                    Json::Bool(analysis.stats.modules_degraded > 0),
                ),
            ],
        ))
    }

    fn do_stats(&self, request: &Request) -> Response {
        let db = self.analyzer.model_db_stats();
        let c = self.counters();
        Response::ok(
            &request.id,
            "stats",
            vec![
                (
                    "characterized".to_string(),
                    Json::Num(self.analyzer.characterizations() as i64),
                ),
                ("model_db_hits".to_string(), Json::Num(db.hits as i64)),
                ("model_db_misses".to_string(), Json::Num(db.misses as i64)),
                ("oracles".to_string(), Json::Num(self.oracles.len() as i64)),
                ("requests".to_string(), Json::Num(c.requests as i64)),
                ("errors".to_string(), Json::Num(c.errors as i64)),
                (
                    "whatif_queries".to_string(),
                    Json::Num(c.whatif_queries as i64),
                ),
                ("eco_edits".to_string(), Json::Num(c.eco_edits as i64)),
                ("cache_hits".to_string(), Json::Num(c.cache_hits as i64)),
                ("cache_misses".to_string(), Json::Num(c.cache_misses as i64)),
                (
                    "connections_accepted".to_string(),
                    Json::Num(c.connections_accepted as i64),
                ),
                (
                    "connections_active".to_string(),
                    Json::Num(c.connections_active as i64),
                ),
                (
                    "queue_depth_hwm".to_string(),
                    Json::Num(c.queue_depth_hwm as i64),
                ),
                (
                    "barrier_waits".to_string(),
                    Json::Num(c.barrier_waits as i64),
                ),
            ],
        )
    }
}

/// `report` response fields, shared verbatim by the exclusive path and
/// [`ReadView`] so both render byte-identical answers.
fn report_fields(output_names: &[String], analysis: &HierAnalysis) -> Vec<(String, Json)> {
    let mut outputs = ObjBuilder::new();
    for (name, &t) in output_names.iter().zip(&analysis.output_arrivals) {
        outputs = outputs.field(name, time_to_json(t));
    }
    vec![
        ("delay".to_string(), time_to_json(analysis.delay)),
        ("outputs".to_string(), outputs.build()),
        (
            "characterized".to_string(),
            Json::Num(analysis.stats.modules_characterized as i64),
        ),
        (
            "degraded".to_string(),
            Json::Bool(analysis.stats.modules_degraded > 0),
        ),
    ]
}

/// `delay` response fields (see [`report_fields`]).
fn delay_fields(output: &str, pos: usize, analysis: &HierAnalysis) -> Vec<(String, Json)> {
    vec![
        ("output".to_string(), Json::Str(output.to_string())),
        (
            "arrival".to_string(),
            time_to_json(analysis.output_arrivals[pos]),
        ),
        (
            "degraded".to_string(),
            Json::Bool(analysis.stats.modules_degraded > 0),
        ),
    ]
}

/// `slack` response fields (see [`report_fields`]).
fn slack_fields(
    net: &str,
    net_id: NetId,
    required: Option<Time>,
    analysis: &HierAnalysis,
) -> Vec<(String, Json)> {
    let arrival = analysis.net_arrivals[net_id.index()];
    let required = required.unwrap_or(analysis.delay);
    vec![
        ("net".to_string(), Json::Str(net.to_string())),
        ("arrival".to_string(), time_to_json(arrival)),
        ("required".to_string(), time_to_json(required)),
        ("slack".to_string(), time_to_json(required - arrival)),
        (
            "degraded".to_string(),
            Json::Bool(analysis.stats.modules_degraded > 0),
        ),
    ]
}

/// Resolves an arrival payload against `input_names` (default 0 for
/// unnamed inputs; positional payloads must cover every input).
fn resolve_arrivals(
    arrivals: Option<&Arrivals>,
    input_names: &[String],
    module: &str,
) -> Result<Vec<Time>, String> {
    match arrivals {
        None => Ok(vec![Time::ZERO; input_names.len()]),
        Some(Arrivals::Named(named)) => {
            let mut times = vec![Time::ZERO; input_names.len()];
            for (name, t) in named {
                let pos = input_names
                    .iter()
                    .position(|n| n == name)
                    .ok_or_else(|| format!("no primary input `{name}` in module `{module}`"))?;
                times[pos] = *t;
            }
            Ok(times)
        }
        Some(Arrivals::Positional(times)) => {
            if times.len() != input_names.len() {
                return Err(format!(
                    "positional arrivals cover {} inputs, module `{module}` has {}",
                    times.len(),
                    input_names.len()
                ));
            }
            Ok(times.clone())
        }
    }
}

/// The ports of an ECO replacement must match the old body exactly
/// (same input/output names in the same order) — the top composite's
/// instances bind by position.
fn check_same_ports(old: &Netlist, new: &Netlist) -> Result<(), String> {
    let names = |nl: &Netlist, nets: &[NetId]| -> Vec<String> {
        nets.iter().map(|&n| nl.net_name(n).to_string()).collect()
    };
    let (oi, ni) = (names(old, old.inputs()), names(new, new.inputs()));
    if oi != ni {
        return Err(format!(
            "replacement inputs {ni:?} do not match the module's {oi:?}"
        ));
    }
    let (oo, no) = (names(old, old.outputs()), names(new, new.outputs()));
    if oo != no {
        return Err(format!(
            "replacement outputs {no:?} do not match the module's {oo:?}"
        ));
    }
    Ok(())
}

pub(crate) fn kind_name(kind: &RequestKind) -> &'static str {
    match kind {
        RequestKind::Report { .. } => "report",
        RequestKind::Delay { .. } => "delay",
        RequestKind::Slack { .. } => "slack",
        RequestKind::WhatIf { .. } => "whatif",
        RequestKind::Eco { .. } => "eco",
        RequestKind::Stats => "stats",
        RequestKind::Shutdown => "shutdown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_netlist::gen::{carry_skip_adder, CsaDelays};

    fn session() -> ServeSession {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        ServeSession::new(design, "csa4.2", &AnalysisConfig::default()).unwrap()
    }

    fn line(s: &mut ServeSession, req: &str) -> String {
        let (resp, action) = s.handle_line(req);
        assert_eq!(action, Action::Continue);
        resp.expect("non-empty line gets a response")
    }

    #[test]
    fn report_matches_direct_analysis() {
        let mut s = session();
        s.warm().unwrap();
        let resp = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        // Section 4: c4 arrives at 10; the last sum bit s3 dominates
        // the circuit delay at 12.
        assert!(resp.contains(r#""delay":12"#), "{resp}");
        assert!(resp.contains(r#""c4":10"#), "{resp}");
        assert!(resp.contains(r#""s3":12"#), "{resp}");
        assert!(resp.contains(r#""characterized":0"#), "warm: {resp}");
        assert!(resp.contains(r#""ok":true"#), "{resp}");
    }

    #[test]
    fn whatif_matches_fresh_delay_analyzer() {
        use hfta_fta::DelayAnalyzer;

        let mut s = session();
        let resp = line(
            &mut s,
            r#"{"id":2,"kind":"whatif","module":"csa_block2","output":"c_out","arrivals":{"c_in":5}}"#,
        );
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        let leaf = design.leaf("csa_block2").unwrap();
        let mut arrivals = vec![Time::ZERO; 5];
        arrivals[0] = Time::new(5); // c_in is input 0
        let mut fresh = DelayAnalyzer::new_sat(leaf, &arrivals).unwrap();
        let want = fresh.output_arrival(leaf.find_net("c_out").unwrap());
        assert_eq!(want, Time::new(8), "paper figure 5");
        assert!(resp.contains(r#""arrival":8"#), "{resp}");
        assert_eq!(s.oracle_count(), 1);
        // Another condition reuses the same oracle.
        let resp = line(
            &mut s,
            r#"{"id":3,"kind":"whatif","module":"csa_block2","output":"c_out","arrivals":{}}"#,
        );
        assert!(resp.contains(r#""arrival":8"#), "{resp}");
        assert_eq!(s.oracle_count(), 1);
    }

    #[test]
    fn eco_delay_edit_recharacterizes_one_module() {
        let mut s = session();
        s.warm().unwrap();
        assert_eq!(s.characterizations(), 1);
        let resp = line(
            &mut s,
            r#"{"id":4,"kind":"eco","module":"csa_block2","gate":"c_out","delay":9}"#,
        );
        assert!(resp.contains(r#""recharacterized":1"#), "{resp}");
        assert_eq!(s.characterizations(), 2);
        // The report is bit-identical to a cold analysis of the edited
        // design.
        let mut edited = carry_skip_adder(4, 2, CsaDelays::default());
        let mut block = edited.leaf("csa_block2").unwrap().clone();
        let c_out = block.find_net("c_out").unwrap();
        let gid = block.driver(c_out).unwrap();
        block.set_gate_delay(gid, 9);
        edited.replace_leaf(block).unwrap();
        let mut cold = IncrementalAnalyzer::new(edited, "csa4.2", Default::default()).unwrap();
        let want = cold.analyze(&[Time::ZERO; 9]).unwrap().delay;
        let resp = line(&mut s, r#"{"id":5,"kind":"report"}"#);
        assert!(
            resp.contains(&format!(r#""delay":{}"#, want.raw())),
            "want {want}, got {resp}"
        );
    }

    #[test]
    fn bad_requests_get_structured_errors_and_mutate_nothing() {
        let mut s = session();
        s.warm().unwrap();
        let before = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        for bad in [
            r#"{"id":2,"kind":"report""#,                  // truncated JSON
            r#"{"id":3,"kind":"frobnicate"}"#,             // unknown kind
            r#"{"id":4,"kind":"delay"}"#,                  // missing field
            r#"{"id":5,"kind":"delay","output":"ghost"}"#, // unknown output
            "[1,2,3]",                                     // not an object
        ] {
            let resp = line(&mut s, bad);
            assert!(resp.contains(r#""ok":false"#), "{bad} -> {resp}");
        }
        let after = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        assert_eq!(before, after, "errors must not perturb the warm session");
        assert_eq!(s.counters().errors, 5);
    }

    #[test]
    fn shutdown_stops_the_loop() {
        let mut s = session();
        let (resp, action) = s.handle_line(r#"{"id":9,"kind":"shutdown"}"#);
        assert_eq!(action, Action::Shutdown);
        assert!(resp.unwrap().contains(r#""kind":"shutdown""#));
    }

    #[test]
    fn oversized_line_is_rejected_structurally() {
        let mut s = session();
        s.set_max_line(64);
        let huge = format!(r#"{{"id":1,"kind":"report","pad":"{}"}}"#, "x".repeat(256));
        let (resp, action) = s.handle_line(&huge);
        assert_eq!(action, Action::Continue);
        assert!(resp.unwrap().contains("exceeds 64 bytes"));
    }

    #[test]
    fn repeated_queries_replay_from_the_response_cache() {
        let mut s = session();
        s.warm().unwrap();
        let first = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        let again = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        assert_eq!(first, again, "replay must be byte-identical");
        assert_eq!(s.counters().cache_misses, 1);
        assert_eq!(s.counters().cache_hits, 1);
        // Same condition spelled differently (explicit zero arrivals)
        // resolves to the same key.
        let named = line(&mut s, r#"{"id":2,"kind":"report","arrivals":{"a0":0}}"#);
        assert_eq!(s.counters().cache_hits, 2);
        assert!(named.contains(r#""id":2"#), "{named}");
        // Delay and slack are cached under their own keys.
        line(&mut s, r#"{"id":3,"kind":"delay","output":"s3"}"#);
        line(&mut s, r#"{"id":4,"kind":"delay","output":"s3"}"#);
        line(
            &mut s,
            r#"{"id":5,"kind":"slack","net":"s3","required":15}"#,
        );
        line(
            &mut s,
            r#"{"id":6,"kind":"slack","net":"s3","required":15}"#,
        );
        assert_eq!(s.counters().cache_hits, 4);
        assert_eq!(s.counters().cache_misses, 3);
        let stats = line(&mut s, r#"{"id":7,"kind":"stats"}"#);
        assert!(stats.contains(r#""cache_hits":4"#), "{stats}");
        assert!(stats.contains(r#""cache_misses":3"#), "{stats}");
    }

    #[test]
    fn deadline_requests_bypass_the_response_cache() {
        let mut s = session();
        s.warm().unwrap();
        line(&mut s, r#"{"id":1,"kind":"report","deadline_ms":60000}"#);
        line(&mut s, r#"{"id":1,"kind":"report","deadline_ms":60000}"#);
        assert_eq!(s.counters().cache_hits, 0);
        assert_eq!(s.counters().cache_misses, 0);
        // A session-wide default deadline disables it too.
        s.set_default_deadline_ms(Some(60_000));
        line(&mut s, r#"{"id":2,"kind":"report"}"#);
        assert_eq!(s.counters().cache_misses, 0);
        s.set_default_deadline_ms(None);
        line(&mut s, r#"{"id":3,"kind":"report"}"#);
        assert_eq!(s.counters().cache_misses, 1);
    }

    #[test]
    fn eco_clears_the_response_cache() {
        let mut s = session();
        s.warm().unwrap();
        let before = line(&mut s, r#"{"id":1,"kind":"report"}"#);
        assert_eq!(s.counters().cache_misses, 1);
        line(
            &mut s,
            r#"{"id":2,"kind":"eco","module":"csa_block2","gate":"c_out","delay":9}"#,
        );
        // The edit invalidated every cached answer: the next report is a
        // miss and reflects the new timing.
        let after = line(&mut s, r#"{"id":3,"kind":"report"}"#);
        assert_eq!(s.counters().cache_misses, 2);
        assert_eq!(s.counters().cache_hits, 0);
        assert_ne!(
            before.replace(r#""id":1"#, r#""id":3"#),
            after,
            "stale answer replayed across an ECO"
        );
    }
}
