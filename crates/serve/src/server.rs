//! The daemon's I/O loops: newline-delimited JSON over any
//! reader/writer pair (stdin/stdout or unix-socket connections).
//!
//! **Batching.** A reader thread feeds lines into a channel; the
//! serving loop blocks on the first line, then drains whatever else has
//! already arrived — that drain is one *batch*. Within a batch,
//! contiguous runs of read-only requests (`report`/`delay`/`slack`/
//! `whatif`) are sharded across the `hfta-sched` pool: what-ifs group
//! by module (each module's oracle rides out to exactly one worker, so
//! per-module query order — and therefore every answer — is identical
//! to serial execution), while report/delay/slack queries run against
//! the session's shared [`ReadView`] from any worker. Responses are
//! written in submission order; out-of-order completion stays an
//! internal affair, which is what keeps golden transcripts byte-stable.
//!
//! **Concurrent clients.** [`serve_unix_socket`] accepts any number of
//! connections. Each connection gets a reader thread (feeding a
//! bounded, shared request queue) and a writer thread (draining that
//! connection's response channel), while the caller's thread runs the
//! dispatcher: it drains the queue in arrival order and serves each
//! drain as one batch. Because the queue preserves per-connection
//! order and batches answer in submission order, every connection sees
//! its responses in the order it sent its requests (per-connection
//! FIFO). Mutating requests (`eco`/`shutdown`) are never sharded: a
//! batch serves the reads preceding them first, so by the time the
//! mutation runs, everything that entered the queue ahead of it has
//! been answered — the write barrier.
//!
//! A client disconnect (EOF, possibly mid-line) is a clean shutdown of
//! that connection only: its complete buffered lines are answered, a
//! trailing partial line is answered with a structured error, and other
//! connections never notice. Responses to a client that vanished are
//! dropped silently.

use std::collections::VecDeque;
use std::io::{self, BufRead, Write};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};

use hfta_sched::Scheduler;
use hfta_trace::{TraceSink, Value};

use crate::json::Json;
use crate::protocol::{parse_request, Request, RequestKind, Response};
use crate::session::{kind_name, Action, ModuleOracle, PreparedWhatIf, ReadView, ServeSession};

/// Cap on one batch (and on the drain of the shared queue): bounds
/// memory under a firehose client.
const MAX_BATCH: usize = 4096;

/// Cap on the shared multi-client request queue; readers block (back
/// pressure) when it is full.
const QUEUE_CAP: usize = 1024;

/// Reads one line (up to `\n`, exclusive) without ever buffering more
/// than `max + 1` bytes: an oversized line is discarded to its newline
/// and reported as `Oversized`. `Eof` carries a final unterminated
/// fragment, if any.
enum CappedLine {
    /// A complete line (newline stripped).
    Line(String),
    /// A line longer than the cap (discarded; its length is unknown).
    Oversized,
    /// End of stream; the trailing unterminated fragment, if any.
    Eof(Option<String>),
}

fn read_capped_line(reader: &mut impl BufRead, max: usize) -> io::Result<CappedLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut dropping = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if dropping {
                return Ok(CappedLine::Oversized);
            }
            if buf.is_empty() {
                return Ok(CappedLine::Eof(None));
            }
            return Ok(CappedLine::Eof(Some(lossless_utf8(buf)?)));
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |p| p + 1);
        if !dropping {
            let line_bytes = newline.map_or(chunk.len(), |p| p);
            if buf.len() + line_bytes > max {
                dropping = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&chunk[..line_bytes]);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            if dropping {
                return Ok(CappedLine::Oversized);
            }
            return Ok(CappedLine::Line(lossless_utf8(buf)?));
        }
    }
}

fn lossless_utf8(bytes: Vec<u8>) -> io::Result<String> {
    String::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request line is not UTF-8"))
}

/// One unit a reader hands to the serving loop.
enum Feed {
    Line(String),
    Oversized,
    /// Final partial line (no trailing newline) before EOF.
    Partial(String),
}

/// Runs the serving loop over `reader`/`writer` until the client
/// disconnects or a `shutdown` request is answered. Returns the action
/// that ended the loop (`Shutdown` or, on EOF, `Continue`).
///
/// `pool` enables batched read-only sharding; `None` serves strictly
/// serially (bit-identical answers either way).
///
/// # Errors
///
/// Returns I/O errors from the transport. Protocol-level problems are
/// answered in-band and never end the loop.
pub fn serve_lines(
    session: &mut ServeSession,
    reader: impl BufRead + Send + 'static,
    mut writer: impl Write,
    pool: Option<&Scheduler>,
    trace: &TraceSink,
) -> io::Result<Action> {
    let max_line = session.max_line();
    let (tx, rx) = mpsc::channel::<io::Result<Feed>>();
    // The reader thread ends at EOF or when the receiver hangs up
    // (shutdown mid-stream); either way it needs no join handle.
    std::thread::spawn(move || {
        let mut reader = reader;
        loop {
            let item = read_capped_line(&mut reader, max_line);
            let (feed, done) = match item {
                Ok(CappedLine::Line(l)) => (Ok(Feed::Line(l)), false),
                Ok(CappedLine::Oversized) => (Ok(Feed::Oversized), false),
                Ok(CappedLine::Eof(Some(partial))) => (Ok(Feed::Partial(partial)), true),
                Ok(CappedLine::Eof(None)) => break,
                Err(e) => (Err(e), true),
            };
            if tx.send(feed).is_err() || done {
                break;
            }
        }
    });

    loop {
        // Block for the first request, then drain what else arrived:
        // one batch.
        let Ok(first) = rx.recv() else {
            return Ok(Action::Continue); // EOF: clean shutdown
        };
        let mut batch = vec![first?];
        while let Ok(more) = rx.try_recv() {
            batch.push(more?);
            if batch.len() >= MAX_BATCH {
                break;
            }
        }
        if trace.is_enabled() {
            let mut tracer = trace.tracer();
            tracer.event(
                "serve_batch",
                vec![
                    ("batch_size", Value::from(batch.len())),
                    ("queue_depth", Value::from(batch.len())),
                ],
            );
            trace.absorb(tracer);
        }
        let responses = serve_batch(session, batch, pool, trace);
        for (response, action) in responses {
            if let Some(line) = response {
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
            }
            if action == Action::Shutdown {
                writer.flush()?;
                return Ok(Action::Shutdown);
            }
        }
        writer.flush()?;
    }
}

/// Serves one batch, in submission order (exactly one output entry per
/// input feed). Contiguous runs of valid read-only requests are sharded
/// across the pool; everything else runs serially (ECO and shutdown are
/// natural barriers — they see every earlier answer's side effects,
/// later requests see theirs).
fn serve_batch(
    session: &mut ServeSession,
    batch: Vec<Feed>,
    pool: Option<&Scheduler>,
    trace: &TraceSink,
) -> Vec<(Option<String>, Action)> {
    let mut out: Vec<(Option<String>, Action)> = Vec::with_capacity(batch.len());
    let mut i = 0;
    while i < batch.len() {
        // Gather a contiguous run of parallelizable read-only lines.
        if let Some(pool) = pool {
            // report/delay/slack shard only through the shared read
            // view, which exists exactly when the session is fully
            // warm; a cold/degraded session shards what-ifs only.
            let view = session.read_view();
            let mut run: Vec<Request> = Vec::new();
            let mut j = i;
            while j < batch.len() {
                let Feed::Line(line) = &batch[j] else { break };
                if line.len() > session.max_line() {
                    break;
                }
                let Ok(req) = parse_request(line.trim()) else {
                    break;
                };
                let shardable = match req.kind {
                    RequestKind::WhatIf { .. } => true,
                    RequestKind::Report { .. }
                    | RequestKind::Delay { .. }
                    | RequestKind::Slack { .. } => view.is_some(),
                    _ => false,
                };
                if !shardable {
                    break;
                }
                run.push(req);
                j += 1;
            }
            if run.len() > 1 {
                out.extend(serve_read_run(session, run, view, pool, trace));
                i = j;
                continue;
            }
        }
        match &batch[i] {
            Feed::Line(line) => out.push(session.handle_line(line)),
            Feed::Oversized => {
                let response = session.booked_error(
                    &Json::Null,
                    format!("request line exceeds {} bytes", session.max_line()),
                );
                out.push((Some(response.encode()), Action::Continue));
            }
            Feed::Partial(line) => {
                // A truncated final line: answer it (usually a JSON
                // error) and let the EOF that follows end the loop.
                out.push(session.handle_line(line));
            }
        }
        i += 1;
    }
    out
}

/// Shards a run of read-only requests across the pool. What-ifs group
/// by module (the module's oracle checks out to exactly one task, which
/// runs that module's queries in request order); report/delay/slack
/// queries each become a task over the shared read view. Answers are
/// bit-identical to serial execution: per-module oracle order is
/// preserved, and the view path *is* the serial path for a warm
/// session.
fn serve_read_run(
    session: &mut ServeSession,
    run: Vec<Request>,
    view: Option<Arc<ReadView>>,
    pool: &Scheduler,
    trace: &TraceSink,
) -> Vec<(Option<String>, Action)> {
    enum Work {
        WhatIf {
            module: String,
            oracle: Box<ModuleOracle>,
            queries: Vec<(usize, PreparedWhatIf)>, // (slot, query)
        },
        Read {
            view: Arc<ReadView>,
            slot: usize,
            request: Request,
        },
    }
    struct Task {
        work: Work,
        tracer: hfta_trace::Tracer,
    }
    enum Done {
        WhatIf {
            module: String,
            oracle: Box<ModuleOracle>,
            answers: Vec<(usize, Response)>,
        },
        Read {
            slot: usize,
            response: Response,
        },
    }
    // Prepare every query on this thread (needs the design); failures
    // answer in place without joining the fan-out.
    let mut slots: Vec<Option<Response>> = Vec::new();
    slots.resize_with(run.len(), || None);
    let mut tasks: Vec<Task> = Vec::new();
    for (slot, req) in run.iter().enumerate() {
        match &req.kind {
            RequestKind::WhatIf {
                module,
                output,
                arrivals,
            } => match session.prepare_whatif(req, module, output, arrivals) {
                Ok(prepared) => {
                    let existing = tasks.iter_mut().find_map(|t| match &mut t.work {
                        Work::WhatIf {
                            module: m, queries, ..
                        } if m == module => Some(queries),
                        _ => None,
                    });
                    if let Some(queries) = existing {
                        queries.push((slot, prepared));
                        continue;
                    }
                    match session.checkout_oracle(module) {
                        Ok(oracle) => {
                            let tracer = trace.tracer().fork(tasks.len() as u32 + 1);
                            tasks.push(Task {
                                work: Work::WhatIf {
                                    module: module.clone(),
                                    oracle: Box::new(oracle),
                                    queries: vec![(slot, prepared)],
                                },
                                tracer,
                            });
                        }
                        Err(message) => {
                            session.book(false, false);
                            slots[slot] = Some(Response::error(&req.id, message));
                        }
                    }
                }
                Err(message) => {
                    session.book(false, false);
                    slots[slot] = Some(Response::error(&req.id, message));
                }
            },
            RequestKind::Report { .. } | RequestKind::Delay { .. } | RequestKind::Slack { .. } => {
                let view = Arc::clone(view.as_ref().expect("gatherer required a view"));
                let tracer = trace.tracer().fork(tasks.len() as u32 + 1);
                tasks.push(Task {
                    work: Work::Read {
                        view,
                        slot,
                        request: req.clone(),
                    },
                    tracer,
                });
            }
            _ => unreachable!("run only holds read-only requests"),
        }
    }
    /// Worker-side request span around one answer.
    fn traced(
        tracer: &mut hfta_trace::Tracer,
        kind: &'static str,
        f: impl FnOnce() -> Response,
    ) -> Response {
        let span = tracer.is_enabled().then(|| tracer.begin("serve_request"));
        let response = f();
        if let Some(span) = span {
            tracer.end_with(
                span,
                vec![
                    ("kind", Value::from(kind)),
                    ("ok", Value::from(response.is_ok())),
                ],
            );
        }
        response
    }
    let results = pool.run(tasks, |mut task: Task| {
        let done = match task.work {
            Work::WhatIf {
                module,
                mut oracle,
                queries,
            } => {
                let answers: Vec<(usize, Response)> = queries
                    .iter()
                    .map(|(slot, q)| {
                        let response = traced(&mut task.tracer, "whatif", || q.run(&mut oracle));
                        (*slot, response)
                    })
                    .collect();
                Done::WhatIf {
                    module,
                    oracle,
                    answers,
                }
            }
            Work::Read {
                view,
                slot,
                request,
            } => {
                let response = traced(&mut task.tracer, kind_name(&request.kind), || {
                    view.respond(&request)
                });
                Done::Read { slot, response }
            }
        };
        (done, task.tracer)
    });
    for (done, tracer) in results {
        trace.absorb(tracer);
        match done {
            Done::WhatIf {
                module,
                oracle,
                answers,
            } => {
                session.checkin_oracle(module, *oracle);
                for (slot, response) in answers {
                    session.book(response.is_ok(), true);
                    slots[slot] = Some(response);
                }
            }
            Done::Read { slot, response } => {
                session.book(response.is_ok(), false);
                slots[slot] = Some(response);
            }
        }
    }
    slots
        .into_iter()
        .map(|response| {
            (
                Some(response.expect("every slot answered").encode()),
                Action::Continue,
            )
        })
        .collect()
}

/// One queued request from one connection: its payload plus the
/// channel its response must go back on.
#[cfg(unix)]
struct Envelope {
    payload: Feed,
    reply: mpsc::Sender<String>,
}

/// The bounded multi-client request queue: connection readers push,
/// the dispatcher drains. FIFO overall, which (with one reader per
/// connection) preserves per-connection order.
#[cfg(unix)]
struct SharedQueue {
    state: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    counters: Arc<crate::session::ConnCounters>,
}

#[cfg(unix)]
struct QueueInner {
    items: VecDeque<Envelope>,
    closed: bool,
}

#[cfg(unix)]
impl SharedQueue {
    fn new(counters: Arc<crate::session::ConnCounters>) -> SharedQueue {
        SharedQueue {
            state: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            counters,
        }
    }

    /// Enqueues one request, blocking while the queue is full (back
    /// pressure on that connection's reader). Returns `false` once the
    /// queue is closed (daemon shutting down).
    fn push(&self, env: Envelope) -> bool {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if st.closed {
                return false;
            }
            if st.items.len() < QUEUE_CAP {
                break;
            }
            st = self.not_full.wait(st).expect("queue poisoned");
        }
        st.items.push_back(env);
        self.counters.note_queue_depth(st.items.len() as u64);
        drop(st);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues, blocking until an item arrives or the queue closes
    /// (`None`).
    fn pop_wait(&self) -> Option<Envelope> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(env) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(env);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue poisoned");
        }
    }

    /// Non-blocking dequeue (batch draining).
    fn try_pop(&self) -> Option<Envelope> {
        let mut st = self.state.lock().expect("queue poisoned");
        let env = st.items.pop_front();
        drop(st);
        if env.is_some() {
            self.not_full.notify_one();
        }
        env
    }

    /// Closes the queue: wakes every blocked reader (push fails) and
    /// the dispatcher (pop returns `None`), and drops any unanswered
    /// envelopes so writer threads can drain and exit.
    fn close(&self) {
        let mut st = self.state.lock().expect("queue poisoned");
        st.closed = true;
        st.items.clear();
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Serves concurrent connections on a unix socket until a `shutdown`
/// request is answered. Each connection gets a reader thread (feeding
/// the shared bounded queue) and a writer thread (draining its response
/// channel); this thread runs the dispatcher. Per-connection response
/// order always matches that connection's request order, and mutating
/// requests run behind a write barrier (every request queued ahead of
/// them is answered first). The socket file is removed first (stale
/// sockets from a previous run) and on clean exit.
///
/// # Errors
///
/// Returns bind/setup errors. Per-connection transport errors only end
/// that connection.
#[cfg(unix)]
pub fn serve_unix_socket(
    session: &mut ServeSession,
    path: &std::path::Path,
    pool: Option<&Scheduler>,
    trace: &TraceSink,
) -> io::Result<()> {
    use std::sync::atomic::AtomicBool;

    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    let counters = session.conn_counters();
    let queue = Arc::new(SharedQueue::new(Arc::clone(&counters)));
    let stop = Arc::new(AtomicBool::new(false));
    let max_line = session.max_line();
    let accept = {
        let queue = Arc::clone(&queue);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(&listener, &queue, &stop, &counters, max_line))
    };
    dispatch_loop(session, &queue, pool, trace);
    stop.store(true, Ordering::SeqCst);
    queue.close();
    accept.join().expect("accept thread panicked");
    let _ = std::fs::remove_file(path);
    Ok(())
}

/// Accepts connections until `stop`, spawning a reader/writer pair per
/// connection; on the way out, shuts every live stream down (unblocking
/// its reader) and joins all connection threads.
#[cfg(unix)]
fn accept_loop(
    listener: &std::os::unix::net::UnixListener,
    queue: &Arc<SharedQueue>,
    stop: &std::sync::atomic::AtomicBool,
    counters: &Arc<crate::session::ConnCounters>,
    max_line: usize,
) {
    use std::time::Duration;

    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut streams: Vec<std::os::unix::net::UnixStream> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // The accepted stream must block (only the listener
                // polls); keep a handle to force readers off `recv` at
                // shutdown.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let Ok(handle) = stream.try_clone() else {
                    continue;
                };
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                counters.active.fetch_add(1, Ordering::Relaxed);
                streams.push(handle);
                let queue = Arc::clone(queue);
                let counters = Arc::clone(counters);
                conns.push(std::thread::spawn(move || {
                    connection_loop(stream, &queue, &counters, max_line);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for s in &streams {
        let _ = s.shutdown(std::net::Shutdown::Both);
    }
    for h in conns {
        let _ = h.join();
    }
}

/// One connection: reads capped lines into the shared queue and writes
/// responses back in order. The writer thread exits once the reader is
/// done *and* every queued envelope's response has been delivered (or
/// dropped by queue close).
#[cfg(unix)]
fn connection_loop(
    stream: std::os::unix::net::UnixStream,
    queue: &SharedQueue,
    counters: &crate::session::ConnCounters,
    max_line: usize,
) {
    let (tx, rx) = mpsc::channel::<String>();
    let writer = stream.try_clone().map(|write_half| {
        std::thread::spawn(move || {
            let mut w = io::BufWriter::new(write_half);
            while let Ok(line) = rx.recv() {
                let sent = w
                    .write_all(line.as_bytes())
                    .and_then(|()| w.write_all(b"\n"))
                    .and_then(|()| w.flush());
                if sent.is_err() {
                    break; // client gone: drain remaining sends as no-ops
                }
            }
        })
    });
    if writer.is_ok() {
        let mut reader = io::BufReader::new(stream);
        loop {
            let feed = match read_capped_line(&mut reader, max_line) {
                Ok(CappedLine::Line(l)) => Feed::Line(l),
                Ok(CappedLine::Oversized) => Feed::Oversized,
                Ok(CappedLine::Eof(Some(partial))) => {
                    let _ = queue.push(Envelope {
                        payload: Feed::Partial(partial),
                        reply: tx.clone(),
                    });
                    break;
                }
                Ok(CappedLine::Eof(None)) | Err(_) => break,
            };
            let queued = queue.push(Envelope {
                payload: feed,
                reply: tx.clone(),
            });
            if !queued {
                break; // daemon shutting down
            }
        }
    }
    drop(tx);
    if let Ok(writer) = writer {
        let _ = writer.join();
    }
    counters.active.fetch_sub(1, Ordering::Relaxed);
}

/// The dispatcher: drains the shared queue in arrival order, serves
/// each drain as one batch (sharded like the single-client loop), and
/// routes every response to its connection's writer. Returns after
/// answering a `shutdown` request.
#[cfg(unix)]
fn dispatch_loop(
    session: &mut ServeSession,
    queue: &SharedQueue,
    pool: Option<&Scheduler>,
    trace: &TraceSink,
) {
    let counters = session.conn_counters();
    loop {
        let Some(first) = queue.pop_wait() else {
            return; // queue closed externally
        };
        let mut batch: Vec<Envelope> = vec![first];
        while batch.len() < MAX_BATCH {
            match queue.try_pop() {
                Some(env) => batch.push(env),
                None => break,
            }
        }
        if trace.is_enabled() {
            let mut tracer = trace.tracer();
            tracer.event(
                "serve_batch",
                vec![
                    ("batch_size", Value::from(batch.len())),
                    ("queue_depth", Value::from(batch.len())),
                ],
            );
            trace.absorb(tracer);
        }
        // Write-barrier accounting: a mutating request that entered
        // the queue behind other requests waits for them to be served
        // first (serve_batch answers in submission order).
        for (i, env) in batch.iter().enumerate() {
            if i == 0 {
                continue;
            }
            if let Feed::Line(line) = &env.payload {
                if let Ok(req) = parse_request(line.trim()) {
                    if !req.is_read_only() {
                        counters.barrier_waits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        let (feeds, replies): (Vec<Feed>, Vec<mpsc::Sender<String>>) = batch
            .into_iter()
            .map(|env| (env.payload, env.reply))
            .unzip();
        let responses = serve_batch(session, feeds, pool, trace);
        debug_assert_eq!(responses.len(), replies.len());
        for (reply, (response, action)) in replies.iter().zip(responses) {
            if let Some(line) = response {
                // A vanished client must not poison the daemon: its
                // writer hung up, the response is simply dropped.
                let _ = reply.send(line);
            }
            if action == Action::Shutdown {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_fta::AnalysisConfig;
    use hfta_netlist::gen::{carry_skip_adder, CsaDelays};

    fn session() -> ServeSession {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        ServeSession::new(design, "csa4.2", &AnalysisConfig::default()).unwrap()
    }

    fn serve(input: &str, pool: Option<&Scheduler>) -> (Vec<String>, Action) {
        let mut s = session();
        s.warm().unwrap();
        let mut out: Vec<u8> = Vec::new();
        let reader = io::BufReader::new(io::Cursor::new(input.as_bytes().to_vec()));
        let action = serve_lines(&mut s, reader, &mut out, pool, &TraceSink::disabled()).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), action)
    }

    #[test]
    fn eof_is_clean_shutdown() {
        let (lines, action) = serve("", None);
        assert!(lines.is_empty());
        assert_eq!(action, Action::Continue);
    }

    #[test]
    fn partial_final_line_is_answered_then_eof() {
        let (lines, action) = serve(r#"{"id":1,"kind":"report"#, None);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains(r#""ok":false"#), "{lines:?}");
        assert_eq!(action, Action::Continue);
    }

    #[test]
    fn shutdown_request_ends_the_loop() {
        let input = "{\"id\":1,\"kind\":\"report\"}\n{\"id\":2,\"kind\":\"shutdown\"}\n{\"id\":3,\"kind\":\"report\"}\n";
        let (lines, action) = serve(input, None);
        assert_eq!(action, Action::Shutdown);
        // The post-shutdown request is never answered.
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[1].contains("shutdown"));
    }

    #[test]
    fn responses_preserve_submission_order_with_ids() {
        let input = "{\"id\":10,\"kind\":\"report\"}\n{\"id\":11,\"kind\":\"stats\"}\n";
        let (lines, _) = serve(input, None);
        assert!(lines[0].contains(r#""id":10"#));
        assert!(lines[1].contains(r#""id":11"#));
    }

    #[test]
    fn sharded_whatifs_match_serial() {
        let mut input = String::new();
        for (i, c_in) in [0i64, 3, 5, 7, 5, 0].iter().enumerate() {
            input.push_str(&format!(
                "{{\"id\":{i},\"kind\":\"whatif\",\"module\":\"csa_block2\",\"output\":\"c_out\",\"arrivals\":{{\"c_in\":{c_in}}}}}\n"
            ));
        }
        input.push_str("{\"id\":99,\"kind\":\"stats\"}\n");
        let (serial, _) = serve(&input, None);
        let pool = Scheduler::new(3);
        let (sharded, _) = serve(&input, Some(&pool));
        assert_eq!(serial, sharded, "sharding must be invisible in answers");
        assert!(serial.last().unwrap().contains(r#""whatif_queries":6"#));
    }

    #[test]
    fn sharded_mixed_reads_match_serial() {
        // A run mixing every shardable kind: report, delay, slack and
        // what-if, with repeats so the shared response cache is hit
        // from worker threads too.
        let mut input = String::new();
        for i in 0..3 {
            input.push_str(&format!("{{\"id\":{}, \"kind\":\"report\"}}\n", i * 10));
            input.push_str(&format!(
                "{{\"id\":{},\"kind\":\"delay\",\"output\":\"s3\"}}\n",
                i * 10 + 1
            ));
            input.push_str(&format!(
                "{{\"id\":{},\"kind\":\"slack\",\"net\":\"c4\",\"required\":12}}\n",
                i * 10 + 2
            ));
            input.push_str(&format!(
                "{{\"id\":{},\"kind\":\"whatif\",\"module\":\"csa_block2\",\"output\":\"c_out\",\"arrivals\":{{\"c_in\":{}}}}}\n",
                i * 10 + 3,
                i
            ));
        }
        let (serial, _) = serve(&input, None);
        let pool = Scheduler::new(4);
        let (sharded, _) = serve(&input, Some(&pool));
        assert_eq!(serial, sharded, "read sharding must be invisible");
        assert_eq!(serial.len(), 12);
    }

    #[test]
    fn oversized_line_is_skipped_without_buffering() {
        let mut s = session();
        s.set_max_line(128);
        let huge = format!(
            "{{\"id\":1,\"kind\":\"report\",\"pad\":\"{}\"}}\n{{\"id\":2,\"kind\":\"stats\"}}\n",
            "x".repeat(1 << 16)
        );
        let mut out: Vec<u8> = Vec::new();
        let reader = io::BufReader::new(io::Cursor::new(huge.into_bytes()));
        serve_lines(&mut s, reader, &mut out, None, &TraceSink::disabled()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("exceeds 128 bytes"), "{lines:?}");
        assert!(
            lines[1].contains(r#""id":2"#),
            "good query after bad: {lines:?}"
        );
    }
}
