//! The daemon's I/O loop: newline-delimited JSON over any
//! reader/writer pair (stdin/stdout or a unix-socket connection).
//!
//! A reader thread feeds lines into a channel; the serving loop blocks
//! on the first line, then drains whatever else has already arrived —
//! that drain is one *batch*. Within a batch, contiguous runs of
//! what-if queries are grouped by module and sharded across the
//! `hfta-sched` pool (each module's oracle rides out to exactly one
//! worker, so per-module query order — and therefore every answer — is
//! identical to serial execution). Responses are written in submission
//! order; out-of-order completion stays an internal affair, which is
//! what keeps golden transcripts byte-stable.
//!
//! A client disconnect (EOF, possibly mid-line) is a clean shutdown:
//! any complete buffered lines are answered, a trailing partial line is
//! answered with a structured error, and the loop returns.

use std::io::{self, BufRead, Write};
use std::sync::mpsc;

use hfta_sched::Scheduler;
use hfta_trace::{TraceSink, Value};

use crate::json::Json;
use crate::protocol::{error_response, parse_request, Request, RequestKind};
use crate::session::{Action, ServeSession};

/// Reads one line (up to `\n`, exclusive) without ever buffering more
/// than `max + 1` bytes: an oversized line is discarded to its newline
/// and reported as `Oversized`. `Eof` carries a final unterminated
/// fragment, if any.
enum CappedLine {
    /// A complete line (newline stripped).
    Line(String),
    /// A line longer than the cap (discarded; its length is unknown).
    Oversized,
    /// End of stream; the trailing unterminated fragment, if any.
    Eof(Option<String>),
}

fn read_capped_line(reader: &mut impl BufRead, max: usize) -> io::Result<CappedLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut dropping = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            if dropping {
                return Ok(CappedLine::Oversized);
            }
            if buf.is_empty() {
                return Ok(CappedLine::Eof(None));
            }
            return Ok(CappedLine::Eof(Some(lossless_utf8(buf)?)));
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |p| p + 1);
        if !dropping {
            let line_bytes = newline.map_or(chunk.len(), |p| p);
            if buf.len() + line_bytes > max {
                dropping = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&chunk[..line_bytes]);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            if dropping {
                return Ok(CappedLine::Oversized);
            }
            return Ok(CappedLine::Line(lossless_utf8(buf)?));
        }
    }
}

fn lossless_utf8(bytes: Vec<u8>) -> io::Result<String> {
    String::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request line is not UTF-8"))
}

/// One unit the reader thread hands to the serving loop.
enum Feed {
    Line(String),
    Oversized,
    /// Final partial line (no trailing newline) before EOF.
    Partial(String),
}

/// Runs the serving loop over `reader`/`writer` until the client
/// disconnects or a `shutdown` request is answered. Returns the action
/// that ended the loop (`Shutdown` or, on EOF, `Continue`).
///
/// `pool` enables batched what-if sharding; `None` serves strictly
/// serially (bit-identical answers either way).
///
/// # Errors
///
/// Returns I/O errors from the transport. Protocol-level problems are
/// answered in-band and never end the loop.
pub fn serve_lines(
    session: &mut ServeSession,
    reader: impl BufRead + Send + 'static,
    mut writer: impl Write,
    pool: Option<&Scheduler>,
    trace: &TraceSink,
) -> io::Result<Action> {
    let max_line = session.max_line();
    let (tx, rx) = mpsc::channel::<io::Result<Feed>>();
    // The reader thread ends at EOF or when the receiver hangs up
    // (shutdown mid-stream); either way it needs no join handle.
    std::thread::spawn(move || {
        let mut reader = reader;
        loop {
            let item = read_capped_line(&mut reader, max_line);
            let (feed, done) = match item {
                Ok(CappedLine::Line(l)) => (Ok(Feed::Line(l)), false),
                Ok(CappedLine::Oversized) => (Ok(Feed::Oversized), false),
                Ok(CappedLine::Eof(Some(partial))) => (Ok(Feed::Partial(partial)), true),
                Ok(CappedLine::Eof(None)) => break,
                Err(e) => (Err(e), true),
            };
            if tx.send(feed).is_err() || done {
                break;
            }
        }
    });

    loop {
        // Block for the first request, then drain what else arrived:
        // one batch.
        let Ok(first) = rx.recv() else {
            return Ok(Action::Continue); // EOF: clean shutdown
        };
        let mut batch = vec![first?];
        while let Ok(more) = rx.try_recv() {
            batch.push(more?);
            if batch.len() >= 4096 {
                break; // bound memory under a firehose client
            }
        }
        if trace.is_enabled() {
            let mut tracer = trace.tracer();
            tracer.event(
                "serve_batch",
                vec![
                    ("batch_size", Value::from(batch.len())),
                    ("queue_depth", Value::from(batch.len())),
                ],
            );
            trace.absorb(tracer);
        }
        let responses = serve_batch(session, batch, pool, trace);
        for (response, action) in responses {
            if let Some(line) = response {
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
            }
            if action == Action::Shutdown {
                writer.flush()?;
                return Ok(Action::Shutdown);
            }
        }
        writer.flush()?;
    }
}

/// Serves one batch, in submission order. Contiguous runs of valid
/// what-if requests are sharded across the pool; everything else runs
/// serially (ECO and shutdown are natural barriers — they see every
/// earlier answer's side effects, later requests see theirs).
fn serve_batch(
    session: &mut ServeSession,
    batch: Vec<Feed>,
    pool: Option<&Scheduler>,
    trace: &TraceSink,
) -> Vec<(Option<String>, Action)> {
    let mut out: Vec<(Option<String>, Action)> = Vec::with_capacity(batch.len());
    let mut i = 0;
    while i < batch.len() {
        // Gather a contiguous run of parallelizable what-if lines.
        if let Some(pool) = pool {
            let mut run: Vec<Request> = Vec::new();
            let mut j = i;
            while j < batch.len() {
                let Feed::Line(line) = &batch[j] else { break };
                if line.len() > session.max_line() {
                    break;
                }
                let Ok(req) = parse_request(line.trim()) else {
                    break;
                };
                if !matches!(req.kind, RequestKind::WhatIf { .. }) {
                    break;
                }
                run.push(req);
                j += 1;
            }
            if run.len() > 1 {
                out.extend(serve_whatif_run(session, run, pool, trace));
                i = j;
                continue;
            }
        }
        match &batch[i] {
            Feed::Line(line) => out.push(session.handle_line(line)),
            Feed::Oversized => out.push((
                Some(error_response(
                    &Json::Null,
                    &format!("request line exceeds {} bytes", session.max_line()),
                )),
                Action::Continue,
            )),
            Feed::Partial(line) => {
                // A truncated final line: answer it (usually a JSON
                // error) and let the EOF that follows end the loop.
                out.push(session.handle_line(line));
            }
        }
        i += 1;
    }
    out
}

/// Shards a run of what-if requests across the pool: group by module,
/// check each module's oracle out to exactly one task, run the module's
/// queries in request order on a worker, check the oracles back in.
/// Answers are bit-identical to serial execution (per-module order is
/// preserved; modules are independent).
fn serve_whatif_run(
    session: &mut ServeSession,
    run: Vec<Request>,
    pool: &Scheduler,
    trace: &TraceSink,
) -> Vec<(Option<String>, Action)> {
    // Prepare every query on this thread (needs the design); failures
    // answer in place without joining the fan-out.
    struct Task {
        module: String,
        oracle: crate::session::ModuleOracle,
        queries: Vec<(usize, crate::session::PreparedWhatIf)>, // (slot, query)
        tracer: hfta_trace::Tracer,
    }
    let mut slots: Vec<Option<String>> = vec![None; run.len()];
    let mut tasks: Vec<Task> = Vec::new();
    for (slot, req) in run.iter().enumerate() {
        let RequestKind::WhatIf {
            module,
            output,
            arrivals,
        } = &req.kind
        else {
            unreachable!("run only holds what-if requests");
        };
        match session.prepare_whatif(req, module, output, arrivals) {
            Ok(prepared) => {
                if let Some(task) = tasks.iter_mut().find(|t| t.module == *module) {
                    task.queries.push((slot, prepared));
                    continue;
                }
                match session.checkout_oracle(module) {
                    Ok(oracle) => tasks.push(Task {
                        module: module.clone(),
                        oracle,
                        queries: vec![(slot, prepared)],
                        tracer: trace.tracer().fork(tasks.len() as u32 + 1),
                    }),
                    Err(message) => {
                        session.book_error();
                        slots[slot] = Some(error_response(&req.id, &message));
                    }
                }
            }
            Err(message) => {
                session.book_error();
                slots[slot] = Some(error_response(&req.id, &message));
            }
        }
    }
    let results = pool.run(tasks, |mut task: Task| {
        let answers: Vec<(usize, String)> = task
            .queries
            .iter()
            .map(|(slot, q)| {
                let span = task
                    .tracer
                    .is_enabled()
                    .then(|| task.tracer.begin("serve_request"));
                let line = q.run(&mut task.oracle);
                if let Some(span) = span {
                    task.tracer.end_with(
                        span,
                        vec![("kind", Value::from("whatif")), ("ok", Value::from(true))],
                    );
                }
                (*slot, line)
            })
            .collect();
        (task.module, task.oracle, answers, task.tracer)
    });
    for (module, oracle, answers, tracer) in results {
        session.checkin_oracle(module, oracle);
        trace.absorb(tracer);
        for (slot, line) in answers {
            session.book_whatif();
            slots[slot] = Some(line);
        }
    }
    slots
        .into_iter()
        .map(|response| (response, Action::Continue))
        .collect()
}

/// Serves connections on a unix socket, one at a time, until a
/// `shutdown` request arrives. The socket file is removed first (stale
/// sockets from a previous run) and on clean exit.
///
/// # Errors
///
/// Returns bind/accept/transport errors.
#[cfg(unix)]
pub fn serve_unix_socket(
    session: &mut ServeSession,
    path: &std::path::Path,
    pool: Option<&Scheduler>,
    trace: &TraceSink,
) -> io::Result<()> {
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    loop {
        let (stream, _) = listener.accept()?;
        let reader = io::BufReader::new(stream.try_clone()?);
        let action = serve_lines(session, reader, &stream, pool, trace)?;
        if action == Action::Shutdown {
            let _ = std::fs::remove_file(path);
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_fta::AnalysisConfig;
    use hfta_netlist::gen::{carry_skip_adder, CsaDelays};

    fn session() -> ServeSession {
        let design = carry_skip_adder(4, 2, CsaDelays::default());
        ServeSession::new(design, "csa4.2", &AnalysisConfig::default()).unwrap()
    }

    fn serve(input: &str, pool: Option<&Scheduler>) -> (Vec<String>, Action) {
        let mut s = session();
        s.warm().unwrap();
        let mut out: Vec<u8> = Vec::new();
        let reader = io::BufReader::new(io::Cursor::new(input.as_bytes().to_vec()));
        let action = serve_lines(&mut s, reader, &mut out, pool, &TraceSink::disabled()).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), action)
    }

    #[test]
    fn eof_is_clean_shutdown() {
        let (lines, action) = serve("", None);
        assert!(lines.is_empty());
        assert_eq!(action, Action::Continue);
    }

    #[test]
    fn partial_final_line_is_answered_then_eof() {
        let (lines, action) = serve(r#"{"id":1,"kind":"report"#, None);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains(r#""ok":false"#), "{lines:?}");
        assert_eq!(action, Action::Continue);
    }

    #[test]
    fn shutdown_request_ends_the_loop() {
        let input = "{\"id\":1,\"kind\":\"report\"}\n{\"id\":2,\"kind\":\"shutdown\"}\n{\"id\":3,\"kind\":\"report\"}\n";
        let (lines, action) = serve(input, None);
        assert_eq!(action, Action::Shutdown);
        // The post-shutdown request is never answered.
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[1].contains("shutdown"));
    }

    #[test]
    fn responses_preserve_submission_order_with_ids() {
        let input = "{\"id\":10,\"kind\":\"report\"}\n{\"id\":11,\"kind\":\"stats\"}\n";
        let (lines, _) = serve(input, None);
        assert!(lines[0].contains(r#""id":10"#));
        assert!(lines[1].contains(r#""id":11"#));
    }

    #[test]
    fn sharded_whatifs_match_serial() {
        let mut input = String::new();
        for (i, c_in) in [0i64, 3, 5, 7, 5, 0].iter().enumerate() {
            input.push_str(&format!(
                "{{\"id\":{i},\"kind\":\"whatif\",\"module\":\"csa_block2\",\"output\":\"c_out\",\"arrivals\":{{\"c_in\":{c_in}}}}}\n"
            ));
        }
        input.push_str("{\"id\":99,\"kind\":\"stats\"}\n");
        let (serial, _) = serve(&input, None);
        let pool = Scheduler::new(3);
        let (sharded, _) = serve(&input, Some(&pool));
        assert_eq!(serial, sharded, "sharding must be invisible in answers");
        assert!(serial.last().unwrap().contains(r#""whatif_queries":6"#));
    }

    #[test]
    fn oversized_line_is_skipped_without_buffering() {
        let mut s = session();
        s.set_max_line(128);
        let huge = format!(
            "{{\"id\":1,\"kind\":\"report\",\"pad\":\"{}\"}}\n{{\"id\":2,\"kind\":\"stats\"}}\n",
            "x".repeat(1 << 16)
        );
        let mut out: Vec<u8> = Vec::new();
        let reader = io::BufReader::new(io::Cursor::new(huge.into_bytes()));
        serve_lines(&mut s, reader, &mut out, None, &TraceSink::disabled()).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("exceeds 128 bytes"), "{lines:?}");
        assert!(
            lines[1].contains(r#""id":2"#),
            "good query after bad: {lines:?}"
        );
    }
}
