//! `hfta serve`: a warm, batched timing-query daemon.
//!
//! The paper's hierarchical flow exists so a design is characterized
//! *once* and then queried *many times* by many consumers. Every
//! ingredient of that contract already lives in the workspace — the
//! incremental session with its content-hash model cache
//! (`hfta-core`), persistent stability oracles (`hfta-fta`), the
//! work-stealing pool (`hfta-sched`), budgets/deadlines, structured
//! tracing and the on-disk model database — but nothing kept them warm
//! across requests. This crate is that missing long-lived process:
//!
//! * [`ServeSession`] owns one [`IncrementalAnalyzer`] plus one
//!   persistent [`StabilityOracle`] per what-if-queried module, and
//!   answers [`protocol`] requests (report, delay, slack, what-if,
//!   ECO, stats, shutdown) as deterministic single-line JSON;
//! * [`serve_lines`] is the transport loop: newline-delimited JSON
//!   over any reader/writer pair, with reader-thread batching and
//!   pool-sharded read-only runs; [`serve_unix_socket`] lifts the same
//!   loop onto a unix socket and accepts any number of concurrent
//!   clients, multiplexed through a bounded queue with per-connection
//!   FIFO responses and an ECO/shutdown write barrier;
//! * [`json`] is the crate's hand-rolled (workspace-hermetic) JSON
//!   codec — integer-only numbers, capped nesting, byte-stable output.
//!   It is transport-only: the session's native API is the typed
//!   [`protocol::Request`] → [`protocol::Response`] pair served by
//!   [`ServeSession::dispatch`].
//!
//! Soundness stance: every answer is bit-identical to what a fresh
//! analysis of the current design would produce, unless the response
//! says `"degraded":true` — which only happens under an explicit
//! per-request deadline/budget and is then a sound (topological) upper
//! bound. Malformed input gets a structured error and mutates nothing.
//!
//! [`IncrementalAnalyzer`]: hfta_core::IncrementalAnalyzer
//! [`StabilityOracle`]: hfta_fta::StabilityOracle

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod protocol;
mod server;
mod session;

pub use server::{serve_lines, serve_unix_socket};
pub use session::{Action, ServeCounters, ServeSession, DEFAULT_MAX_LINE};

// The typed request/response vocabulary at the top level, so embedders
// can drive a session without touching the JSON transport.
pub use protocol::{parse_request, Outcome, Request, RequestKind, Response};

use hfta_netlist::{Composite, Design, Netlist};

/// Wraps a flat netlist into a depth-1 hierarchical design: one
/// composite (named after the netlist, suffixed `_top`) holding one
/// instance of the netlist as its sole leaf, ports mirrored by name.
/// This is how the daemon serves `.bench`/`.blif` inputs through the
/// hierarchy-shaped [`ServeSession`].
///
/// # Panics
///
/// Panics if the netlist fails design validation (the CLI validates on
/// load).
#[must_use]
pub fn wrap_flat(netlist: Netlist) -> (Design, String) {
    let top_name = format!("{}_top", netlist.name());
    let mut top = Composite::new(&top_name);
    let ins: Vec<_> = netlist
        .inputs()
        .iter()
        .map(|&n| top.add_input(netlist.net_name(n)))
        .collect();
    let outs: Vec<_> = netlist
        .outputs()
        .iter()
        .map(|&n| top.add_net(netlist.net_name(n)))
        .collect();
    top.add_instance("u0", netlist.name(), &ins, &outs);
    for &o in &outs {
        top.mark_output(o);
    }
    let mut design = Design::new();
    design.add_leaf(netlist).expect("flat netlist is valid");
    design.add_composite(top).expect("mirrored ports are valid");
    (design, top_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_fta::AnalysisConfig;
    use hfta_netlist::gen::{carry_skip_adder_flat, CsaDelays};
    use hfta_netlist::Time;

    /// A flat netlist served through the wrapper answers exactly like
    /// hierarchical analysis of the same one-leaf design, and stays a
    /// sound upper bound on the flat functional delay.
    #[test]
    fn wrapped_flat_report_matches_hier_analysis() {
        use hfta_core::{HierAnalyzer, HierOptions};

        let flat = carry_skip_adder_flat(4, 2, CsaDelays::default()).unwrap();
        let exact = hfta_fta::functional_circuit_delay(&flat).unwrap();
        let inputs = flat.inputs().len();
        let (design, top) = wrap_flat(flat);
        let mut hier = HierAnalyzer::new(&design, &top, HierOptions::default()).unwrap();
        let want = hier.analyze(&vec![Time::ZERO; inputs]).unwrap().delay;
        assert!(want >= exact, "Theorem 1: conservative");

        let mut session = ServeSession::new(design, &top, &AnalysisConfig::default()).unwrap();
        session.warm().unwrap();
        let (resp, _) = session.handle_line(r#"{"id":1,"kind":"report"}"#);
        let resp = resp.unwrap();
        assert!(
            resp.contains(&format!(r#""delay":{}"#, want.raw())),
            "want {want}, got {resp}"
        );
    }
}
