//! Property tests: random Boolean expressions evaluated through the
//! BDD package agree with a direct truth-table oracle, and canonical
//! handles coincide exactly for semantically equal functions.

use hfta_bdd::{Bdd, BddManager};
use proptest::prelude::*;

/// A tiny expression AST over `NVARS` variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Const(bool),
}

const NVARS: u32 = 5;

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c)| Expr::Ite(Box::new(a), Box::new(b), Box::new(c))),
        ]
    })
}

fn to_bdd(mgr: &mut BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(i) => mgr.var(*i),
        Expr::Const(b) => mgr.constant(*b),
        Expr::Not(a) => {
            let x = to_bdd(mgr, a);
            mgr.not(x)
        }
        Expr::And(a, b) => {
            let (x, y) = (to_bdd(mgr, a), to_bdd(mgr, b));
            mgr.and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (to_bdd(mgr, a), to_bdd(mgr, b));
            mgr.or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (to_bdd(mgr, a), to_bdd(mgr, b));
            mgr.xor(x, y)
        }
        Expr::Ite(a, b, c) => {
            let (x, y, z) = (to_bdd(mgr, a), to_bdd(mgr, b), to_bdd(mgr, c));
            mgr.ite(x, y, z)
        }
    }
}

fn eval_expr(e: &Expr, env: &[bool]) -> bool {
    match e {
        Expr::Var(i) => env[*i as usize],
        Expr::Const(b) => *b,
        Expr::Not(a) => !eval_expr(a, env),
        Expr::And(a, b) => eval_expr(a, env) && eval_expr(b, env),
        Expr::Or(a, b) => eval_expr(a, env) || eval_expr(b, env),
        Expr::Xor(a, b) => eval_expr(a, env) ^ eval_expr(b, env),
        Expr::Ite(a, b, c) => {
            if eval_expr(a, env) {
                eval_expr(b, env)
            } else {
                eval_expr(c, env)
            }
        }
    }
}

fn truth_table(e: &Expr) -> u32 {
    let mut table = 0u32;
    for v in 0u32..(1 << NVARS) {
        let env: Vec<bool> = (0..NVARS).map(|i| (v >> i) & 1 == 1).collect();
        if eval_expr(e, &env) {
            table |= 1 << v;
        }
    }
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_truth_table(e in expr_strategy()) {
        let mut mgr = BddManager::new();
        let f = to_bdd(&mut mgr, &e);
        for v in 0u32..(1 << NVARS) {
            let env: Vec<bool> = (0..NVARS).map(|i| (v >> i) & 1 == 1).collect();
            prop_assert_eq!(mgr.eval(f, &env), eval_expr(&e, &env), "vector {:05b}", v);
        }
        // Satisfiability / tautology agree with the table.
        let table = truth_table(&e);
        prop_assert_eq!(mgr.is_satisfiable(f), table != 0);
        prop_assert_eq!(mgr.is_tautology(f), table == u32::MAX >> (32 - (1 << NVARS)));
        prop_assert_eq!(mgr.sat_count(f, NVARS), u64::from(table.count_ones()));
    }

    #[test]
    fn canonical_handles_for_equal_functions(a in expr_strategy(), b in expr_strategy()) {
        let mut mgr = BddManager::new();
        let fa = to_bdd(&mut mgr, &a);
        let fb = to_bdd(&mut mgr, &b);
        prop_assert_eq!(fa == fb, truth_table(&a) == truth_table(&b));
    }

    #[test]
    fn shannon_expansion_holds(e in expr_strategy(), var in 0..NVARS) {
        let mut mgr = BddManager::new();
        let f = to_bdd(&mut mgr, &e);
        let f0 = mgr.restrict(f, var, false);
        let f1 = mgr.restrict(f, var, true);
        let x = mgr.var(var);
        let rebuilt = mgr.ite(x, f1, f0);
        prop_assert_eq!(rebuilt, f);
    }

    #[test]
    fn pick_sat_yields_model(e in expr_strategy()) {
        let mut mgr = BddManager::new();
        let f = to_bdd(&mut mgr, &e);
        match mgr.pick_sat(f, NVARS) {
            Some(model) => prop_assert!(mgr.eval(f, &model)),
            None => prop_assert_eq!(f, Bdd::FALSE),
        }
    }
}
