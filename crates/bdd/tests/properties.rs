//! Property tests: random Boolean expressions evaluated through the
//! BDD package agree with a direct truth-table oracle, and canonical
//! handles coincide exactly for semantically equal functions.

use hfta_bdd::{Bdd, BddManager};
use hfta_testkit::{from_fn_with_shrink, prop, Rng, Strategy};

/// A tiny expression AST over `NVARS` variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Const(bool),
}

const NVARS: u32 = 5;

fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    // Leaves only at depth 0; inner nodes pick any operator.
    let choice = if depth == 0 {
        rng.gen_range(0..2)
    } else {
        rng.gen_range(0..7)
    };
    match choice {
        0 => Expr::Var(rng.gen_range(0..NVARS)),
        1 => Expr::Const(rng.next_bool()),
        2 => Expr::Not(Box::new(gen_expr(rng, depth - 1))),
        3 => Expr::And(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        4 => Expr::Or(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        5 => Expr::Xor(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        _ => Expr::Ite(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
    }
}

/// Shrink an expression to its immediate subexpressions and to the
/// constants — a failing compound expression reduces to the smallest
/// subtree still exhibiting the failure.
fn shrink_expr(e: &Expr) -> Vec<Expr> {
    let mut out = vec![Expr::Const(false), Expr::Const(true)];
    match e {
        Expr::Var(_) | Expr::Const(_) => return Vec::new(),
        Expr::Not(a) => out.push((**a).clone()),
        Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
        }
        Expr::Ite(a, b, c) => {
            out.push((**a).clone());
            out.push((**b).clone());
            out.push((**c).clone());
        }
    }
    out
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    from_fn_with_shrink(|rng: &mut Rng| gen_expr(rng, 4), shrink_expr)
}

fn to_bdd(mgr: &mut BddManager, e: &Expr) -> Bdd {
    match e {
        Expr::Var(i) => mgr.var(*i),
        Expr::Const(b) => mgr.constant(*b),
        Expr::Not(a) => {
            let x = to_bdd(mgr, a);
            mgr.not(x)
        }
        Expr::And(a, b) => {
            let (x, y) = (to_bdd(mgr, a), to_bdd(mgr, b));
            mgr.and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (to_bdd(mgr, a), to_bdd(mgr, b));
            mgr.or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (to_bdd(mgr, a), to_bdd(mgr, b));
            mgr.xor(x, y)
        }
        Expr::Ite(a, b, c) => {
            let (x, y, z) = (to_bdd(mgr, a), to_bdd(mgr, b), to_bdd(mgr, c));
            mgr.ite(x, y, z)
        }
    }
}

fn eval_expr(e: &Expr, env: &[bool]) -> bool {
    match e {
        Expr::Var(i) => env[*i as usize],
        Expr::Const(b) => *b,
        Expr::Not(a) => !eval_expr(a, env),
        Expr::And(a, b) => eval_expr(a, env) && eval_expr(b, env),
        Expr::Or(a, b) => eval_expr(a, env) || eval_expr(b, env),
        Expr::Xor(a, b) => eval_expr(a, env) ^ eval_expr(b, env),
        Expr::Ite(a, b, c) => {
            if eval_expr(a, env) {
                eval_expr(b, env)
            } else {
                eval_expr(c, env)
            }
        }
    }
}

fn truth_table(e: &Expr) -> u32 {
    let mut table = 0u32;
    for v in 0u32..(1 << NVARS) {
        let env: Vec<bool> = (0..NVARS).map(|i| (v >> i) & 1 == 1).collect();
        if eval_expr(e, &env) {
            table |= 1 << v;
        }
    }
    table
}

prop!(cases = 128, fn bdd_matches_truth_table(e in expr_strategy()) {
    let mut mgr = BddManager::new();
    let f = to_bdd(&mut mgr, &e);
    for v in 0u32..(1 << NVARS) {
        let env: Vec<bool> = (0..NVARS).map(|i| (v >> i) & 1 == 1).collect();
        assert_eq!(mgr.eval(f, &env), eval_expr(&e, &env), "vector {v:05b}");
    }
    // Satisfiability / tautology agree with the table.
    let table = truth_table(&e);
    assert_eq!(mgr.is_satisfiable(f), table != 0);
    assert_eq!(mgr.is_tautology(f), table == u32::MAX >> (32 - (1 << NVARS)));
    assert_eq!(mgr.sat_count(f, NVARS), u64::from(table.count_ones()));
});

prop!(cases = 128, fn canonical_handles_for_equal_functions(
    a in expr_strategy(),
    b in expr_strategy(),
) {
    let mut mgr = BddManager::new();
    let fa = to_bdd(&mut mgr, &a);
    let fb = to_bdd(&mut mgr, &b);
    assert_eq!(fa == fb, truth_table(&a) == truth_table(&b));
});

prop!(cases = 128, fn shannon_expansion_holds(e in expr_strategy(), var in 0..NVARS) {
    let mut mgr = BddManager::new();
    let f = to_bdd(&mut mgr, &e);
    let f0 = mgr.restrict(f, var, false);
    let f1 = mgr.restrict(f, var, true);
    let x = mgr.var(var);
    let rebuilt = mgr.ite(x, f1, f0);
    assert_eq!(rebuilt, f);
});

prop!(cases = 128, fn pick_sat_yields_model(e in expr_strategy()) {
    let mut mgr = BddManager::new();
    let f = to_bdd(&mut mgr, &e);
    match mgr.pick_sat(f, NVARS) {
        Some(model) => assert!(mgr.eval(f, &model)),
        None => assert_eq!(f, Bdd::FALSE),
    }
});
