//! Reduced ordered binary decision diagrams (ROBDD).
//!
//! HFTA uses BDDs as a second, independent tautology oracle for XBD0
//! stability functions (the SAT path is the default; the BDD path
//! cross-checks it in tests and powers the exact required-time analysis
//! on small modules, where a canonical representation makes tautology
//! checking O(1)).
//!
//! The implementation is a classic hash-consed ROBDD with an ITE-based
//! operation set and memoization: [`BddManager`] owns the node store;
//! [`Bdd`] handles are cheap indices valid for the manager that created
//! them.
//!
//! # Example
//!
//! ```
//! use hfta_bdd::BddManager;
//!
//! let mut mgr = BddManager::new();
//! let a = mgr.var(0);
//! let b = mgr.var(1);
//! let ab = mgr.and(a, b);
//! let or = mgr.or(a, b);
//! let implication = mgr.implies(ab, or); // (a·b) ⇒ (a+b)
//! assert!(mgr.is_tautology(implication));
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

/// Handle to a BDD node owned by a [`BddManager`].
///
/// Handles are canonical: two handles from the same manager are equal
/// if and only if they denote the same Boolean function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-false function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(1);

    /// Returns `true` if this is one of the two constants.
    #[must_use]
    pub fn is_const(self) -> bool {
        self.0 < 2
    }
}

impl fmt::Display for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => write!(f, "false"),
            Bdd::TRUE => write!(f, "true"),
            Bdd(i) => write!(f, "bdd#{i}"),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct IteKey(Bdd, Bdd, Bdd);

/// The BDD node store and operation cache.
///
/// Variables are identified by dense `u32` indices whose numeric order
/// is the (fixed) variable order of the diagrams.
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    ite_cache: HashMap<IteKey, Bdd>,
}

impl Default for BddManager {
    /// Equivalent to [`BddManager::new`].
    fn default() -> BddManager {
        BddManager::new()
    }
}

impl BddManager {
    /// Creates a manager containing only the two constants.
    #[must_use]
    pub fn new() -> BddManager {
        let sentinel = Node {
            var: u32::MAX,
            lo: Bdd::FALSE,
            hi: Bdd::FALSE,
        };
        BddManager {
            // Two sentinel slots so node indices line up with handles.
            nodes: vec![sentinel, sentinel],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
        }
    }

    /// Number of live nodes (including the two constants).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The projection function of variable `index`.
    pub fn var(&mut self, index: u32) -> Bdd {
        self.mk_node(index, Bdd::FALSE, Bdd::TRUE)
    }

    /// The negated projection function of variable `index`.
    pub fn nvar(&mut self, index: u32) -> Bdd {
        self.mk_node(index, Bdd::TRUE, Bdd::FALSE)
    }

    /// A constant as a handle.
    #[must_use]
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    fn mk_node(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&b) = self.unique.get(&node) {
            return b;
        }
        let handle = Bdd(u32::try_from(self.nodes.len()).expect("BDD node overflow"));
        self.nodes.push(node);
        self.unique.insert(node, handle);
        handle
    }

    fn node(&self, b: Bdd) -> Node {
        self.nodes[b.0 as usize]
    }

    fn top_var(&self, b: Bdd) -> u32 {
        if b.is_const() {
            u32::MAX
        } else {
            self.node(b).var
        }
    }

    fn cofactors(&self, b: Bdd, var: u32) -> (Bdd, Bdd) {
        if b.is_const() || self.node(b).var != var {
            (b, b)
        } else {
            let n = self.node(b);
            (n.lo, n.hi)
        }
    }

    /// If-then-else: `f·g + f̄·h`, the universal BDD operation.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        // Terminal cases.
        if f == Bdd::TRUE {
            return g;
        }
        if f == Bdd::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Bdd::TRUE && h == Bdd::FALSE {
            return f;
        }
        let key = IteKey(f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            return r;
        }
        let v = self.top_var(f).min(self.top_var(g)).min(self.top_var(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk_node(v, lo, hi);
        self.ite_cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.ite(a, b, Bdd::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.ite(a, Bdd::TRUE, b)
    }

    /// Negation.
    pub fn not(&mut self, a: Bdd) -> Bdd {
        self.ite(a, Bdd::FALSE, Bdd::TRUE)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: Bdd, b: Bdd) -> Bdd {
        let nb = self.not(b);
        self.ite(a, nb, b)
    }

    /// Exclusive nor (equivalence).
    pub fn xnor(&mut self, a: Bdd, b: Bdd) -> Bdd {
        let nb = self.not(b);
        self.ite(a, b, nb)
    }

    /// Implication `a ⇒ b`.
    pub fn implies(&mut self, a: Bdd, b: Bdd) -> Bdd {
        self.ite(a, b, Bdd::TRUE)
    }

    /// Conjunction of many functions.
    pub fn and_many(&mut self, fs: &[Bdd]) -> Bdd {
        fs.iter().fold(Bdd::TRUE, |acc, &f| self.and(acc, f))
    }

    /// Disjunction of many functions.
    pub fn or_many(&mut self, fs: &[Bdd]) -> Bdd {
        fs.iter().fold(Bdd::FALSE, |acc, &f| self.or(acc, f))
    }

    /// Restriction (cofactor): substitutes a constant for a variable.
    pub fn restrict(&mut self, f: Bdd, var: u32, value: bool) -> Bdd {
        if f.is_const() {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f; // var does not occur (ordering)
        }
        if n.var == var {
            return if value { n.hi } else { n.lo };
        }
        let lo = self.restrict(n.lo, var, value);
        let hi = self.restrict(n.hi, var, value);
        self.mk_node(n.var, lo, hi)
    }

    /// Existential quantification of `var`.
    pub fn exists(&mut self, f: Bdd, var: u32) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.or(f0, f1)
    }

    /// Universal quantification of `var`.
    pub fn forall(&mut self, f: Bdd, var: u32) -> Bdd {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.and(f0, f1)
    }

    /// Returns `true` if `f` is the constant-true function.
    ///
    /// Canonicity makes this a handle comparison — the property the
    /// exact required-time engine exploits for its many tautology
    /// queries.
    #[must_use]
    pub fn is_tautology(&self, f: Bdd) -> bool {
        f == Bdd::TRUE
    }

    /// Returns `true` if `f` is satisfiable.
    #[must_use]
    pub fn is_satisfiable(&self, f: Bdd) -> bool {
        f != Bdd::FALSE
    }

    /// Evaluates `f` under a total assignment (`assignment[i]` is the
    /// value of variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if a variable of `f` is out of `assignment`'s range.
    #[must_use]
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            match cur {
                Bdd::FALSE => return false,
                Bdd::TRUE => return true,
                _ => {
                    let n = self.node(cur);
                    cur = if assignment[n.var as usize] {
                        n.hi
                    } else {
                        n.lo
                    };
                }
            }
        }
    }

    /// The set of variables `f` depends on, ascending.
    #[must_use]
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        let mut vars = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            let n = self.node(b);
            vars.push(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Number of satisfying assignments over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `f` mentions a variable `≥ num_vars` or `num_vars > 63`.
    #[must_use]
    pub fn sat_count(&self, f: Bdd, num_vars: u32) -> u64 {
        assert!(num_vars <= 63, "sat_count supports at most 63 variables");
        fn go(mgr: &BddManager, b: Bdd, num_vars: u32, memo: &mut HashMap<Bdd, u64>) -> u64 {
            // Count over the variables strictly below top_var(b).
            match b {
                Bdd::FALSE => 0,
                Bdd::TRUE => 1,
                _ => {
                    if let Some(&c) = memo.get(&b) {
                        return c;
                    }
                    let n = mgr.node(b);
                    assert!(n.var < num_vars, "variable out of range");
                    let lo = go(mgr, n.lo, num_vars, memo);
                    let hi = go(mgr, n.hi, num_vars, memo);
                    let lo_gap = mgr.top_var(n.lo).min(num_vars) - n.var - 1;
                    let hi_gap = mgr.top_var(n.hi).min(num_vars) - n.var - 1;
                    let c = (lo << lo_gap) + (hi << hi_gap);
                    memo.insert(b, c);
                    c
                }
            }
        }
        let mut memo = HashMap::new();
        let c = go(self, f, num_vars, &mut memo);
        let gap = self.top_var(f).min(num_vars);
        c << gap
    }

    /// Finds one satisfying assignment (values for variables
    /// `0..num_vars`; variables not in the support default to `false`).
    /// Returns `None` for the constant-false function.
    #[must_use]
    pub fn pick_sat(&self, f: Bdd, num_vars: u32) -> Option<Vec<bool>> {
        if f == Bdd::FALSE {
            return None;
        }
        let mut assignment = vec![false; num_vars as usize];
        let mut cur = f;
        while cur != Bdd::TRUE {
            let n = self.node(cur);
            if n.hi != Bdd::FALSE {
                assignment[n.var as usize] = true;
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let mut m = BddManager::new();
        let a = m.var(0);
        assert_ne!(a, Bdd::TRUE);
        assert_ne!(a, Bdd::FALSE);
        assert!(!a.is_const());
        assert!(Bdd::TRUE.is_const());
        // Hash consing: same var twice is the same node.
        assert_eq!(m.var(0), a);
    }

    #[test]
    fn basic_identities() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let na = m.not(a);
        assert_eq!(m.and(a, na), Bdd::FALSE);
        assert_eq!(m.or(a, na), Bdd::TRUE);
        assert_eq!(m.and(a, Bdd::TRUE), a);
        assert_eq!(m.or(a, Bdd::FALSE), a);
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba, "canonical form is order-insensitive");
        let not_not_a = {
            let x = m.not(a);
            m.not(x)
        };
        assert_eq!(not_not_a, a);
    }

    #[test]
    fn de_morgan() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let lhs = m.not(ab);
        let na = m.not(a);
        let nb = m.not(b);
        let rhs = m.or(na, nb);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_properties() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let x = m.xor(a, b);
        assert_eq!(m.xor(x, b), a, "xor cancels");
        assert_eq!(m.xor(a, a), Bdd::FALSE);
        let xn = m.xnor(a, b);
        let nx = m.not(x);
        assert_eq!(xn, nx);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let bc = m.and(b, c);
        let f = m.or(a, bc); // a + bc
        for v in 0u32..8 {
            let assignment: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            let expect = assignment[0] || (assignment[1] && assignment[2]);
            assert_eq!(m.eval(f, &assignment), expect, "vector {v:03b}");
        }
    }

    #[test]
    fn restrict_and_quantify() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        assert_eq!(m.restrict(f, 0, false), b);
        let nb = m.not(b);
        assert_eq!(m.restrict(f, 0, true), nb);
        assert_eq!(m.exists(f, 0), Bdd::TRUE);
        assert_eq!(m.forall(f, 0), Bdd::FALSE);
        // Restricting an absent variable is identity.
        assert_eq!(m.restrict(f, 7, true), f);
    }

    #[test]
    fn support_lists_dependencies() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let c = m.var(2);
        let f = m.and(a, c);
        assert_eq!(m.support(f), vec![0, 2]);
        assert_eq!(m.support(Bdd::TRUE), Vec::<u32>::new());
    }

    #[test]
    fn sat_count_small() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.or(a, b);
        assert_eq!(m.sat_count(f, 2), 3);
        assert_eq!(m.sat_count(a, 2), 2); // b free
        assert_eq!(m.sat_count(Bdd::TRUE, 3), 8);
        assert_eq!(m.sat_count(Bdd::FALSE, 3), 0);
        let c = m.var(2);
        let g = m.and(f, c);
        assert_eq!(m.sat_count(g, 3), 3);
    }

    #[test]
    fn pick_sat_finds_model() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let na = m.not(a);
        let f = m.and(na, b);
        let model = m.pick_sat(f, 2).unwrap();
        assert!(m.eval(f, &model));
        assert_eq!(model, vec![false, true]);
        assert_eq!(m.pick_sat(Bdd::FALSE, 2), None);
    }

    #[test]
    fn majority_of_three() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let bc = m.and(b, c);
        let maj = m.or_many(&[ab, ac, bc]);
        assert_eq!(m.sat_count(maj, 3), 4);
        // Shannon expansion sanity: maj|a=1 = b + c.
        let cof = m.restrict(maj, 0, true);
        let or_bc = m.or(b, c);
        assert_eq!(cof, or_bc);
    }

    #[test]
    fn and_many_or_many() {
        let mut m = BddManager::new();
        let vs: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
        let all = m.and_many(&vs);
        assert_eq!(m.sat_count(all, 4), 1);
        let any = m.or_many(&vs);
        assert_eq!(m.sat_count(any, 4), 15);
        assert_eq!(m.and_many(&[]), Bdd::TRUE);
        assert_eq!(m.or_many(&[]), Bdd::FALSE);
    }
}
