//! A zero-dependency work-stealing task scheduler.
//!
//! The analyzers in `hfta-core` fan independent cone-level work units
//! (module characterizations, per-class refinement probes) out to
//! threads. Doing that with `std::thread::scope` re-pays thread spawn
//! and teardown on every call site — per refinement *round* in the
//! demand-driven analyzer — and a static chunk partition lets one slow
//! chunk stall the whole batch. [`Scheduler`] fixes both:
//!
//! * **Persistent workers.** `Scheduler::new(n)` spawns exactly `n` OS
//!   threads, once. Every [`Scheduler::run`] batch reuses them; the
//!   pool is dropped (and joined) when the last handle goes away.
//!   [`Scheduler::workers_spawned`] exposes the lifetime spawn count so
//!   tests can pin "O(threads), not O(rounds × threads)".
//! * **Work stealing.** Each worker owns a deque; a batch's tasks are
//!   dealt round-robin across the deques. A worker pops from the front
//!   of its own deque and, when empty, steals from the *back* of a
//!   sibling's — so a worker stuck on one long task (a hard SAT cone)
//!   sheds its queued tasks to idle siblings instead of stalling the
//!   batch.
//! * **Deterministic results.** [`Scheduler::run`] returns outputs in
//!   task-submission order, whatever order workers finished in. The
//!   scheduler never makes ordering promises about *side effects* —
//!   callers keep bit-identity by giving tasks disjoint state and
//!   merging in submission order (see DESIGN.md).
//!
//! Tasks are coarse (a SAT probe or a whole-module characterization is
//! micro- to milliseconds), so the deques use plain mutexes: the lock
//! cost is noise next to the task cost, and the crate stays within the
//! workspace's `#![forbid(unsafe_code)]` / zero-dependency rules.
//!
//! [`wavefronts`] is the companion layering helper: it levels a DAG of
//! module dependencies so each wave's nodes are mutually independent
//! and can be one `run` batch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Locks a mutex, ignoring poisoning: the scheduler catches task
/// panics, so a poisoned lock only means a panic payload is already on
/// its way to the submitter.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The parallelism the platform actually offers
/// (`std::thread::available_parallelism`, 1 when unknown).
///
/// Cached after the first call: the std query re-reads cgroup quota
/// files on Linux, which costs tens of microseconds — callers probe
/// this once per refinement round, so an uncached query would tax every
/// clamped analysis.
#[must_use]
pub fn available_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The worker count a `threads` request resolves to: at least 1, and —
/// when `clamp` is set — at most [`available_parallelism`], so
/// `--threads 64` on a 4-core box cannot oversubscribe. Callers that
/// clamp should emit a trace event when the result differs from the
/// request (the analyzers in `hfta-core` do).
#[must_use]
pub fn effective_parallelism(threads: usize, clamp: bool) -> usize {
    let threads = threads.max(1);
    if clamp {
        threads.min(available_parallelism())
    } else {
        threads
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared by the worker threads and every [`Scheduler`] handle.
struct Shared {
    /// One deque per worker. Tasks are dealt round-robin at submission;
    /// worker `i` pops `queues[i]` from the front and steals from the
    /// back of the others.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Sleep/wake channel for idle workers; the guarded bool is the
    /// shutdown flag.
    idle: Mutex<bool>,
    work_cv: Condvar,
    /// Jobs pushed but not yet grabbed by any worker.
    pending: AtomicUsize,
    spawned: AtomicU64,
    steals: AtomicU64,
    executed: AtomicU64,
    batches: AtomicU64,
}

impl Shared {
    /// Takes one job: own queue first (front — submission order), then
    /// a sweep over the siblings' (back — the work they'd reach last).
    fn grab(&self, me: usize) -> Option<Job> {
        if let Some(job) = lock(&self.queues[me]).pop_front() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(job);
        }
        let n = self.queues.len();
        for k in 1..n {
            if let Some(job) = lock(&self.queues[(me + k) % n]).pop_back() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    fn worker_loop(self: &Arc<Shared>, me: usize) {
        loop {
            if let Some(job) = self.grab(me) {
                self.executed.fetch_add(1, Ordering::Relaxed);
                job();
                continue;
            }
            let mut shutdown = lock(&self.idle);
            loop {
                if *shutdown {
                    return;
                }
                if self.pending.load(Ordering::Acquire) > 0 {
                    break;
                }
                shutdown = self
                    .work_cv
                    .wait(shutdown)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// Joins the workers when the last user-held [`Scheduler`] handle is
/// dropped. Workers hold `Arc<Shared>` only, so this `Arc<Owner>`'s
/// refcount counts exactly the user handles.
struct Owner {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for Owner {
    fn drop(&mut self) {
        {
            let mut shutdown = lock(&self.shared.idle);
            *shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in std::mem::take(&mut *lock(&self.handles)) {
            let _ = h.join();
        }
    }
}

/// Completion state of one [`Scheduler::run`] batch.
struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    remaining: usize,
    panicked: bool,
}

/// A cloneable handle to a persistent work-stealing worker pool.
///
/// Cloning is an `Arc` bump — analyzers share one pool across
/// refinement rounds and across `HierAnalyzer` / `DemandDrivenAnalyzer`
/// instances by cloning the handle. The worker threads exit and are
/// joined when the last handle drops (do not move the last handle into
/// a task running *on* the pool).
///
/// ```
/// use hfta_sched::Scheduler;
///
/// let pool = Scheduler::new(4);
/// let squares = pool.run((0u64..8).collect(), |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// // A second batch reuses the same four workers.
/// let sums = pool.run(vec![1u64, 2, 3], |x| x + 1);
/// assert_eq!(sums, vec![2, 3, 4]);
/// assert_eq!(pool.workers_spawned(), 4);
/// ```
#[derive(Clone)]
pub struct Scheduler {
    shared: Arc<Shared>,
    /// Held only for its `Drop`: the last handle joins the workers.
    _owner: Arc<Owner>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("threads", &self.threads())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Lifetime work counters of a pool (all monotone).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SchedStats {
    /// OS threads ever spawned — stays equal to the pool size however
    /// many batches run (the churn regression guard).
    pub workers_spawned: u64,
    /// Tasks executed across all batches.
    pub tasks_executed: u64,
    /// Tasks a worker took from a sibling's deque instead of its own.
    pub steals: u64,
    /// [`Scheduler::run`] batches submitted.
    pub batches: u64,
}

impl Scheduler {
    /// Spawns a pool of `threads.max(1)` persistent workers.
    #[must_use]
    pub fn new(threads: usize) -> Scheduler {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(false),
            work_cv: Condvar::new(),
            pending: AtomicUsize::new(0),
            spawned: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                shared.spawned.fetch_add(1, Ordering::Relaxed);
                std::thread::Builder::new()
                    .name(format!("hfta-sched-{me}"))
                    .spawn(move || shared.worker_loop(me))
                    .expect("spawn scheduler worker")
            })
            .collect();
        let owner = Arc::new(Owner {
            shared: Arc::clone(&shared),
            handles: Mutex::new(handles),
        });
        Scheduler {
            shared,
            _owner: owner,
        }
    }

    /// The pool size.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// OS threads this pool has ever spawned (== [`Scheduler::threads`]
    /// for its whole life — the regression counter for per-round thread
    /// churn).
    #[must_use]
    pub fn workers_spawned(&self) -> u64 {
        self.shared.spawned.load(Ordering::Relaxed)
    }

    /// Lifetime work counters.
    #[must_use]
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            workers_spawned: self.shared.spawned.load(Ordering::Relaxed),
            tasks_executed: self.shared.executed.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` over every item on the pool and returns the results in
    /// item order, blocking the caller until the batch completes.
    ///
    /// Items are dealt round-robin across the workers' deques, so the
    /// initial assignment is deterministic; stealing then rebalances
    /// dynamically. Result *order* is always submission order — callers
    /// needing bit-identical side effects must keep task state disjoint
    /// and merge in this order.
    ///
    /// Batches may overlap: `run` may be called from several threads
    /// (or re-entered by a task, though tasks blocking on sub-batches
    /// waste a worker and are better avoided).
    ///
    /// # Panics
    ///
    /// Panics if any task panicked (after the whole batch has drained,
    /// so the pool stays usable).
    pub fn run<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send + 'static,
        T: Send + 'static,
        F: Fn(I) -> T + Send + Sync + 'static,
    {
        if items.is_empty() {
            return Vec::new();
        }
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        let f = Arc::new(f);
        let batch = Arc::new(Batch {
            state: Mutex::new(BatchState {
                remaining: items.len(),
                panicked: false,
            }),
            done: Condvar::new(),
        });
        let slots: Vec<Arc<Mutex<Option<T>>>> =
            items.iter().map(|_| Arc::new(Mutex::new(None))).collect();
        let workers = self.shared.queues.len();
        for (k, item) in items.into_iter().enumerate() {
            let slot = Arc::clone(&slots[k]);
            let batch = Arc::clone(&batch);
            let f = Arc::clone(&f);
            let job: Job = Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(|| f(item)));
                let mut st = lock(&batch.state);
                match out {
                    Ok(v) => *lock(&slot) = Some(v),
                    Err(_) => st.panicked = true,
                }
                st.remaining -= 1;
                if st.remaining == 0 {
                    batch.done.notify_all();
                }
            });
            lock(&self.shared.queues[k % workers]).push_back(job);
            self.shared.pending.fetch_add(1, Ordering::Release);
        }
        {
            // Wake sleepers under the idle lock so the wakeup cannot
            // race a worker between its queue sweep and its wait.
            let _guard = lock(&self.shared.idle);
            self.shared.work_cv.notify_all();
        }
        let mut st = lock(&batch.state);
        while st.remaining > 0 {
            st = batch.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let panicked = st.panicked;
        drop(st);
        assert!(!panicked, "scheduler task panicked");
        slots
            .into_iter()
            .map(|s| lock(&s).take().expect("completed task left no result"))
            .collect()
    }
}

/// Levels a DAG into wavefronts: `wavefronts(n, deps)[w]` holds the
/// nodes (ascending) whose dependencies all lie in earlier waves, so
/// each wave is an independent batch for [`Scheduler::run`]. `deps(i)`
/// returns the direct dependencies of node `i` (each `< n`).
///
/// # Panics
///
/// Panics if the dependencies contain a cycle.
pub fn wavefronts<F>(n: usize, deps: F) -> Vec<Vec<usize>>
where
    F: Fn(usize) -> Vec<usize>,
{
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    for (i, indeg) in indegree.iter_mut().enumerate() {
        for d in deps(i) {
            assert!(d < n, "dependency {d} out of range for {n} nodes");
            dependents[d].push(i);
            *indeg += 1;
        }
    }
    let mut wave: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut waves = Vec::new();
    let mut placed = 0usize;
    while !wave.is_empty() {
        placed += wave.len();
        let mut next = Vec::new();
        for &i in &wave {
            for &j in &dependents[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        waves.push(std::mem::take(&mut wave));
        wave = next;
    }
    assert!(
        placed == n,
        "dependency cycle: {} of {n} nodes placed",
        placed
    );
    waves
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = Scheduler::new(4);
        // Make later tasks finish first to exercise the reordering.
        let out = pool.run((0u64..32).collect(), |i| {
            std::thread::sleep(std::time::Duration::from_micros(400 - 12 * i));
            i * 2
        });
        assert_eq!(out, (0u64..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn workers_persist_across_batches() {
        let pool = Scheduler::new(3);
        for round in 0..50u64 {
            let out = pool.run(vec![round; 5], |x| x + 1);
            assert_eq!(out, vec![round + 1; 5]);
        }
        // 50 batches, still only the original 3 threads: no churn.
        let stats = pool.stats();
        assert_eq!(stats.workers_spawned, 3);
        assert_eq!(stats.tasks_executed, 250);
        assert_eq!(stats.batches, 50);
    }

    #[test]
    fn clones_share_the_pool() {
        let pool = Scheduler::new(2);
        let clone = pool.clone();
        let a = pool.run(vec![1, 2], |x: i32| x);
        let b = clone.run(vec![3, 4], |x: i32| x);
        assert_eq!((a, b), (vec![1, 2], vec![3, 4]));
        assert_eq!(clone.workers_spawned(), 2);
    }

    /// An uneven batch cannot be stalled by static partitioning: with 2
    /// workers and one long task dealt to each... the short tasks all
    /// land behind a long one unless someone steals. Assert the batch
    /// finishes well under the serial sum, i.e. stealing rebalanced.
    #[test]
    fn stealing_rebalances_uneven_batches() {
        let pool = Scheduler::new(2);
        // Tasks 0 and 1 are long; 2..10 short. Round-robin deals the
        // two long ones to *different* workers, so force the skew the
        // other way: one long task plus many mediums.
        let counter = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&counter);
        pool.run((0u32..9).collect(), move |i| {
            let ms = if i == 0 { 40 } else { 5 };
            std::thread::sleep(std::time::Duration::from_millis(ms));
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 9);
        // The short tasks 2,4,6,8 were dealt behind the 40 ms task on
        // worker 0; finishing the batch at all without worker 1 idle
        // requires steals (worker 1's own queue drains in ~20 ms).
        assert!(pool.stats().steals > 0, "{:?}", pool.stats());
    }

    #[test]
    fn task_panic_propagates_but_pool_survives() {
        let pool = Scheduler::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![0u32, 1, 2], |i| {
                assert!(i != 1, "boom");
                i
            })
        }));
        assert!(result.is_err());
        // The pool still works after the panic.
        let out = pool.run(vec![7u32], |x| x);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn empty_batch_is_free() {
        let pool = Scheduler::new(2);
        let out: Vec<u32> = pool.run(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
        assert_eq!(pool.stats().batches, 0);
    }

    #[test]
    fn effective_parallelism_clamps_only_when_asked() {
        let avail = available_parallelism();
        assert_eq!(effective_parallelism(0, true), 1);
        assert_eq!(effective_parallelism(0, false), 1);
        assert_eq!(effective_parallelism(avail + 7, false), avail + 7);
        assert_eq!(effective_parallelism(avail + 7, true), avail);
        assert_eq!(effective_parallelism(1, true), 1);
    }

    #[test]
    fn wavefronts_layer_a_diamond() {
        // 0 -> {1, 2} -> 3, plus isolated 4.
        let deps = |i: usize| match i {
            1 | 2 => vec![0],
            3 => vec![1, 2],
            _ => vec![],
        };
        assert_eq!(wavefronts(5, deps), vec![vec![0, 4], vec![1, 2], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn wavefronts_reject_cycles() {
        let _ = wavefronts(2, |i| vec![1 - i]);
    }
}
