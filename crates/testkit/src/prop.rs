//! A minimal property-testing harness with input shrinking.
//!
//! Replaces the `proptest` dependency for this workspace. The model is
//! deliberately simple:
//!
//! * a [`Strategy`] generates random values and proposes *simpler*
//!   variants of a failing value ([`Strategy::shrink`]);
//! * [`check_named`] runs a property over many generated cases, and on
//!   the first failure greedily shrinks the counterexample before
//!   panicking with a reproducible report;
//! * the [`prop!`](crate::prop!) macro wraps all of that into a
//!   `#[test]` function, so property files read much like the
//!   `proptest!` blocks they replace.
//!
//! Environment knobs (read per test at runtime):
//!
//! * `HFTA_PROP_CASES` — overrides the per-test case count (e.g. `16`
//!   for a fast smoke pass, `4096` for a soak).
//! * `HFTA_PROP_SEED` — overrides the base seed; failure reports print
//!   the seed to paste here for deterministic replay.
//!
//! Properties signal failure by panicking (plain `assert!` /
//! `assert_eq!` work) or by returning `Err(String)`. Panics raised
//! while the harness probes candidate inputs are silenced so a
//! shrinking run does not flood the test log.

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Once, OnceLock};

use crate::rng::{Rng, SplitMix64};

/// Generates random values and proposes simpler variants of a value.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one random value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes strictly-simpler candidates for `v`, simplest first.
    /// An empty vector means `v` is fully shrunk.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// Built-in strategies
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($ty:ty),+ $(,)?) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut Rng) -> $ty {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, v: &$ty) -> Vec<$ty> {
                shrink_int(self.start as i128, *v as i128)
                    .into_iter()
                    .map(|x| x as $ty)
                    .collect()
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut Rng) -> $ty {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, v: &$ty) -> Vec<$ty> {
                shrink_int(*self.start() as i128, *v as i128)
                    .into_iter()
                    .map(|x| x as $ty)
                    .collect()
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Shrink candidates for an integer toward the range start: the start
/// itself, then values approaching `v` by halved deltas (ending at
/// `v - 1`). Greedy adoption of the first failing candidate gives a
/// binary descent to the smallest failing value.
fn shrink_int(start: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v == start {
        return out;
    }
    out.push(start);
    let mut delta = (v - start) / 2;
    while delta > 0 {
        let cand = v - delta;
        if cand != start {
            out.push(cand);
        }
        delta /= 2;
    }
    out
}

/// Strategy for a uniformly random `bool`; `true` shrinks to `false`.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

/// A uniformly random `bool`.
#[must_use]
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut Rng) -> bool {
        rng.next_bool()
    }

    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Always yields a clone of the given value; never shrinks.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

/// Inclusive length bounds for [`vec_of`].
#[derive(Clone, Copy, Debug)]
pub struct LenRange {
    min: usize,
    max: usize,
}

impl From<core::ops::Range<usize>> for LenRange {
    fn from(r: core::ops::Range<usize>) -> LenRange {
        assert!(r.start < r.end, "empty length range");
        LenRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for LenRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> LenRange {
        assert!(r.start() <= r.end(), "empty length range");
        LenRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec<S::Value>` with length drawn from a range.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    elem: S,
    len: LenRange,
}

/// A vector of values from `elem` with length in `len`.
///
/// Shrinking first tries dropping halves, then single elements, then
/// shrinking individual elements — always respecting the minimum
/// length.
pub fn vec_of<S: Strategy>(elem: S, len: impl Into<LenRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        len: len.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.min..=self.len.max);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let n = v.len();
        let half = n / 2;
        if half >= self.len.min && half < n {
            out.push(v[..half].to_vec());
            out.push(v[n - half..].to_vec());
        }
        if n > self.len.min {
            for i in 0..n {
                let mut w = v.clone();
                w.remove(i);
                out.push(w);
            }
        }
        for i in 0..n {
            for cand in self.elem.shrink(&v[i]) {
                let mut w = v.clone();
                w[i] = cand;
                out.push(w);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut w = v.clone();
                        w.$idx = cand;
                        out.push(w);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
);

/// Strategy defined by a pair of closures: a generator and an optional
/// shrinker. The escape hatch for domain types (netlist specs,
/// expression trees, …).
#[derive(Clone)]
pub struct FnStrategy<G, K> {
    generate: G,
    shrink: K,
}

/// A strategy from a generator closure; values never shrink.
pub fn from_fn<V, G>(generate: G) -> FnStrategy<G, fn(&V) -> Vec<V>>
where
    V: Clone + Debug,
    G: Fn(&mut Rng) -> V,
{
    FnStrategy {
        generate,
        shrink: |_| Vec::new(),
    }
}

/// A strategy from a generator closure plus a shrinker proposing
/// simpler candidates for a failing value.
pub fn from_fn_with_shrink<V, G, K>(generate: G, shrink: K) -> FnStrategy<G, K>
where
    V: Clone + Debug,
    G: Fn(&mut Rng) -> V,
    K: Fn(&V) -> Vec<V>,
{
    FnStrategy { generate, shrink }
}

impl<V, G, K> Strategy for FnStrategy<G, K>
where
    V: Clone + Debug,
    G: Fn(&mut Rng) -> V,
    K: Fn(&V) -> Vec<V>,
{
    type Value = V;

    fn generate(&self, rng: &mut Rng) -> V {
        (self.generate)(rng)
    }

    fn shrink(&self, v: &V) -> Vec<V> {
        (self.shrink)(v)
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Cap on greedy shrink iterations (each step re-runs the property once
/// per candidate, so this bounds worst-case shrink cost).
const MAX_SHRINK_STEPS: usize = 4096;

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

type PanicHook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send>;

static PREV_HOOK: OnceLock<PanicHook> = OnceLock::new();
static HOOK_INIT: Once = Once::new();

/// Installs (once) a panic hook that stays silent on the threads where
/// the harness is probing expected-to-fail inputs.
fn install_quiet_hook() {
    HOOK_INIT.call_once(|| {
        let prev = panic::take_hook();
        let _ = PREV_HOOK.set(prev);
        panic::set_hook(Box::new(|info| {
            if QUIET_PANICS.with(Cell::get) {
                return;
            }
            if let Some(prev) = PREV_HOOK.get() {
                prev(info);
            }
        }));
    });
}

/// Runs the property once, converting a panic into `Err(message)`.
fn run_once<V>(prop: &impl Fn(&V) -> Result<(), String>, value: &V) -> Result<(), String> {
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    QUIET_PANICS.with(|q| q.set(false));
    match outcome {
        Ok(r) => r,
        Err(payload) => Err(panic_message(payload.as_ref())),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name}={raw} is not a valid integer"),
    }
}

/// The case count for a property with the given default, honoring
/// `HFTA_PROP_CASES`.
#[must_use]
pub fn case_count(default_cases: u32) -> u32 {
    env_u64("HFTA_PROP_CASES").map_or(default_cases, |v| v.max(1) as u32)
}

/// FNV-1a, used to derive a stable per-test default seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `prop` on `cases` values drawn from `strat`; on failure shrinks
/// the counterexample and panics with a replayable report.
///
/// The base seed defaults to a hash of `name` (so distinct properties
/// explore distinct streams) and is overridden by `HFTA_PROP_SEED`;
/// the case count is overridden by `HFTA_PROP_CASES`.
///
/// # Panics
///
/// Panics — that is the point — when the property fails, with the
/// minimal shrunk counterexample, the error, and the seed to replay.
pub fn check_named<S: Strategy>(
    name: &str,
    default_cases: u32,
    strat: S,
    prop: impl Fn(&S::Value) -> Result<(), String>,
) {
    let cases = case_count(default_cases);
    let seed = env_u64("HFTA_PROP_SEED").unwrap_or_else(|| fnv1a(name.as_bytes()));
    let mut seq = SplitMix64::new(seed);
    for case in 0..cases {
        let mut rng = Rng::seed_from_u64(seq.next_u64());
        let value = strat.generate(&mut rng);
        if let Err(first_err) = run_once(&prop, &value) {
            let (min, err, steps) = shrink_failure(&strat, value, first_err, &prop);
            panic!(
                "property `{name}` failed (case {case}/{cases}, base seed {seed:#x})\n\
                 minimal counterexample after {steps} shrink step(s):\n  {min:?}\n\
                 error: {err}\n\
                 replay with: HFTA_PROP_SEED={seed:#x} (and HFTA_PROP_CASES={cases})"
            );
        }
    }
}

/// Greedy shrink: repeatedly adopt the first simpler candidate that
/// still fails, until none fails or the step budget runs out.
fn shrink_failure<S: Strategy>(
    strat: &S,
    start: S::Value,
    start_err: String,
    prop: &impl Fn(&S::Value) -> Result<(), String>,
) -> (S::Value, String, usize) {
    let mut cur = start;
    let mut cur_err = start_err;
    let mut steps = 0usize;
    'outer: while steps < MAX_SHRINK_STEPS {
        for cand in strat.shrink(&cur) {
            if let Err(e) = run_once(prop, &cand) {
                cur = cand;
                cur_err = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (cur, cur_err, steps)
}

/// Runs a free-form randomized check: `cases` invocations of `body`,
/// each with an independent deterministically-seeded [`Rng`].
///
/// The lightweight entry point when there is no structured input to
/// shrink — the body draws whatever it needs from the provided
/// generator. Honors `HFTA_PROP_CASES` and `HFTA_PROP_SEED`.
///
/// # Panics
///
/// Panics when `body` panics, reporting the case index and seed.
pub fn check(seed: u64, cases: u32, mut body: impl FnMut(&mut Rng)) {
    let cases = case_count(cases);
    let seed = env_u64("HFTA_PROP_SEED").unwrap_or(seed);
    let mut seq = SplitMix64::new(seed);
    for case in 0..cases {
        let case_seed = seq.next_u64();
        let mut rng = Rng::seed_from_u64(case_seed);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            panic!(
                "randomized check failed at case {case}/{cases} \
                 (base seed {seed:#x}, case seed {case_seed:#x}): {}",
                panic_message(payload.as_ref())
            );
        }
    }
}

/// Declares a property test: a `#[test]` function running a property
/// over random inputs with shrinking on failure.
///
/// ```
/// use hfta_testkit::{prop, vec_of};
///
/// prop!(cases = 64, fn sum_is_commutative(a in 0i64..100, b in 0i64..100) {
///     assert_eq!(a + b, b + a);
/// });
///
/// prop!(fn reverse_twice_is_identity(v in vec_of(0u32..10, 0..8)) {
///     let mut w = v.clone();
///     w.reverse();
///     w.reverse();
///     assert_eq!(v, w);
/// });
/// ```
#[macro_export]
macro_rules! prop {
    (cases = $cases:expr, fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block) => {
        #[test]
        fn $name() {
            let __strategy = ($($strat,)+);
            $crate::check_named(
                concat!(module_path!(), "::", stringify!($name)),
                $cases,
                __strategy,
                |__value| {
                    let ($($arg,)+) = __value.clone();
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
    };
    (fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block) => {
        $crate::prop!(cases = 64, fn $name($($arg in $strat),+) $body);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Catches an expected panic while keeping the hook silent, so the
    /// suite's own negative tests do not flood the log.
    fn quiet_catch<R>(f: impl FnOnce() -> R) -> std::thread::Result<R> {
        install_quiet_hook();
        QUIET_PANICS.with(|q| q.set(true));
        let r = panic::catch_unwind(AssertUnwindSafe(f));
        QUIET_PANICS.with(|q| q.set(false));
        r
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check_named("passing", 100, 0u32..10, |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        // HFTA_PROP_CASES may legitimately override the default.
        assert_eq!(counter.get(), case_count(100));
    }

    #[test]
    fn shrinking_finds_minimal_int_counterexample() {
        // Planted failure: fails iff v >= 500. The minimal failing
        // value in 0..10_000 is exactly 500 — greedy binary descent
        // must land on it.
        let err = quiet_catch(|| {
            check_named("planted_int", 200, (0u32..10_000,), |&(v,)| {
                if v >= 500 {
                    return Err(format!("too big: {v}"));
                }
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("(500,)"), "report should pin 500: {msg}");
        assert!(
            msg.contains("too big: 500"),
            "error from minimal case: {msg}"
        );
    }

    #[test]
    fn shrinking_minimizes_vectors() {
        // Fails when the vector contains an element >= 7; minimal
        // counterexample is the single-element vector [7].
        let err = quiet_catch(|| {
            check_named("planted_vec", 200, (vec_of(0u32..100, 0..12),), |(v,)| {
                assert!(v.iter().all(|&x| x < 7), "bad element in {v:?}");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = panic_message(err.as_ref());
        assert!(
            msg.contains("([7],)"),
            "minimal vector should be [7]: {msg}"
        );
    }

    #[test]
    fn panics_are_caught_and_reported() {
        let err = quiet_catch(|| {
            check_named("panicking", 10, (0u32..10,), |_| -> Result<(), String> {
                panic!("boom from property");
            });
        })
        .expect_err("property must fail");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("boom from property"), "{msg}");
    }

    #[test]
    fn tuple_shrinking_shrinks_each_component() {
        let err = quiet_catch(|| {
            check_named(
                "planted_tuple",
                300,
                (0u32..50, any_bool(), vec_of(0u32..9, 0..6)),
                |&(a, b, ref v)| {
                    // Fails whenever a >= 3, regardless of b and v:
                    // both should shrink to their minimal forms.
                    if a >= 3 {
                        return Err("a too big".into());
                    }
                    let _ = (b, v);
                    Ok(())
                },
            );
        })
        .expect_err("property must fail");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("(3, false, [])"), "fully shrunk tuple: {msg}");
    }

    #[test]
    fn check_is_deterministic_per_seed() {
        let mut a = Vec::new();
        check(77, 20, |rng| a.push(rng.next_u64()));
        let mut b = Vec::new();
        check(77, 20, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
    }

    prop!(cases = 64, fn prop_macro_compiles(a in 0i64..100, b in -5i64..=5) {
        assert!((a - b) <= a + 5);
    });

    prop!(fn prop_macro_default_cases(v in vec_of(any_bool(), 0..10)) {
        assert!(v.len() < 10);
    });

    #[test]
    fn custom_strategy_shrinks_through_from_fn() {
        // Domain strategy with a custom shrinker: pairs (x, y) with
        // x <= y; shrink moves both toward zero keeping the invariant.
        let strat = from_fn_with_shrink(
            |rng: &mut Rng| {
                let x = rng.gen_range(0u32..50);
                let y = rng.gen_range(x..100);
                (x, y)
            },
            |&(x, y): &(u32, u32)| {
                let mut out = Vec::new();
                if x > 0 {
                    out.push((x / 2, y));
                }
                if y > x {
                    out.push((x, x + (y - x) / 2));
                    out.push((x, y - 1));
                }
                out
            },
        );
        let err = quiet_catch(|| {
            check_named("planted_pair", 300, (strat,), |&((x, y),)| {
                if y - x >= 10 {
                    return Err("spread too wide".into());
                }
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("((0, 10),)"), "minimal spread pair: {msg}");
    }
}
