//! Deterministic, seedable pseudo-random number generation.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded through
//! **SplitMix64** so that any `u64` seed — including 0 — expands into a
//! full 256-bit state with good avalanche behavior. Both algorithms are
//! public domain and trivially portable; the implementation here is
//! self-contained so the workspace builds with no network access.
//!
//! Determinism contract: for a fixed seed, the sequence of values
//! returned by any fixed sequence of calls is identical across runs,
//! platforms, and compiler versions. The netlist generators and the
//! Monte-Carlo simulator rely on this to make every experiment
//! reproducible; a golden-value test in `hfta-netlist` pins the contract.

/// SplitMix64: a tiny 64-bit generator used to expand seeds.
///
/// Each call advances an internal Weyl sequence and returns a mixed
/// output. Used standalone for cheap stream-splitting and as the seeder
/// for [`Rng`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given state.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++: the workhorse generator.
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality
/// for simulation workloads. Not cryptographically secure — none of the
/// test or generator code needs that.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the full 256-bit state from a single `u64` via SplitMix64,
    /// as recommended by the xoshiro authors.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32-bit value (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: Rng::next_u64
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random bool.
    pub fn next_bool(&mut self) -> bool {
        // Top bit: the high bits of xoshiro256++ are its best bits.
        self.next_u64() >> 63 == 1
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform value below `bound` (> 0), bias-free.
    ///
    /// Uses Lemire's multiply-shift rejection method: a single widening
    /// multiply in the common case, retrying only on the (rare) biased
    /// low fringe.
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in `range`. Supports the half-open `a..b` and
    /// inclusive `a..=b` ranges of all primitive integer types.
    ///
    /// # Panics
    ///
    /// Panics on empty ranges.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Fisher–Yates shuffle, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen reference into a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }

    /// Derives an independent generator from this one (stream split).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty => $unsigned:ty),+ $(,)?) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample(self, rng: &mut Rng) -> $ty {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $unsigned).wrapping_sub(self.start as $unsigned);
                let off = rng.below(span as u64) as $unsigned;
                ((self.start as $unsigned).wrapping_add(off)) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample(self, rng: &mut Rng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as $unsigned).wrapping_sub(start as $unsigned);
                if span as u64 == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                let off = rng.below(span as u64 + 1) as $unsigned;
                ((start as $unsigned).wrapping_add(off)) as $ty
            }
        }
    )+};
}

impl_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values() {
        // Reference sequence for seed 1234567 (from the public-domain
        // C implementation by Vigna).
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Self-consistency: reseeding reproduces the stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "distinct seeds produced near-identical streams");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-20i64..40);
            assert!((-20..40).contains(&w));
            let x = rng.gen_range(0u64..=u64::MAX);
            let _ = x;
            let y = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        // Smoke test, not a statistical suite: 10 buckets over 10k
        // draws should each hold 1000 ± 25%.
        let mut rng = Rng::seed_from_u64(99);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((750..1250).contains(&b), "bucket {i} holds {b}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And actually permutes with overwhelming probability.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut base = Rng::seed_from_u64(1);
        let mut f1 = base.fork();
        let mut f2 = base.fork();
        let matches = (0..64).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert!(matches < 4);
    }
}
