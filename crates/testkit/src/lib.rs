//! Self-contained test infrastructure for the HFTA workspace.
//!
//! The build environment for this repository is **hermetic**: no crate
//! downloads are available, so the usual `rand` / `proptest` /
//! `criterion` stack cannot be used. This crate vendors the small
//! slices of those libraries the workspace actually needs:
//!
//! * [`rng`] — a deterministic, seedable PRNG (SplitMix64 seeding a
//!   xoshiro256++ core) with `gen_range` / `gen_bool` / `shuffle`;
//!   used by the netlist generators and the Monte-Carlo simulator, and
//!   by every randomized test.
//! * [`mod@prop`] — a property-testing harness: [`check_named`] /
//!   [`check`] runners, the [`prop!`](crate::prop!) macro, and
//!   [`Strategy`] combinators with input shrinking on failure.
//!   Controlled by `HFTA_PROP_CASES` / `HFTA_PROP_SEED`.
//! * [`mod@bench`] — a micro-benchmark timer (warmup + timed iterations,
//!   median/p95, JSON-lines `BENCH_*.json` reports). Controlled by
//!   `HFTA_BENCH_ITERS` / `HFTA_BENCH_WARMUP` / `HFTA_BENCH_JSON`.
//!
//! Everything is dependency-free and deterministic; see DESIGN.md's
//! "Hermetic build policy" section for the rationale.

pub mod bench;
pub mod prop;
pub mod rng;

pub use bench::{Group, Harness, Record};
pub use prop::{
    any_bool, case_count, check, check_named, from_fn, from_fn_with_shrink, vec_of, AnyBool,
    FnStrategy, Just, LenRange, Strategy, VecStrategy,
};
pub use rng::{Rng, SampleRange, SplitMix64};
