//! A micro-benchmark timer harness.
//!
//! Replaces the `criterion` dependency for this workspace. Each
//! benchmark runs a closure for a few warmup iterations, then times a
//! batch of iterations individually and reports min / mean / median /
//! p95 wall times. Results print as a human-readable table line and,
//! when requested, append as JSON lines to a `BENCH_<harness>.json`
//! file so runs can be diffed and plotted.
//!
//! Environment knobs:
//!
//! * `HFTA_BENCH_WARMUP` — warmup iterations per benchmark (default 3).
//! * `HFTA_BENCH_ITERS` — timed iterations per benchmark (default 15).
//! * `HFTA_BENCH_JSON` — when set, where JSON records go. A value
//!   ending in `.json` names one file that records are **appended** to
//!   (so several bench binaries, or several runs over time, build one
//!   trajectory file); any other value is a directory that gets a
//!   fresh `BENCH_<harness>.json` per harness (`1` or an empty value
//!   means the current directory).
//! * `HFTA_GIT_REV` — overrides the `git_rev` stamped into each record
//!   (otherwise `git rev-parse --short HEAD`, or `unknown` outside a
//!   checkout).

use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Clone, Debug)]
pub struct Record {
    /// Harness (bench binary) name, e.g. `ablation`.
    pub bench: String,
    /// Group name (e.g. `table1_carry_skip`).
    pub group: String,
    /// Benchmark id within the group (e.g. `hier_demand/8`).
    pub id: String,
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean iteration time.
    pub mean: Duration,
    /// Median iteration time.
    pub median: Duration,
    /// 95th-percentile iteration time.
    pub p95: Duration,
    /// Short git revision of the workspace being measured (`unknown`
    /// outside a checkout; override with `HFTA_GIT_REV`).
    pub git_rev: String,
}

impl Record {
    /// The record as one JSON line (no trailing newline). `case` is the
    /// fully qualified `group/id`, so a trajectory file mixing several
    /// bench binaries still keys cleanly on `(bench, case)`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"bench\":\"{}\",\"case\":\"{}/{}\",\
             \"group\":\"{}\",\"id\":\"{}\",\"iters\":{},\
             \"min_ns\":{},\"mean_ns\":{},\"median_ns\":{},\"p95_ns\":{},\
             \"git_rev\":\"{}\"}}",
            escape(&self.bench),
            escape(&self.group),
            escape(&self.id),
            escape(&self.group),
            escape(&self.id),
            self.iters,
            self.min.as_nanos(),
            self.mean.as_nanos(),
            self.median.as_nanos(),
            self.p95.as_nanos(),
            escape(&self.git_rev),
        )
    }
}

/// The short git revision to stamp into records: `HFTA_GIT_REV` if
/// set, else `git rev-parse --short HEAD`, else `unknown`.
fn resolve_git_rev() -> String {
    if let Ok(rev) = std::env::var("HFTA_GIT_REV") {
        let rev = rev.trim().to_string();
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// A named collection of benchmark groups; writes the JSON report on
/// [`finish`](Harness::finish).
#[derive(Debug)]
pub struct Harness {
    name: String,
    warmup: u32,
    iters: u32,
    git_rev: String,
    records: Vec<Record>,
}

impl Harness {
    /// Creates a harness named `name` (the `BENCH_<name>.json` stem),
    /// reading iteration counts from the environment.
    #[must_use]
    pub fn new(name: &str) -> Harness {
        let warmup = env_u32("HFTA_BENCH_WARMUP", 3);
        let iters = env_u32("HFTA_BENCH_ITERS", 15).max(1);
        Harness {
            name: name.to_string(),
            warmup,
            iters,
            git_rev: resolve_git_rev(),
            records: Vec::new(),
        }
    }

    /// Opens a benchmark group; measurements print as they complete.
    pub fn group(&mut self, group: &str) -> Group<'_> {
        println!("\n== {} ==", group);
        Group {
            harness: self,
            group: group.to_string(),
        }
    }

    /// All measurements so far.
    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Prints the summary and writes the JSON records if
    /// `HFTA_BENCH_JSON` is set: appended to the named file when the
    /// value ends in `.json`, else to a fresh `BENCH_<name>.json` in
    /// the named directory. Returns the records.
    ///
    /// # Panics
    ///
    /// Panics if the JSON file cannot be written.
    pub fn finish(self) -> Vec<Record> {
        if let Ok(dest) = std::env::var("HFTA_BENCH_JSON") {
            let dest = if dest.is_empty() || dest == "1" {
                ".".to_string()
            } else {
                dest
            };
            let (path, append) = if dest.ends_with(".json") {
                (std::path::PathBuf::from(&dest), true)
            } else {
                let p = std::path::Path::new(&dest).join(format!("BENCH_{}.json", self.name));
                (p, false)
            };
            let mut f = if append {
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
            } else {
                std::fs::File::create(&path)
            }
            .unwrap_or_else(|e| panic!("cannot open {}: {e}", path.display()));
            for r in &self.records {
                writeln!(f, "{}", r.to_json()).expect("write JSON line");
            }
            println!(
                "\n{} {} record(s) to {}",
                if append { "appended" } else { "wrote" },
                self.records.len(),
                path.display()
            );
        }
        self.records
    }

    fn run_one<T>(
        &mut self,
        group: &str,
        id: &str,
        iters: u32,
        mut f: impl FnMut() -> T,
    ) -> Record {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples: Vec<Duration> = (0..iters)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        let n = samples.len();
        let total: Duration = samples.iter().sum();
        let record = Record {
            bench: self.name.clone(),
            group: group.to_string(),
            id: id.to_string(),
            iters,
            min: samples[0],
            mean: total / iters,
            median: samples[n / 2],
            p95: samples[(n * 95).div_ceil(100).saturating_sub(1).min(n - 1)],
            git_rev: self.git_rev.clone(),
        };
        println!(
            "{:<36} median {:>9}  p95 {:>9}  min {:>9}  (n={})",
            format!("{}/{}", group, id),
            fmt_duration(record.median),
            fmt_duration(record.p95),
            fmt_duration(record.min),
            record.iters,
        );
        self.records.push(record.clone());
        record
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    group: String,
}

impl Group<'_> {
    /// Times `f` and records the measurement under `id`.
    pub fn bench<T>(&mut self, id: &str, f: impl FnMut() -> T) -> Record {
        let group = self.group.clone();
        let iters = self.harness.iters;
        self.harness.run_one(&group, id, iters, f)
    }

    /// Like [`bench`](Group::bench) but guarantees at least `min_iters`
    /// timed iterations even when `HFTA_BENCH_ITERS` asks for fewer —
    /// for measurements whose medians must be statistically meaningful
    /// (e.g. CI gates comparing parallel against serial).
    pub fn bench_at_least<T>(&mut self, id: &str, min_iters: u32, f: impl FnMut() -> T) -> Record {
        let group = self.group.clone();
        let iters = self.harness.iters.max(min_iters).max(1);
        self.harness.run_one(&group, id, iters, f)
    }
}

fn env_u32(name: &str, default: u32) -> u32 {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name}={v} is not a valid integer")),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_monotone_sane() {
        let mut h = Harness::new("selftest");
        h.warmup = 1;
        h.iters = 9;
        let mut g = h.group("sanity");
        let r = g.bench("spin", || {
            // A workload long enough to rise above timer resolution.
            let mut acc = 0u64;
            for i in 0..20_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(r.min > Duration::ZERO);
        assert!(r.min <= r.median);
        assert!(r.median <= r.p95);
        assert!(r.mean >= r.min && r.mean <= r.p95.max(r.mean));
        assert_eq!(r.iters, 9);
    }

    #[test]
    fn json_line_shape() {
        let r = Record {
            bench: "selfbench".into(),
            group: "g".into(),
            id: "id/2".into(),
            iters: 5,
            min: Duration::from_nanos(100),
            mean: Duration::from_nanos(150),
            median: Duration::from_nanos(140),
            p95: Duration::from_nanos(200),
            git_rev: "abc1234".into(),
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"group\":\"g\"",
            "\"id\":\"id/2\"",
            "\"iters\":5",
            "\"median_ns\":140",
            "\"bench\":\"selfbench\"",
            "\"case\":\"g/id/2\"",
            "\"git_rev\":\"abc1234\"",
        ] {
            assert!(j.contains(key), "{j} missing {key}");
        }
    }

    /// A `.json`-suffixed `HFTA_BENCH_JSON` destination appends, so
    /// consecutive harness runs accumulate one trajectory file.
    #[test]
    fn json_file_destination_appends() {
        let dir = std::env::temp_dir().join(format!("hfta_bench_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_smoke.json");
        let _ = std::fs::remove_file(&path);
        for round in 0..2 {
            let mut h = Harness::new("selftest_append");
            h.warmup = 0;
            h.iters = 1;
            h.git_rev = "deadbee".into();
            h.group("g").bench("x", || round);
            // finish() reads the env var; scope it tightly. Tests in
            // this module do not otherwise touch HFTA_BENCH_JSON.
            std::env::set_var("HFTA_BENCH_JSON", &path);
            h.finish();
            std::env::remove_var("HFTA_BENCH_JSON");
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "append accumulated both runs:\n{text}");
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            for key in [
                "\"bench\":\"selftest_append\"",
                "\"case\":\"g/x\"",
                "\"git_rev\":\"deadbee\"",
                "\"median_ns\":",
            ] {
                assert!(line.contains(key), "{line} missing {key}");
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn bench_at_least_raises_iteration_floor() {
        let mut h = Harness::new("selftest3");
        h.warmup = 0;
        h.iters = 2;
        let r = h.group("floor").bench_at_least("x", 10, || 1 + 1);
        assert_eq!(r.iters, 10);
        // The floor never lowers a higher environment setting.
        let mut h = Harness::new("selftest3");
        h.warmup = 0;
        h.iters = 12;
        let r = h.group("floor").bench_at_least("x", 10, || 1 + 1);
        assert_eq!(r.iters, 12);
    }

    #[test]
    fn harness_collects_records() {
        let mut h = Harness::new("selftest2");
        h.warmup = 0;
        h.iters = 3;
        {
            let mut g = h.group("a");
            g.bench("x", || 1 + 1);
            g.bench("y", || 2 + 2);
        }
        let records = h.records().to_vec();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].group, "a");
        assert_eq!(records[1].id, "y");
    }
}
