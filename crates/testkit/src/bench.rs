//! A micro-benchmark timer harness.
//!
//! Replaces the `criterion` dependency for this workspace. Each
//! benchmark runs a closure for a few warmup iterations, then times a
//! batch of iterations individually and reports min / mean / median /
//! p95 wall times. Results print as a human-readable table line and,
//! when requested, append as JSON lines to a `BENCH_<harness>.json`
//! file so runs can be diffed and plotted.
//!
//! Environment knobs:
//!
//! * `HFTA_BENCH_WARMUP` — warmup iterations per benchmark (default 3).
//! * `HFTA_BENCH_ITERS` — timed iterations per benchmark (default 15).
//! * `HFTA_BENCH_JSON` — when set, the directory to write
//!   `BENCH_<harness>.json` into (`1` or an empty value means the
//!   current directory).

use std::hint::black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Clone, Debug)]
pub struct Record {
    /// Group name (e.g. `table1_carry_skip`).
    pub group: String,
    /// Benchmark id within the group (e.g. `hier_demand/8`).
    pub id: String,
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration.
    pub min: Duration,
    /// Mean iteration time.
    pub mean: Duration,
    /// Median iteration time.
    pub median: Duration,
    /// 95th-percentile iteration time.
    pub p95: Duration,
}

impl Record {
    /// The record as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"group\":\"{}\",\"id\":\"{}\",\"iters\":{},\
             \"min_ns\":{},\"mean_ns\":{},\"median_ns\":{},\"p95_ns\":{}}}",
            escape(&self.group),
            escape(&self.id),
            self.iters,
            self.min.as_nanos(),
            self.mean.as_nanos(),
            self.median.as_nanos(),
            self.p95.as_nanos(),
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// A named collection of benchmark groups; writes the JSON report on
/// [`finish`](Harness::finish).
#[derive(Debug)]
pub struct Harness {
    name: String,
    warmup: u32,
    iters: u32,
    records: Vec<Record>,
}

impl Harness {
    /// Creates a harness named `name` (the `BENCH_<name>.json` stem),
    /// reading iteration counts from the environment.
    #[must_use]
    pub fn new(name: &str) -> Harness {
        let warmup = env_u32("HFTA_BENCH_WARMUP", 3);
        let iters = env_u32("HFTA_BENCH_ITERS", 15).max(1);
        Harness { name: name.to_string(), warmup, iters, records: Vec::new() }
    }

    /// Opens a benchmark group; measurements print as they complete.
    pub fn group(&mut self, group: &str) -> Group<'_> {
        println!("\n== {} ==", group);
        Group { harness: self, group: group.to_string() }
    }

    /// All measurements so far.
    #[must_use]
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Prints the summary and writes `BENCH_<name>.json` if
    /// `HFTA_BENCH_JSON` is set. Returns the records.
    ///
    /// # Panics
    ///
    /// Panics if the JSON file cannot be written.
    pub fn finish(self) -> Vec<Record> {
        if let Ok(dir) = std::env::var("HFTA_BENCH_JSON") {
            let dir = if dir.is_empty() || dir == "1" { ".".to_string() } else { dir };
            let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
            for r in &self.records {
                writeln!(f, "{}", r.to_json()).expect("write JSON line");
            }
            println!("\nwrote {} record(s) to {}", self.records.len(), path.display());
        }
        self.records
    }

    fn run_one<T>(&mut self, group: &str, id: &str, mut f: impl FnMut() -> T) -> Record {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut samples: Vec<Duration> = (0..self.iters)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        samples.sort_unstable();
        let n = samples.len();
        let total: Duration = samples.iter().sum();
        let record = Record {
            group: group.to_string(),
            id: id.to_string(),
            iters: self.iters,
            min: samples[0],
            mean: total / self.iters,
            median: samples[n / 2],
            p95: samples[(n * 95).div_ceil(100).saturating_sub(1).min(n - 1)],
        };
        println!(
            "{:<36} median {:>9}  p95 {:>9}  min {:>9}  (n={})",
            format!("{}/{}", group, id),
            fmt_duration(record.median),
            fmt_duration(record.p95),
            fmt_duration(record.min),
            record.iters,
        );
        self.records.push(record.clone());
        record
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    group: String,
}

impl Group<'_> {
    /// Times `f` and records the measurement under `id`.
    pub fn bench<T>(&mut self, id: &str, f: impl FnMut() -> T) -> Record {
        let group = self.group.clone();
        self.harness.run_one(&group, id, f)
    }
}

fn env_u32(name: &str, default: u32) -> u32 {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name}={v} is not a valid integer")),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_monotone_sane() {
        let mut h = Harness::new("selftest");
        h.warmup = 1;
        h.iters = 9;
        let mut g = h.group("sanity");
        let r = g.bench("spin", || {
            // A workload long enough to rise above timer resolution.
            let mut acc = 0u64;
            for i in 0..20_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(r.min > Duration::ZERO);
        assert!(r.min <= r.median);
        assert!(r.median <= r.p95);
        assert!(r.mean >= r.min && r.mean <= r.p95.max(r.mean));
        assert_eq!(r.iters, 9);
    }

    #[test]
    fn json_line_shape() {
        let r = Record {
            group: "g".into(),
            id: "id/2".into(),
            iters: 5,
            min: Duration::from_nanos(100),
            mean: Duration::from_nanos(150),
            median: Duration::from_nanos(140),
            p95: Duration::from_nanos(200),
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in ["\"group\":\"g\"", "\"id\":\"id/2\"", "\"iters\":5", "\"median_ns\":140"] {
            assert!(j.contains(key), "{j} missing {key}");
        }
    }

    #[test]
    fn harness_collects_records() {
        let mut h = Harness::new("selftest2");
        h.warmup = 0;
        h.iters = 3;
        {
            let mut g = h.group("a");
            g.bench("x", || 1 + 1);
            g.bench("y", || 2 + 2);
        }
        let records = h.records().to_vec();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].group, "a");
        assert_eq!(records[1].id, "y");
    }
}
