//! Zero-dependency structured tracing for the HFTA workspace.
//!
//! The analyzer engines emit *spans* (timed, nested regions such as a
//! characterization of one module or one refinement round) and *events*
//! (instantaneous facts such as a SAT solve episode or a cone-signature
//! hit). A [`Tracer`] collects them into a per-worker buffer; scoped
//! worker threads get their own buffer via [`Tracer::fork`] and the
//! parent merges them back **in a deterministic order** (chunk order,
//! class order — never join order) with [`Tracer::absorb`], so a traced
//! run produces the same record sequence every time modulo timestamps.
//!
//! A disabled tracer is a `None` and every operation is a single branch;
//! callers guard expensive field construction behind
//! [`Tracer::is_enabled`]. Tracing must never influence analysis
//! results: the buffer is append-only data on the side.
//!
//! Finished buffers land in a [`Trace`], which renders three ways:
//!
//! * [`Trace::to_jsonl`] — one JSON object per record (machine-readable,
//!   the `--trace-json` / `HFTA_TRACE_JSON` format),
//! * [`Trace::render_tree`] — an indented human-readable span tree
//!   (the `--trace` format),
//! * [`Trace::folded_stacks`] — `a;b;c <self-µs>` lines consumable by
//!   `flamegraph.pl` / `inferno-flamegraph`.
//!
//! [`TraceSink`] is the shareable handle the unified `AnalysisConfig`
//! carries: analyzers pull a [`Tracer`] out of it, instrument, and push
//! the buffer back. Its `PartialEq` is always-true (like the stats
//! wall-clock fields) so it can ride inside structs whose equality the
//! determinism tests pin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A field value attached to a span or event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// Unsigned counter (the common case: conflicts, hits, rounds).
    U64(u64),
    /// Signed quantity (e.g. a timing value that may be negative).
    I64(i64),
    /// Boolean flag (e.g. `degraded`).
    Bool(bool),
    /// Short string (module names, outcome labels).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

/// Whether a record is a timed span or an instantaneous event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// A nested, timed region. `dur_micros` is filled when the span ends.
    Span {
        /// Wall-clock duration of the span in microseconds.
        dur_micros: u64,
    },
    /// An instantaneous point fact.
    Event,
}

/// One trace record: a span or an event with its structured fields.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Record {
    /// Static record name (e.g. `"sat_episode"`, `"characterize_module"`).
    pub name: &'static str,
    /// Worker index: 0 for the main thread, `>= 1` for forked workers.
    pub worker: u32,
    /// Absolute nesting depth (top-level spans sit at 0).
    pub depth: u16,
    /// Microseconds since the trace epoch at which the record started.
    pub at_micros: u64,
    /// Span (with duration) or event.
    pub kind: Kind,
    /// Structured key/value payload.
    pub fields: Vec<(&'static str, Value)>,
}

/// Handle to an open span, returned by [`Tracer::begin`].
///
/// Must be closed with [`Tracer::end`] / [`Tracer::end_with`] on the
/// same tracer, in LIFO order.
#[derive(Clone, Copy, Debug)]
#[must_use = "a span must be closed with Tracer::end / Tracer::end_with"]
pub struct SpanId(usize);

const DISABLED_SPAN: usize = usize::MAX;

struct Buf {
    epoch: Instant,
    worker: u32,
    base_depth: u16,
    open: Vec<usize>,
    records: Vec<Record>,
}

impl Buf {
    fn depth(&self) -> u16 {
        self.base_depth + self.open.len() as u16
    }
}

/// Per-thread trace buffer. Cheap to pass around; disabled by default.
#[derive(Default)]
pub struct Tracer {
    buf: Option<Box<Buf>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.buf {
            Some(b) => write!(f, "Tracer(on, {} records)", b.records.len()),
            None => write!(f, "Tracer(off)"),
        }
    }
}

impl Tracer {
    /// A tracer that records nothing; every operation is a no-op branch.
    pub fn disabled() -> Self {
        Tracer { buf: None }
    }

    /// A fresh recording tracer with its epoch set to now.
    pub fn enabled() -> Self {
        Self::with_epoch(Instant::now(), 0, 0)
    }

    fn with_epoch(epoch: Instant, worker: u32, base_depth: u16) -> Self {
        Tracer {
            buf: Some(Box::new(Buf {
                epoch,
                worker,
                base_depth,
                open: Vec::new(),
                records: Vec::new(),
            })),
        }
    }

    /// True when this tracer records. Guard expensive field
    /// construction behind this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Open a span. Returns a handle that must be closed with
    /// [`Tracer::end`] / [`Tracer::end_with`] in LIFO order.
    #[inline]
    pub fn begin(&mut self, name: &'static str) -> SpanId {
        match &mut self.buf {
            None => SpanId(DISABLED_SPAN),
            Some(buf) => {
                let idx = buf.records.len();
                let rec = Record {
                    name,
                    worker: buf.worker,
                    depth: buf.depth(),
                    at_micros: buf.epoch.elapsed().as_micros() as u64,
                    kind: Kind::Span { dur_micros: 0 },
                    fields: Vec::new(),
                };
                buf.records.push(rec);
                buf.open.push(idx);
                SpanId(idx)
            }
        }
    }

    /// Close a span with no extra fields.
    #[inline]
    pub fn end(&mut self, id: SpanId) {
        self.end_with(id, Vec::new());
    }

    /// Close a span, attaching fields gathered while it ran.
    pub fn end_with(&mut self, id: SpanId, fields: Vec<(&'static str, Value)>) {
        let Some(buf) = &mut self.buf else { return };
        let top = buf
            .open
            .pop()
            .expect("Tracer::end called with no open span");
        debug_assert_eq!(top, id.0, "spans must close in LIFO order");
        let now = buf.epoch.elapsed().as_micros() as u64;
        let rec = &mut buf.records[top];
        rec.kind = Kind::Span {
            dur_micros: now.saturating_sub(rec.at_micros),
        };
        if !fields.is_empty() {
            rec.fields.extend(fields);
        }
    }

    /// Record an instantaneous event at the current depth.
    pub fn event(&mut self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        let Some(buf) = &mut self.buf else { return };
        let rec = Record {
            name,
            worker: buf.worker,
            depth: buf.depth(),
            at_micros: buf.epoch.elapsed().as_micros() as u64,
            kind: Kind::Event,
            fields,
        };
        buf.records.push(rec);
    }

    /// Create a child tracer for a scoped worker thread. The child
    /// shares the epoch and records at one level below the parent's
    /// current depth; `worker` labels its records (use a deterministic
    /// index such as chunk position, never a thread id).
    ///
    /// Merge the child back with [`Tracer::absorb`] **in a
    /// deterministic order** after the scope joins. Between fork and
    /// absorb the parent must not open deeper spans, so the merged
    /// record sequence still nests correctly.
    pub fn fork(&self, worker: u32) -> Tracer {
        match &self.buf {
            None => Tracer::disabled(),
            Some(buf) => Self::with_epoch(buf.epoch, worker, buf.depth()),
        }
    }

    /// Append a finished child buffer's records to this tracer.
    pub fn absorb(&mut self, child: Tracer) {
        let (Some(buf), Some(mut cb)) = (&mut self.buf, child.buf) else {
            return;
        };
        debug_assert!(cb.open.is_empty(), "absorbed tracer has open spans");
        buf.records.append(&mut cb.records);
    }

    /// Consume the tracer and return its records as a [`Trace`].
    pub fn finish(self) -> Trace {
        match self.buf {
            None => Trace {
                records: Vec::new(),
            },
            Some(buf) => {
                debug_assert!(buf.open.is_empty(), "finished tracer has open spans");
                Trace {
                    records: buf.records,
                }
            }
        }
    }
}

struct SinkInner {
    epoch: Instant,
    records: Mutex<Vec<Record>>,
}

/// Shareable trace destination carried by `AnalysisConfig`.
///
/// Analyzer entry points pull a [`Tracer`] out of the sink
/// ([`TraceSink::tracer`]), instrument their run, and push the buffer
/// back ([`TraceSink::absorb`]); the caller finally collects everything
/// with [`TraceSink::drain`]. A disabled (default) sink hands out
/// disabled tracers.
///
/// Equality is always-true so the sink can live inside structs whose
/// equality the determinism tests compare (same convention as the
/// stats wall-clock fields).
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TraceSink({})",
            if self.inner.is_some() { "on" } else { "off" }
        )
    }
}

impl PartialEq for TraceSink {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Eq for TraceSink {}

impl TraceSink {
    /// A sink that collects nothing and hands out disabled tracers.
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// A collecting sink with its epoch set to now.
    pub fn enabled() -> Self {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                epoch: Instant::now(),
                records: Mutex::new(Vec::new()),
            })),
        }
    }

    /// True when this sink collects records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Hand out a tracer recording against this sink's epoch (disabled
    /// if the sink is).
    pub fn tracer(&self) -> Tracer {
        match &self.inner {
            None => Tracer::disabled(),
            Some(inner) => Tracer::with_epoch(inner.epoch, 0, 0),
        }
    }

    /// Append a finished tracer's records to the sink.
    pub fn absorb(&self, tracer: Tracer) {
        let Some(inner) = &self.inner else { return };
        let mut records = tracer.finish().records;
        if records.is_empty() {
            return;
        }
        inner
            .records
            .lock()
            .expect("trace sink poisoned")
            .append(&mut records);
    }

    /// Take every record collected so far.
    pub fn drain(&self) -> Trace {
        let records = match &self.inner {
            None => Vec::new(),
            Some(inner) => std::mem::take(&mut *inner.records.lock().expect("trace sink poisoned")),
        };
        Trace { records }
    }
}

/// A finished, ordered sequence of trace records.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Trace {
    records: Vec<Record>,
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_value_json(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => {
            out.push('"');
            json_escape(out, s);
            out.push('"');
        }
    }
}

fn render_fields(fields: &[(&'static str, Value)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(k);
        out.push('=');
        match v {
            Value::Str(s) => out.push_str(s),
            _ => push_value_json(&mut out, v),
        }
    }
    out
}

impl Trace {
    /// The records in deterministic merge order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// JSON-Lines export: one object per record.
    ///
    /// Fixed keys: `kind` (`"span"`/`"event"`), `name`, `worker`,
    /// `depth`, `at_us`, and `dur_us` (spans only). Structured fields
    /// follow under their own keys.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str("{\"kind\":\"");
            out.push_str(match rec.kind {
                Kind::Span { .. } => "span",
                Kind::Event => "event",
            });
            out.push_str("\",\"name\":\"");
            json_escape(&mut out, rec.name);
            out.push_str("\",\"worker\":");
            out.push_str(&rec.worker.to_string());
            out.push_str(",\"depth\":");
            out.push_str(&rec.depth.to_string());
            out.push_str(",\"at_us\":");
            out.push_str(&rec.at_micros.to_string());
            if let Kind::Span { dur_micros } = rec.kind {
                out.push_str(",\"dur_us\":");
                out.push_str(&dur_micros.to_string());
            }
            for (k, v) in &rec.fields {
                out.push_str(",\"");
                json_escape(&mut out, k);
                out.push_str("\":");
                push_value_json(&mut out, v);
            }
            out.push_str("}\n");
        }
        out
    }

    /// Human-readable span tree, indented by depth. Events render as
    /// `· name` bullets inside their enclosing span.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            for _ in 0..rec.depth {
                out.push_str("  ");
            }
            match rec.kind {
                Kind::Span { dur_micros } => {
                    out.push_str(rec.name);
                    out.push_str(&format!(" [{dur_micros}us"));
                    if rec.worker != 0 {
                        out.push_str(&format!(", w{}", rec.worker));
                    }
                    out.push(']');
                }
                Kind::Event => {
                    out.push_str("· ");
                    out.push_str(rec.name);
                }
            }
            let fields = render_fields(&rec.fields);
            if !fields.is_empty() {
                out.push_str(" (");
                out.push_str(&fields);
                out.push(')');
            }
            out.push('\n');
        }
        out
    }

    /// Folded-stacks output for flamegraph tools: one
    /// `root;child;leaf <self-µs>` line per distinct span path, with
    /// self time (span duration minus child span durations) aggregated
    /// across occurrences and sorted by path.
    pub fn folded_stacks(&self) -> String {
        // (name, dur, children_dur) — reconstruct nesting from the
        // depth sequence; merge discipline guarantees a span's records
        // sit between its begin and the next record at <= its depth.
        let mut stack: Vec<(&'static str, u64, u64)> = Vec::new();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        let pop = |stack: &mut Vec<(&'static str, u64, u64)>,
                   folded: &mut BTreeMap<String, u64>| {
            let (name, dur, child_dur) = stack.pop().expect("folded stack underflow");
            let mut path = String::new();
            for (n, _, _) in stack.iter() {
                path.push_str(n);
                path.push(';');
            }
            path.push_str(name);
            *folded.entry(path).or_insert(0) += dur.saturating_sub(child_dur);
            if let Some(top) = stack.last_mut() {
                top.2 += dur;
            }
        };
        for rec in &self.records {
            let Kind::Span { dur_micros } = rec.kind else {
                continue;
            };
            while stack.len() > rec.depth as usize {
                pop(&mut stack, &mut folded);
            }
            stack.push((rec.name, dur_micros, 0));
        }
        while !stack.is_empty() {
            pop(&mut stack, &mut folded);
        }
        let mut out = String::new();
        for (path, micros) in folded {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&micros.to_string());
            out.push('\n');
        }
        out
    }

    /// Per-worker activity rollup, sorted by worker index: how many
    /// spans/events each (logical) worker recorded and its *self* time
    /// (span durations minus nested span durations, attributed to the
    /// worker that recorded each span — so the busy times sum to total
    /// span time without double counting). The scaling recipe in
    /// EXPERIMENTS.md uses this to see how refinement work spreads over
    /// pool workers.
    pub fn worker_summary(&self) -> Vec<WorkerSummary> {
        let mut map: BTreeMap<u32, WorkerSummary> = BTreeMap::new();
        // (worker, dur, children_dur) — same depth-walk as
        // folded_stacks.
        let mut stack: Vec<(u32, u64, u64)> = Vec::new();
        fn close(stack: &mut Vec<(u32, u64, u64)>, map: &mut BTreeMap<u32, WorkerSummary>) {
            let (worker, dur, child_dur) = stack.pop().expect("summary stack underflow");
            let entry = map.entry(worker).or_insert(WorkerSummary {
                worker,
                ..WorkerSummary::default()
            });
            entry.busy_micros += dur.saturating_sub(child_dur);
            if let Some(top) = stack.last_mut() {
                top.2 += dur;
            }
        }
        for rec in &self.records {
            let entry = map.entry(rec.worker).or_insert(WorkerSummary {
                worker: rec.worker,
                ..WorkerSummary::default()
            });
            match rec.kind {
                Kind::Event => entry.events += 1,
                Kind::Span { dur_micros } => {
                    entry.spans += 1;
                    while stack.len() > rec.depth as usize {
                        close(&mut stack, &mut map);
                    }
                    stack.push((rec.worker, dur_micros, 0));
                }
            }
        }
        while !stack.is_empty() {
            close(&mut stack, &mut map);
        }
        map.into_values().collect()
    }
}

/// One worker's row in [`Trace::worker_summary`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WorkerSummary {
    /// Logical worker index: 0 for the main thread, `>= 1` for forked
    /// workers (class/task indices, not OS thread ids — stable across
    /// schedules).
    pub worker: u32,
    /// Spans this worker recorded.
    pub spans: u64,
    /// Events this worker recorded.
    pub events: u64,
    /// Self time of this worker's spans, in microseconds.
    pub busy_micros: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_a_noop() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        let s = t.begin("outer");
        t.event("ev", vec![("k", Value::U64(1))]);
        t.end(s);
        let trace = t.finish();
        assert!(trace.is_empty());
        assert_eq!(trace.to_jsonl(), "");
    }

    #[test]
    fn spans_nest_and_events_sit_inside() {
        let mut t = Tracer::enabled();
        let outer = t.begin("outer");
        t.event("hit", vec![("n", 3usize.into())]);
        let inner = t.begin("inner");
        t.end(inner);
        t.end_with(outer, vec![("total", 3usize.into())]);
        let trace = t.finish();
        let recs = trace.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].name, "outer");
        assert_eq!(recs[0].depth, 0);
        assert!(matches!(recs[0].kind, Kind::Span { .. }));
        assert_eq!(recs[0].fields, vec![("total", Value::U64(3))]);
        assert_eq!(recs[1].name, "hit");
        assert_eq!(recs[1].depth, 1);
        assert_eq!(recs[1].kind, Kind::Event);
        assert_eq!(recs[2].name, "inner");
        assert_eq!(recs[2].depth, 1);
    }

    #[test]
    fn worker_summary_attributes_self_time() {
        let mut t = Tracer::enabled();
        let outer = t.begin("round");
        let mut w1 = t.fork(1);
        let s = w1.begin("class");
        w1.event("probe", vec![]);
        w1.end(s);
        let mut w2 = t.fork(2);
        w2.event("probe", vec![]);
        t.absorb(w1);
        t.absorb(w2);
        t.end(outer);
        let trace = t.finish();
        let summary = trace.worker_summary();
        assert_eq!(summary.len(), 3);
        assert_eq!(
            summary.iter().map(|w| w.worker).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(summary[0].spans, 1);
        assert_eq!(summary[1].spans, 1);
        assert_eq!(summary[1].events, 1);
        assert_eq!(summary[2].spans, 0);
        assert_eq!(summary[2].events, 1);
        // Self time never double counts: workers sum to total span
        // time.
        let total: u64 = summary.iter().map(|w| w.busy_micros).sum();
        let Kind::Span { dur_micros } = trace.records()[0].kind else {
            panic!("outer span first");
        };
        let Kind::Span {
            dur_micros: inner_d,
        } = trace
            .records()
            .iter()
            .find(|r| r.name == "class")
            .unwrap()
            .kind
        else {
            panic!("class span");
        };
        let _ = inner_d;
        assert_eq!(total, dur_micros);
    }

    #[test]
    fn fork_absorb_preserves_depth_and_worker() {
        let mut t = Tracer::enabled();
        let outer = t.begin("parallel");
        let mut c1 = t.fork(1);
        let s = c1.begin("chunk");
        c1.event("item", vec![]);
        c1.end(s);
        let mut c2 = t.fork(2);
        let s = c2.begin("chunk");
        c2.end(s);
        t.absorb(c1);
        t.absorb(c2);
        t.end(outer);
        let trace = t.finish();
        let recs = trace.records();
        assert_eq!(
            recs.iter()
                .map(|r| (r.name, r.worker, r.depth))
                .collect::<Vec<_>>(),
            vec![
                ("parallel", 0, 0),
                ("chunk", 1, 1),
                ("item", 1, 2),
                ("chunk", 2, 1),
            ]
        );
    }

    #[test]
    fn jsonl_schema_and_escaping() {
        let mut t = Tracer::enabled();
        let s = t.begin("span");
        t.event(
            "ev",
            vec![
                ("s", "a\"b\\c\nd".into()),
                ("i", Value::I64(-4)),
                ("b", true.into()),
            ],
        );
        t.end(s);
        let jsonl = t.finish().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"kind\":\"span\",\"name\":\"span\""));
        assert!(lines[0].contains("\"dur_us\":"));
        assert!(lines[1].starts_with("{\"kind\":\"event\",\"name\":\"ev\""));
        assert!(lines[1].contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert!(lines[1].contains("\"i\":-4"));
        assert!(lines[1].contains("\"b\":true"));
        assert!(!lines[1].contains("dur_us"));
    }

    #[test]
    fn folded_stacks_subtract_child_time() {
        let records = vec![
            Record {
                name: "root",
                worker: 0,
                depth: 0,
                at_micros: 0,
                kind: Kind::Span { dur_micros: 100 },
                fields: vec![],
            },
            Record {
                name: "child",
                worker: 0,
                depth: 1,
                at_micros: 10,
                kind: Kind::Span { dur_micros: 30 },
                fields: vec![],
            },
            Record {
                name: "child",
                worker: 0,
                depth: 1,
                at_micros: 50,
                kind: Kind::Span { dur_micros: 20 },
                fields: vec![],
            },
        ];
        let trace = Trace { records };
        let folded = trace.folded_stacks();
        assert_eq!(folded, "root 50\nroot;child 50\n");
    }

    #[test]
    fn sink_roundtrip_and_equality() {
        let sink = TraceSink::enabled();
        assert!(sink.is_enabled());
        let mut t = sink.tracer();
        let s = t.begin("run");
        t.end(s);
        sink.absorb(t);
        assert_eq!(sink, TraceSink::disabled());
        let trace = sink.drain();
        assert_eq!(trace.len(), 1);
        assert!(sink.drain().is_empty());

        let off = TraceSink::default();
        assert!(!off.is_enabled());
        assert!(!off.tracer().is_enabled());
    }

    #[test]
    fn render_tree_indents_by_depth() {
        let mut t = Tracer::enabled();
        let a = t.begin("a");
        t.event("e", vec![("k", 7usize.into())]);
        t.end(a);
        let tree = t.finish().render_tree();
        assert!(tree.starts_with("a ["));
        assert!(tree.contains("\n  · e (k=7)\n"));
    }
}
