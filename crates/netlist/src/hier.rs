use std::collections::HashMap;

use crate::{GateKind, NetId, Netlist, NetlistError};

/// An instance of a module inside a [`Composite`].
///
/// Connections are positional: `inputs[i]` is the composite net bound to
/// the referenced module's `i`-th primary input, and likewise for
/// `outputs`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Instance {
    /// Instance name, unique within the composite.
    pub name: String,
    /// Name of the instantiated module.
    pub module: String,
    /// Composite nets bound to the module's primary inputs.
    pub inputs: Vec<NetId>,
    /// Composite nets bound to the module's primary outputs.
    pub outputs: Vec<NetId>,
}

/// A hierarchical module: a set of nets connecting module instances.
///
/// The paper's experiments use hierarchy depth 1 (a composite of leaf
/// modules, no glue logic), which is what the analyses consume;
/// [`Design::flatten`] supports arbitrary depth.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Composite {
    name: String,
    net_names: Vec<String>,
    net_by_name: HashMap<String, NetId>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    instances: Vec<Instance>,
}

impl Composite {
    /// Creates an empty composite module.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Composite {
        Composite {
            name: name.into(),
            net_names: Vec::new(),
            net_by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            instances: Vec::new(),
        }
    }

    /// The module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a net; duplicate names get a unique suffix.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let mut name = name.into();
        if self.net_by_name.contains_key(&name) {
            let mut i = 1usize;
            loop {
                let candidate = format!("{name}#{i}");
                if !self.net_by_name.contains_key(&candidate) {
                    name = candidate;
                    break;
                }
                i += 1;
            }
        }
        let id = NetId::from_index(self.net_names.len());
        self.net_by_name.insert(name.clone(), id);
        self.net_names.push(name);
        id
    }

    /// Adds a net and marks it as a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.inputs.push(id);
        id
    }

    /// Marks an existing net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Adds an instance of `module` with positional connections.
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        module: impl Into<String>,
        inputs: &[NetId],
        outputs: &[NetId],
    ) {
        self.instances.push(Instance {
            name: name.into(),
            module: module.into(),
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
        });
    }

    /// Primary inputs in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The instances in declaration order.
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// The name of a net.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Looks a net up by name.
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_by_name.get(name).copied()
    }

    /// Returns instance indices in a topological order (producers before
    /// consumers), as the paper's hierarchical propagation requires.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if instances form a
    /// combinational cycle, or [`NetlistError::MultipleDrivers`] if two
    /// instances drive the same net.
    pub fn instance_topo_order(&self) -> Result<Vec<usize>, NetlistError> {
        let mut producer: Vec<Option<usize>> = vec![None; self.net_count()];
        for (i, inst) in self.instances.iter().enumerate() {
            for &out in &inst.outputs {
                if producer[out.index()].is_some() || self.inputs.contains(&out) {
                    return Err(NetlistError::MultipleDrivers {
                        net: self.net_name(out).to_string(),
                    });
                }
                producer[out.index()] = Some(i);
            }
        }
        let mut remaining: Vec<usize> = self
            .instances
            .iter()
            .map(|inst| {
                inst.inputs
                    .iter()
                    .filter(|n| producer[n.index()].is_some())
                    .count()
            })
            .collect();
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); self.net_count()];
        for (i, inst) in self.instances.iter().enumerate() {
            for &inp in &inst.inputs {
                consumers[inp.index()].push(i);
            }
        }
        let mut ready: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == 0)
            .map(|(i, _)| i)
            .collect();
        let mut order = Vec::with_capacity(self.instances.len());
        while let Some(i) = ready.pop() {
            order.push(i);
            for &out in &self.instances[i].outputs {
                for &c in &consumers[out.index()] {
                    remaining[c] -= 1;
                    if remaining[c] == 0 {
                        ready.push(c);
                    }
                }
            }
        }
        if order.len() != self.instances.len() {
            let stuck = remaining
                .iter()
                .position(|&r| r > 0)
                .map(|i| self.instances[i].name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { net: stuck });
        }
        Ok(order)
    }
}

/// The body of a [`ModuleDef`]: a flat leaf or a composite of instances.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum ModuleBody {
    /// A flat gate-level module.
    Leaf(Netlist),
    /// A hierarchical module.
    Composite(Composite),
}

/// A named module definition within a [`Design`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModuleDef {
    /// Module name, unique within the design.
    pub name: String,
    /// The module body.
    pub body: ModuleBody,
}

/// A hierarchical design: a library of module definitions.
///
/// # Example
///
/// ```
/// use hfta_netlist::{Composite, Design, GateKind, Netlist};
///
/// # fn main() -> Result<(), hfta_netlist::NetlistError> {
/// let mut inv = Netlist::new("inv");
/// let a = inv.add_input("a");
/// let z = inv.add_net("z");
/// inv.add_gate(GateKind::Not, &[a], z, 1)?;
/// inv.mark_output(z);
///
/// let mut top = Composite::new("top");
/// let x = top.add_input("x");
/// let m = top.add_net("m");
/// let y = top.add_net("y");
/// top.add_instance("u0", "inv", &[x], &[m]);
/// top.add_instance("u1", "inv", &[m], &[y]);
/// top.mark_output(y);
///
/// let mut design = Design::new();
/// design.add_leaf(inv)?;
/// design.add_composite(top)?;
/// let flat = design.flatten("top")?;
/// assert_eq!(flat.gate_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Design {
    modules: Vec<ModuleDef>,
    by_name: HashMap<String, usize>,
}

impl Design {
    /// Creates an empty design.
    #[must_use]
    pub fn new() -> Design {
        Design::default()
    }

    /// Adds a leaf module.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Duplicate`] if the name is taken.
    pub fn add_leaf(&mut self, netlist: Netlist) -> Result<(), NetlistError> {
        self.add_module(ModuleDef {
            name: netlist.name().to_string(),
            body: ModuleBody::Leaf(netlist),
        })
    }

    /// Adds a composite module.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Duplicate`] if the name is taken.
    pub fn add_composite(&mut self, composite: Composite) -> Result<(), NetlistError> {
        self.add_module(ModuleDef {
            name: composite.name().to_string(),
            body: ModuleBody::Composite(composite),
        })
    }

    fn add_module(&mut self, def: ModuleDef) -> Result<(), NetlistError> {
        if self.by_name.contains_key(&def.name) {
            return Err(NetlistError::Duplicate {
                what: "module",
                name: def.name,
            });
        }
        self.by_name.insert(def.name.clone(), self.modules.len());
        self.modules.push(def);
        Ok(())
    }

    /// All module definitions in insertion order.
    #[must_use]
    pub fn modules(&self) -> &[ModuleDef] {
        &self.modules
    }

    /// Looks a module up by name.
    #[must_use]
    pub fn module(&self, name: &str) -> Option<&ModuleDef> {
        self.by_name.get(name).map(|&i| &self.modules[i])
    }

    /// Looks a leaf module up by name.
    #[must_use]
    pub fn leaf(&self, name: &str) -> Option<&Netlist> {
        match self.module(name) {
            Some(ModuleDef {
                body: ModuleBody::Leaf(nl),
                ..
            }) => Some(nl),
            _ => None,
        }
    }

    /// Looks a composite module up by name.
    #[must_use]
    pub fn composite(&self, name: &str) -> Option<&Composite> {
        match self.module(name) {
            Some(ModuleDef {
                body: ModuleBody::Composite(c),
                ..
            }) => Some(c),
            _ => None,
        }
    }

    /// Replaces an existing leaf module body, keeping the name.
    ///
    /// This is the entry point for *incremental* analysis: after a
    /// module edit, only the replaced module needs re-characterization.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Unknown`] if no leaf of that name exists.
    pub fn replace_leaf(&mut self, netlist: Netlist) -> Result<(), NetlistError> {
        let idx = *self
            .by_name
            .get(netlist.name())
            .ok_or_else(|| NetlistError::Unknown {
                what: "leaf module",
                name: netlist.name().to_string(),
            })?;
        match &mut self.modules[idx].body {
            ModuleBody::Leaf(slot) => {
                *slot = netlist;
                Ok(())
            }
            ModuleBody::Composite(_) => Err(NetlistError::Unknown {
                what: "leaf module",
                name: netlist.name().to_string(),
            }),
        }
    }

    /// Checks that every instance references an existing module with
    /// matching port counts, and that the hierarchy is non-recursive.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for def in &self.modules {
            if let ModuleBody::Composite(c) = &def.body {
                for inst in c.instances() {
                    let target =
                        self.module(&inst.module)
                            .ok_or_else(|| NetlistError::Unknown {
                                what: "module",
                                name: inst.module.clone(),
                            })?;
                    let (ni, no) = match &target.body {
                        ModuleBody::Leaf(nl) => (nl.inputs().len(), nl.outputs().len()),
                        ModuleBody::Composite(cc) => (cc.inputs().len(), cc.outputs().len()),
                    };
                    if inst.inputs.len() != ni || inst.outputs.len() != no {
                        return Err(NetlistError::PortMismatch {
                            instance: inst.name.clone(),
                            module: inst.module.clone(),
                            expected: ni + no,
                            got: inst.inputs.len() + inst.outputs.len(),
                        });
                    }
                }
                c.instance_topo_order()?;
            }
        }
        // Hierarchy recursion check: DFS over the instantiation graph.
        for def in &self.modules {
            self.check_recursion(&def.name, &mut Vec::new())?;
        }
        Ok(())
    }

    fn check_recursion(&self, name: &str, stack: &mut Vec<String>) -> Result<(), NetlistError> {
        if stack.iter().any(|s| s == name) {
            return Err(NetlistError::RecursiveHierarchy {
                module: name.to_string(),
            });
        }
        if let Some(ModuleDef {
            body: ModuleBody::Composite(c),
            ..
        }) = self.module(name)
        {
            stack.push(name.to_string());
            for inst in c.instances() {
                self.check_recursion(&inst.module, stack)?;
            }
            stack.pop();
        }
        Ok(())
    }

    /// Flattens the module `top` into an equivalent flat [`Netlist`].
    ///
    /// Internal nets of instantiated modules are renamed
    /// `instance/net`. Multi-level hierarchies are expanded recursively.
    ///
    /// # Errors
    ///
    /// Returns an error if `top` or any referenced module is missing,
    /// port counts mismatch, or the hierarchy is recursive.
    pub fn flatten(&self, top: &str) -> Result<Netlist, NetlistError> {
        self.validate()?;
        let def = self.module(top).ok_or_else(|| NetlistError::Unknown {
            what: "module",
            name: top.to_string(),
        })?;
        match &def.body {
            ModuleBody::Leaf(nl) => Ok(nl.clone()),
            ModuleBody::Composite(c) => self.flatten_composite(c),
        }
    }

    fn flatten_composite(&self, c: &Composite) -> Result<Netlist, NetlistError> {
        let mut flat = Netlist::new(c.name());
        let mut net_map: Vec<Option<NetId>> = vec![None; c.net_count()];
        for &pi in c.inputs() {
            net_map[pi.index()] = Some(flat.add_input(c.net_name(pi)));
        }
        #[allow(clippy::needless_range_loop)] // n is also used to build NetIds
        for n in 0..c.net_count() {
            if net_map[n].is_none() {
                net_map[n] = Some(flat.add_net(c.net_name(NetId::from_index(n))));
            }
        }
        let order = c.instance_topo_order()?;
        for idx in order {
            let inst = &c.instances()[idx];
            let sub = self.flatten(&inst.module)?;
            self.inline(&mut flat, &sub, inst, &net_map)?;
        }
        for &po in c.outputs() {
            flat.mark_output(net_map[po.index()].expect("mapped"));
        }
        Ok(flat)
    }

    /// Copies `sub`'s gates into `flat`, binding ports per `inst`.
    fn inline(
        &self,
        flat: &mut Netlist,
        sub: &Netlist,
        inst: &Instance,
        parent_map: &[Option<NetId>],
    ) -> Result<(), NetlistError> {
        let mut map: Vec<Option<NetId>> = vec![None; sub.net_count()];
        for (k, &pi) in sub.inputs().iter().enumerate() {
            map[pi.index()] = Some(parent_map[inst.inputs[k].index()].expect("mapped"));
        }
        // Passthrough outputs (output net == input net) need a buffer so
        // the parent net is actually driven.
        for (k, &po) in sub.outputs().iter().enumerate() {
            let parent = parent_map[inst.outputs[k].index()].expect("mapped");
            if sub.is_input(po) {
                let src = map[po.index()].expect("input mapped");
                flat.add_gate(GateKind::Buf, &[src], parent, 0)?;
            } else {
                map[po.index()] = Some(parent);
            }
        }
        #[allow(clippy::needless_range_loop)] // n is also used to build NetIds
        for n in 0..sub.net_count() {
            if map[n].is_none() {
                let name = format!("{}/{}", inst.name, sub.net_name(NetId::from_index(n)));
                map[n] = Some(flat.add_net(name));
            }
        }
        for g in sub.gates() {
            // Skip gates feeding passthrough-buffered outputs? No such
            // gates exist: a passthrough output has no driver in `sub`.
            let inputs: Vec<NetId> = g.inputs.iter().map(|n| map[n.index()].unwrap()).collect();
            flat.add_gate(g.kind, &inputs, map[g.output.index()].unwrap(), g.delay)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    fn inv() -> Netlist {
        let mut nl = Netlist::new("inv");
        let a = nl.add_input("a");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::Not, &[a], z, 1).unwrap();
        nl.mark_output(z);
        nl
    }

    fn two_inv_chain() -> Design {
        let mut top = Composite::new("top");
        let x = top.add_input("x");
        let m = top.add_net("m");
        let y = top.add_net("y");
        top.add_instance("u0", "inv", &[x], &[m]);
        top.add_instance("u1", "inv", &[m], &[y]);
        top.mark_output(y);
        let mut design = Design::new();
        design.add_leaf(inv()).unwrap();
        design.add_composite(top).unwrap();
        design
    }

    #[test]
    fn flatten_chain() {
        let design = two_inv_chain();
        let flat = design.flatten("top").unwrap();
        assert_eq!(flat.gate_count(), 2);
        assert_eq!(flat.inputs().len(), 1);
        assert_eq!(flat.outputs().len(), 1);
        // Double inversion is identity.
        let out = sim::eval(&flat, &[true]).unwrap();
        assert_eq!(out, vec![true]);
        let out = sim::eval(&flat, &[false]).unwrap();
        assert_eq!(out, vec![false]);
    }

    #[test]
    fn instance_topo_order_orders_producers_first() {
        let design = two_inv_chain();
        let c = design.composite("top").unwrap();
        let order = c.instance_topo_order().unwrap();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn duplicate_module_rejected() {
        let mut design = Design::new();
        design.add_leaf(inv()).unwrap();
        let err = design.add_leaf(inv()).unwrap_err();
        assert!(matches!(err, NetlistError::Duplicate { .. }));
    }

    #[test]
    fn port_mismatch_rejected() {
        let mut top = Composite::new("top");
        let x = top.add_input("x");
        let y = top.add_net("y");
        let z = top.add_net("z");
        top.add_instance("u0", "inv", &[x, y], &[z]);
        top.mark_output(z);
        let mut design = Design::new();
        design.add_leaf(inv()).unwrap();
        design.add_composite(top).unwrap();
        assert!(matches!(
            design.validate(),
            Err(NetlistError::PortMismatch { .. })
        ));
    }

    #[test]
    fn unknown_module_rejected() {
        let mut top = Composite::new("top");
        let x = top.add_input("x");
        let z = top.add_net("z");
        top.add_instance("u0", "ghost", &[x], &[z]);
        top.mark_output(z);
        let mut design = Design::new();
        design.add_composite(top).unwrap();
        assert!(matches!(
            design.validate(),
            Err(NetlistError::Unknown { .. })
        ));
    }

    #[test]
    fn recursive_hierarchy_rejected() {
        let mut a = Composite::new("a");
        let x = a.add_input("x");
        let z = a.add_net("z");
        a.add_instance("u", "a", &[x], &[z]);
        a.mark_output(z);
        let mut design = Design::new();
        design.add_composite(a).unwrap();
        assert!(matches!(
            design.validate(),
            Err(NetlistError::RecursiveHierarchy { .. })
        ));
    }

    #[test]
    fn replace_leaf_swaps_body() {
        let mut design = two_inv_chain();
        let mut buf = Netlist::new("inv"); // same name, different body
        let a = buf.add_input("a");
        let z = buf.add_net("z");
        buf.add_gate(GateKind::Buf, &[a], z, 5).unwrap();
        buf.mark_output(z);
        design.replace_leaf(buf).unwrap();
        let flat = design.flatten("top").unwrap();
        let out = sim::eval(&flat, &[true]).unwrap();
        assert_eq!(out, vec![true]);
        assert_eq!(flat.gates()[0].delay, 5);
    }

    #[test]
    fn passthrough_output_gets_buffer() {
        let mut wire = Netlist::new("wire");
        let a = wire.add_input("a");
        wire.mark_output(a);
        let mut top = Composite::new("top");
        let x = top.add_input("x");
        let y = top.add_net("y");
        top.add_instance("w", "wire", &[x], &[y]);
        top.mark_output(y);
        let mut design = Design::new();
        design.add_leaf(wire).unwrap();
        design.add_composite(top).unwrap();
        let flat = design.flatten("top").unwrap();
        assert_eq!(flat.gate_count(), 1);
        assert_eq!(flat.gates()[0].kind, GateKind::Buf);
        let out = sim::eval(&flat, &[true]).unwrap();
        assert_eq!(out, vec![true]);
    }

    #[test]
    fn nested_hierarchy_flattens() {
        // mid = two inv in series; top = two mids in series -> identity
        let mut mid = Composite::new("mid");
        let x = mid.add_input("x");
        let m = mid.add_net("m");
        let y = mid.add_net("y");
        mid.add_instance("i0", "inv", &[x], &[m]);
        mid.add_instance("i1", "inv", &[m], &[y]);
        mid.mark_output(y);
        let mut top = Composite::new("top");
        let p = top.add_input("p");
        let q = top.add_net("q");
        let r = top.add_net("r");
        top.add_instance("m0", "mid", &[p], &[q]);
        top.add_instance("m1", "mid", &[q], &[r]);
        top.mark_output(r);
        let mut design = Design::new();
        design.add_leaf(inv()).unwrap();
        design.add_composite(mid).unwrap();
        design.add_composite(top).unwrap();
        let flat = design.flatten("top").unwrap();
        assert_eq!(flat.gate_count(), 4);
        assert_eq!(sim::eval(&flat, &[true]).unwrap(), vec![true]);
    }
}
