use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Neg, Sub};

/// Integer time with `±∞` sentinels.
///
/// Every timing quantity in HFTA — gate delays, arrival times, required
/// times, the entries of timing tuples — is a `Time`. The paper's
/// experiments use the unit delay model, so integer time is exact, and
/// it makes the binary search used by XBD0 delay computation terminate
/// without tolerance fiddling.
///
/// `Time::NEG_INF` encodes "stability of this input is not even
/// required" in a required-time tuple (the paper writes `∞` for the
/// required time; a delay is the *negated* required time, hence `−∞`).
/// Addition saturates at the infinities: `NEG_INF + x = NEG_INF` and
/// `POS_INF + x = POS_INF` for any finite `x`.
///
/// # Example
///
/// ```
/// use hfta_netlist::Time;
///
/// let a = Time::new(3);
/// assert_eq!(a + Time::new(4), Time::new(7));
/// assert_eq!(Time::NEG_INF + a, Time::NEG_INF);
/// assert!(Time::NEG_INF < a && a < Time::POS_INF);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Time {
    /// Negative infinity: earlier than every finite time.
    pub const NEG_INF: Time = Time(i64::MIN);
    /// Positive infinity: later than every finite time.
    pub const POS_INF: Time = Time(i64::MAX);
    /// Time zero.
    pub const ZERO: Time = Time(0);

    /// Creates a finite time.
    ///
    /// # Panics
    ///
    /// Panics if `t` collides with an infinity sentinel
    /// (`i64::MIN`/`i64::MAX`), which no realistic circuit produces.
    #[must_use]
    pub fn new(t: i64) -> Time {
        assert!(
            t != i64::MIN && t != i64::MAX,
            "finite Time must not equal an infinity sentinel"
        );
        Time(t)
    }

    /// Returns `true` if this time is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self != Time::NEG_INF && self != Time::POS_INF
    }

    /// Returns the finite value, or `None` for `±∞`.
    #[must_use]
    pub fn finite(self) -> Option<i64> {
        if self.is_finite() {
            Some(self.0)
        } else {
            None
        }
    }

    /// Returns the raw value; infinities map to `i64::MIN`/`i64::MAX`.
    #[must_use]
    pub fn raw(self) -> i64 {
        self.0
    }

    /// Component-wise maximum.
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Component-wise minimum.
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;

    /// Saturating addition: any infinity absorbs.
    ///
    /// # Panics
    ///
    /// Panics when adding `NEG_INF + POS_INF`, which has no meaningful
    /// timing interpretation.
    fn add(self, rhs: Time) -> Time {
        match (self.is_finite(), rhs.is_finite()) {
            (true, true) => Time::new(self.0 + rhs.0),
            (false, true) => self,
            (true, false) => rhs,
            (false, false) => {
                assert_eq!(self, rhs, "cannot add opposite infinities");
                self
            }
        }
    }
}

impl Sub for Time {
    type Output = Time;

    /// Saturating subtraction (`a - b = a + (-b)`).
    fn sub(self, rhs: Time) -> Time {
        self + (-rhs)
    }
}

impl Neg for Time {
    type Output = Time;

    fn neg(self) -> Time {
        if self == Time::NEG_INF {
            Time::POS_INF
        } else if self == Time::POS_INF {
            Time::NEG_INF
        } else {
            Time(-self.0)
        }
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl From<i32> for Time {
    fn from(t: i32) -> Time {
        Time::new(i64::from(t))
    }
}

impl From<u32> for Time {
    fn from(t: u32) -> Time {
        Time::new(i64::from(t))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Time::NEG_INF {
            f.pad("-inf")
        } else if *self == Time::POS_INF {
            f.pad("+inf")
        } else {
            f.pad(&self.0.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_arithmetic() {
        assert_eq!(Time::new(3) + Time::new(4), Time::new(7));
        assert_eq!(Time::new(3) - Time::new(4), Time::new(-1));
        assert_eq!(-Time::new(5), Time::new(-5));
        assert_eq!(Time::ZERO, Time::new(0));
    }

    #[test]
    fn infinities_absorb() {
        assert_eq!(Time::NEG_INF + Time::new(100), Time::NEG_INF);
        assert_eq!(Time::POS_INF + Time::new(-100), Time::POS_INF);
        assert_eq!(Time::NEG_INF + Time::NEG_INF, Time::NEG_INF);
        assert_eq!(-Time::NEG_INF, Time::POS_INF);
        assert_eq!(-Time::POS_INF, Time::NEG_INF);
    }

    #[test]
    #[should_panic(expected = "opposite infinities")]
    fn opposite_infinities_panic() {
        let _ = Time::NEG_INF + Time::POS_INF;
    }

    #[test]
    fn ordering() {
        assert!(Time::NEG_INF < Time::new(i64::MIN + 1));
        assert!(Time::new(i64::MAX - 1) < Time::POS_INF);
        assert_eq!(Time::new(2).max(Time::new(5)), Time::new(5));
        assert_eq!(Time::NEG_INF.max(Time::new(-7)), Time::new(-7));
        assert_eq!(Time::POS_INF.min(Time::new(-7)), Time::new(-7));
    }

    #[test]
    fn display() {
        assert_eq!(Time::new(12).to_string(), "12");
        assert_eq!(Time::NEG_INF.to_string(), "-inf");
        assert_eq!(Time::POS_INF.to_string(), "+inf");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::new(1), Time::new(2), Time::new(3)].into_iter().sum();
        assert_eq!(total, Time::new(6));
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn new_rejects_sentinels() {
        let _ = Time::new(i64::MAX);
    }
}
