//! The HNL (hierarchical netlist) text format.
//!
//! `.bench` cannot express hierarchy, so HFTA defines a small line-based
//! format for hierarchical designs — the paper's input is exactly such a
//! depth-1 description (leaf modules + a top-level composite with no
//! glue logic):
//!
//! ```text
//! module inv
//!   input a
//!   output z
//!   gate not z a delay=1
//! endmodule
//!
//! module top
//!   input x
//!   output y
//!   net m
//!   inst u0 inv x -> m
//!   inst u1 inv m -> y
//! endmodule
//!
//! top top
//! ```
//!
//! * `gate KIND OUT IN... [delay=N]` — a gate in a leaf module (default
//!   delay 1).
//! * `inst NAME MODULE IN... -> OUT...` — an instance in a composite.
//! * A module may contain gates or instances, not both (the paper's "no
//!   glue logic" assumption).
//! * `top NAME` names the root module.

use std::fmt::Write as _;

use crate::{Composite, Design, GateKind, ModuleBody, Netlist, NetlistError};

/// Parses an HNL description.
///
/// Returns the design and the name of the module declared by the `top`
/// directive, if any.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed text and structural
/// errors if the described design is inconsistent.
pub fn parse(text: &str) -> Result<(Design, Option<String>), NetlistError> {
    let mut design = Design::new();
    let mut top = None;
    let mut current: Option<Builder> = None;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty");
        let rest: Vec<&str> = tokens.collect();
        match keyword {
            "module" => {
                if current.is_some() {
                    return Err(err(lineno, "nested `module` (missing endmodule?)"));
                }
                let name = one_arg(&rest, lineno, "module NAME")?;
                current = Some(Builder::new(name));
            }
            "endmodule" => {
                let b = current
                    .take()
                    .ok_or_else(|| err(lineno, "stray endmodule"))?;
                b.finish(&mut design, lineno)?;
            }
            "top" => {
                top = Some(one_arg(&rest, lineno, "top NAME")?.to_string());
            }
            "input" | "output" | "net" | "gate" | "inst" => {
                let b = current
                    .as_mut()
                    .ok_or_else(|| err(lineno, "statement outside a module"))?;
                b.statement(keyword, &rest, lineno)?;
            }
            other => return Err(err(lineno, &format!("unknown keyword `{other}`"))),
        }
    }
    if current.is_some() {
        return Err(err(
            text.lines().count(),
            "missing endmodule at end of file",
        ));
    }
    design.validate()?;
    Ok((design, top))
}

fn err(line: usize, message: &str) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.to_string(),
    }
}

fn one_arg<'a>(rest: &[&'a str], lineno: usize, usage: &str) -> Result<&'a str, NetlistError> {
    if rest.len() != 1 {
        return Err(err(lineno, &format!("usage: {usage}")));
    }
    Ok(rest[0])
}

enum Kind {
    Undecided,
    Leaf,
    Composite,
}

struct Builder {
    name: String,
    kind: Kind,
    inputs: Vec<String>,
    outputs: Vec<String>,
    nets: Vec<String>,
    gates: Vec<(GateKind, String, Vec<String>, u32)>,
    insts: Vec<(String, String, Vec<String>, Vec<String>)>,
}

impl Builder {
    fn new(name: &str) -> Builder {
        Builder {
            name: name.to_string(),
            kind: Kind::Undecided,
            inputs: Vec::new(),
            outputs: Vec::new(),
            nets: Vec::new(),
            gates: Vec::new(),
            insts: Vec::new(),
        }
    }

    fn statement(
        &mut self,
        keyword: &str,
        rest: &[&str],
        lineno: usize,
    ) -> Result<(), NetlistError> {
        match keyword {
            "input" => self.inputs.extend(rest.iter().map(|s| s.to_string())),
            "output" => self.outputs.extend(rest.iter().map(|s| s.to_string())),
            "net" => self.nets.extend(rest.iter().map(|s| s.to_string())),
            "gate" => {
                if matches!(self.kind, Kind::Composite) {
                    return Err(err(lineno, "gates and instances cannot mix in one module"));
                }
                self.kind = Kind::Leaf;
                if rest.len() < 2 {
                    return Err(err(lineno, "usage: gate KIND OUT IN... [delay=N]"));
                }
                let kind = GateKind::from_name(rest[0])
                    .ok_or_else(|| err(lineno, &format!("unknown gate kind `{}`", rest[0])))?;
                let out = rest[1].to_string();
                let mut delay = 1u32;
                let mut ins = Vec::new();
                for tok in &rest[2..] {
                    if let Some(d) = tok.strip_prefix("delay=") {
                        delay = d
                            .parse()
                            .map_err(|_| err(lineno, &format!("bad delay `{d}`")))?;
                    } else {
                        ins.push(tok.to_string());
                    }
                }
                self.gates.push((kind, out, ins, delay));
            }
            "inst" => {
                if matches!(self.kind, Kind::Leaf) {
                    return Err(err(lineno, "gates and instances cannot mix in one module"));
                }
                self.kind = Kind::Composite;
                if rest.len() < 3 {
                    return Err(err(lineno, "usage: inst NAME MODULE IN... -> OUT..."));
                }
                let inst_name = rest[0].to_string();
                let module = rest[1].to_string();
                let arrow = rest
                    .iter()
                    .position(|&t| t == "->")
                    .ok_or_else(|| err(lineno, "instance needs `->` between inputs and outputs"))?;
                let ins = rest[2..arrow].iter().map(|s| s.to_string()).collect();
                let outs = rest[arrow + 1..].iter().map(|s| s.to_string()).collect();
                self.insts.push((inst_name, module, ins, outs));
            }
            _ => unreachable!(),
        }
        Ok(())
    }

    fn finish(self, design: &mut Design, lineno: usize) -> Result<(), NetlistError> {
        match self.kind {
            Kind::Composite => {
                let mut c = Composite::new(&self.name);
                for n in &self.inputs {
                    c.add_input(n);
                }
                for n in &self.nets {
                    if c.find_net(n).is_none() {
                        c.add_net(n);
                    }
                }
                for n in &self.outputs {
                    if c.find_net(n).is_none() {
                        c.add_net(n);
                    }
                }
                for (name, module, ins, outs) in &self.insts {
                    let mut in_ids = Vec::new();
                    for n in ins {
                        let id = match c.find_net(n) {
                            Some(id) => id,
                            None => c.add_net(n),
                        };
                        in_ids.push(id);
                    }
                    let mut out_ids = Vec::new();
                    for n in outs {
                        let id = match c.find_net(n) {
                            Some(id) => id,
                            None => c.add_net(n),
                        };
                        out_ids.push(id);
                    }
                    c.add_instance(name, module, &in_ids, &out_ids);
                }
                for n in &self.outputs {
                    let id = c
                        .find_net(n)
                        .ok_or_else(|| err(lineno, &format!("undefined output `{n}`")))?;
                    c.mark_output(id);
                }
                design.add_composite(c)
            }
            Kind::Leaf | Kind::Undecided => {
                let mut nl = Netlist::new(&self.name);
                for n in &self.inputs {
                    nl.add_input(n);
                }
                for n in &self.nets {
                    if nl.find_net(n).is_none() {
                        nl.add_net(n);
                    }
                }
                for (_, out, ins, _) in &self.gates {
                    for n in std::iter::once(out).chain(ins) {
                        if nl.find_net(n).is_none() {
                            nl.add_net(n.clone());
                        }
                    }
                }
                for (kind, out, ins, delay) in &self.gates {
                    let out_id = nl.find_net(out).expect("created above");
                    let in_ids: Vec<_> = ins
                        .iter()
                        .map(|n| nl.find_net(n).expect("created above"))
                        .collect();
                    nl.add_gate(*kind, &in_ids, out_id, *delay)?;
                }
                for n in &self.outputs {
                    let id = nl
                        .find_net(n)
                        .ok_or_else(|| err(lineno, &format!("undefined output `{n}`")))?;
                    nl.mark_output(id);
                }
                nl.validate()?;
                design.add_leaf(nl)
            }
        }
    }
}

/// Serializes a design (and optional top name) to HNL text.
///
/// [`parse`] round-trips the output.
#[must_use]
pub fn write(design: &Design, top: Option<&str>) -> String {
    let mut s = String::new();
    for def in design.modules() {
        let _ = writeln!(s, "module {}", def.name);
        match &def.body {
            ModuleBody::Leaf(nl) => {
                for &pi in nl.inputs() {
                    let _ = writeln!(s, "  input {}", nl.net_name(pi));
                }
                for &po in nl.outputs() {
                    let _ = writeln!(s, "  output {}", nl.net_name(po));
                }
                for g in nl.gates() {
                    let ins: Vec<&str> = g.inputs.iter().map(|&n| nl.net_name(n)).collect();
                    let _ = write!(
                        s,
                        "  gate {} {} {}",
                        g.kind.name(),
                        nl.net_name(g.output),
                        ins.join(" ")
                    );
                    if g.delay != 1 {
                        let _ = write!(s, " delay={}", g.delay);
                    }
                    s.push('\n');
                }
            }
            ModuleBody::Composite(c) => {
                for &pi in c.inputs() {
                    let _ = writeln!(s, "  input {}", c.net_name(pi));
                }
                for &po in c.outputs() {
                    let _ = writeln!(s, "  output {}", c.net_name(po));
                }
                for inst in c.instances() {
                    let ins: Vec<&str> = inst.inputs.iter().map(|&n| c.net_name(n)).collect();
                    let outs: Vec<&str> = inst.outputs.iter().map(|&n| c.net_name(n)).collect();
                    let _ = writeln!(
                        s,
                        "  inst {} {} {} -> {}",
                        inst.name,
                        inst.module,
                        ins.join(" "),
                        outs.join(" ")
                    );
                }
            }
        }
        let _ = writeln!(s, "endmodule");
        s.push('\n');
    }
    if let Some(top) = top {
        let _ = writeln!(s, "top {top}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    const CHAIN: &str = "\
module inv
  input a
  output z
  gate not z a delay=1
endmodule

module top
  input x
  output y
  net m
  inst u0 inv x -> m
  inst u1 inv m -> y
endmodule

top top
";

    #[test]
    fn parse_chain() {
        let (design, top) = parse(CHAIN).unwrap();
        assert_eq!(top.as_deref(), Some("top"));
        let flat = design.flatten("top").unwrap();
        assert_eq!(flat.gate_count(), 2);
        assert_eq!(sim::eval(&flat, &[false]).unwrap(), vec![false]);
    }

    #[test]
    fn round_trip() {
        let (design, top) = parse(CHAIN).unwrap();
        let text = write(&design, top.as_deref());
        let (design2, top2) = parse(&text).unwrap();
        assert_eq!(top, top2);
        let f1 = design.flatten("top").unwrap();
        let f2 = design2.flatten("top").unwrap();
        assert!(sim::equivalent_exhaustive(&f1, &f2, 8).unwrap());
    }

    #[test]
    fn mixed_module_rejected() {
        let text = "\
module bad
  input a
  output z
  gate not z a
  inst u0 inv a -> z
endmodule
";
        assert!(matches!(parse(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn missing_endmodule_rejected() {
        assert!(matches!(
            parse("module m\n  input a\n"),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn stray_statement_rejected() {
        assert!(matches!(
            parse("input a\n"),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn leaf_only_design() {
        let text = "\
module and2
  input a b
  output z
  gate and z a b delay=3
endmodule
";
        let (design, top) = parse(text).unwrap();
        assert!(top.is_none());
        let nl = design.leaf("and2").unwrap();
        assert_eq!(nl.gates()[0].delay, 3);
        assert_eq!(nl.inputs().len(), 2);
    }

    #[test]
    fn instance_missing_arrow_rejected() {
        let text = "\
module top
  input a
  output z
  inst u0 inv a z
endmodule
";
        assert!(matches!(parse(text), Err(NetlistError::Parse { .. })));
    }
}
