//! Two- and three-valued logic simulation.
//!
//! Simulation is used throughout the test suite to establish functional
//! equivalence (e.g. that [`Design::flatten`](crate::Design::flatten)
//! preserves behaviour) and by the exact timing engines on small cones.

use crate::{NetId, Netlist, NetlistError};

/// A three-valued logic value: `0`, `1` or unknown (`X`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Tri {
    /// Logic 0.
    F,
    /// Logic 1.
    T,
    /// Unknown.
    X,
}

impl Tri {
    /// Converts from `bool`.
    #[must_use]
    pub fn from_bool(b: bool) -> Tri {
        if b {
            Tri::T
        } else {
            Tri::F
        }
    }

    /// Returns the known Boolean value, or `None` for `X`.
    #[must_use]
    pub fn known(self) -> Option<bool> {
        match self {
            Tri::F => Some(false),
            Tri::T => Some(true),
            Tri::X => None,
        }
    }
}

/// Evaluates the netlist on a full input vector, returning the values of
/// the primary outputs in declaration order.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the number of primary inputs.
///
/// # Example
///
/// ```
/// use hfta_netlist::{Netlist, GateKind, sim};
///
/// # fn main() -> Result<(), hfta_netlist::NetlistError> {
/// let mut nl = Netlist::new("and2");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let z = nl.add_net("z");
/// nl.add_gate(GateKind::And, &[a, b], z, 1)?;
/// nl.mark_output(z);
/// assert_eq!(sim::eval(&nl, &[true, true])?, vec![true]);
/// assert_eq!(sim::eval(&nl, &[true, false])?, vec![false]);
/// # Ok(())
/// # }
/// ```
pub fn eval(netlist: &Netlist, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
    let values = eval_all(netlist, inputs)?;
    Ok(netlist
        .outputs()
        .iter()
        .map(|&o| values[o.index()])
        .collect())
}

/// Evaluates the netlist on a full input vector, returning the value of
/// every net (undriven non-input nets read as `false`).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the number of primary inputs.
pub fn eval_all(netlist: &Netlist, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
    assert_eq!(
        inputs.len(),
        netlist.inputs().len(),
        "input vector length mismatch"
    );
    let mut values = vec![false; netlist.net_count()];
    for (k, &pi) in netlist.inputs().iter().enumerate() {
        values[pi.index()] = inputs[k];
    }
    let order = netlist.topo_gates()?;
    let mut buf = Vec::new();
    for g in order {
        let gate = netlist.gate(g);
        buf.clear();
        buf.extend(gate.inputs.iter().map(|n| values[n.index()]));
        values[gate.output.index()] = gate.kind.eval(&buf);
    }
    Ok(values)
}

/// Three-valued evaluation: unknown inputs propagate as `X` unless the
/// gate output is determined by controlling values.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the number of primary inputs.
pub fn eval_tri(netlist: &Netlist, inputs: &[Tri]) -> Result<Vec<Tri>, NetlistError> {
    assert_eq!(
        inputs.len(),
        netlist.inputs().len(),
        "input vector length mismatch"
    );
    let mut values = vec![Tri::X; netlist.net_count()];
    for (k, &pi) in netlist.inputs().iter().enumerate() {
        values[pi.index()] = inputs[k];
    }
    let order = netlist.topo_gates()?;
    for g in order {
        let gate = netlist.gate(g);
        let vals: Vec<Tri> = gate.inputs.iter().map(|n| values[n.index()]).collect();
        values[gate.output.index()] = eval_gate_tri(gate.kind, &vals);
    }
    Ok(netlist
        .outputs()
        .iter()
        .map(|&o| values[o.index()])
        .collect())
}

fn eval_gate_tri(kind: crate::GateKind, inputs: &[Tri]) -> Tri {
    use crate::GateKind;
    match kind {
        GateKind::Const0 => Tri::F,
        GateKind::Const1 => Tri::T,
        GateKind::Buf => inputs[0],
        GateKind::Not => match inputs[0] {
            Tri::F => Tri::T,
            Tri::T => Tri::F,
            Tri::X => Tri::X,
        },
        GateKind::And | GateKind::Nand => {
            let mut out = if inputs.contains(&Tri::F) {
                Tri::F
            } else if inputs.contains(&Tri::X) {
                Tri::X
            } else {
                Tri::T
            };
            if kind == GateKind::Nand {
                out = eval_gate_tri(GateKind::Not, &[out]);
            }
            out
        }
        GateKind::Or | GateKind::Nor => {
            let mut out = if inputs.contains(&Tri::T) {
                Tri::T
            } else if inputs.contains(&Tri::X) {
                Tri::X
            } else {
                Tri::F
            };
            if kind == GateKind::Nor {
                out = eval_gate_tri(GateKind::Not, &[out]);
            }
            out
        }
        GateKind::Xor | GateKind::Xnor => {
            let out = match (inputs[0].known(), inputs[1].known()) {
                (Some(a), Some(b)) => Tri::from_bool(a ^ b),
                _ => Tri::X,
            };
            if kind == GateKind::Xnor {
                eval_gate_tri(GateKind::Not, &[out])
            } else {
                out
            }
        }
        GateKind::Mux => match inputs[0] {
            Tri::T => inputs[1],
            Tri::F => inputs[2],
            Tri::X => {
                if inputs[1] == inputs[2] && inputs[1] != Tri::X {
                    inputs[1]
                } else {
                    Tri::X
                }
            }
        },
    }
}

/// Exhaustively checks that two netlists with identically ordered ports
/// compute the same Boolean functions (inputs ≤ `max_inputs`).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
///
/// # Panics
///
/// Panics if the port counts differ or exceed `max_inputs`.
pub fn equivalent_exhaustive(
    a: &Netlist,
    b: &Netlist,
    max_inputs: usize,
) -> Result<bool, NetlistError> {
    assert_eq!(a.inputs().len(), b.inputs().len(), "input count mismatch");
    assert_eq!(
        a.outputs().len(),
        b.outputs().len(),
        "output count mismatch"
    );
    let n = a.inputs().len();
    assert!(n <= max_inputs, "too many inputs for exhaustive check");
    for v in 0u64..(1u64 << n) {
        let vector: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
        if eval(a, &vector)? != eval(b, &vector)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Returns the primary inputs in the transitive fanin of `net`.
#[must_use]
pub fn support(netlist: &Netlist, net: NetId) -> Vec<NetId> {
    let (_, sources) = netlist.cone(net);
    sources
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn mux_netlist() -> Netlist {
        let mut nl = Netlist::new("m");
        let s = nl.add_input("s");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::Mux, &[s, a, b], z, 2).unwrap();
        nl.mark_output(z);
        nl
    }

    #[test]
    fn eval_mux() {
        let nl = mux_netlist();
        assert_eq!(eval(&nl, &[true, true, false]).unwrap(), vec![true]);
        assert_eq!(eval(&nl, &[false, true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn tri_unknown_select_with_agreeing_data() {
        let nl = mux_netlist();
        let out = eval_tri(&nl, &[Tri::X, Tri::T, Tri::T]).unwrap();
        assert_eq!(out, vec![Tri::T]);
        let out = eval_tri(&nl, &[Tri::X, Tri::T, Tri::F]).unwrap();
        assert_eq!(out, vec![Tri::X]);
    }

    #[test]
    fn tri_controlling_values_dominate() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::And, &[a, b], z, 1).unwrap();
        nl.mark_output(z);
        assert_eq!(eval_tri(&nl, &[Tri::F, Tri::X]).unwrap(), vec![Tri::F]);
        assert_eq!(eval_tri(&nl, &[Tri::T, Tri::X]).unwrap(), vec![Tri::X]);

        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::Nor, &[a, b], z, 1).unwrap();
        nl.mark_output(z);
        assert_eq!(eval_tri(&nl, &[Tri::T, Tri::X]).unwrap(), vec![Tri::F]);
    }

    #[test]
    fn tri_xor_needs_both_known() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::Xnor, &[a, b], z, 1).unwrap();
        nl.mark_output(z);
        assert_eq!(eval_tri(&nl, &[Tri::T, Tri::X]).unwrap(), vec![Tri::X]);
        assert_eq!(eval_tri(&nl, &[Tri::T, Tri::T]).unwrap(), vec![Tri::T]);
    }

    #[test]
    fn equivalence_check() {
        // NAND(a,b) == NOT(AND(a,b))
        let mut x = Netlist::new("x");
        let a = x.add_input("a");
        let b = x.add_input("b");
        let z = x.add_net("z");
        x.add_gate(GateKind::Nand, &[a, b], z, 1).unwrap();
        x.mark_output(z);

        let mut y = Netlist::new("y");
        let a = y.add_input("a");
        let b = y.add_input("b");
        let t = y.add_net("t");
        let z = y.add_net("z");
        y.add_gate(GateKind::And, &[a, b], t, 1).unwrap();
        y.add_gate(GateKind::Not, &[t], z, 1).unwrap();
        y.mark_output(z);

        assert!(equivalent_exhaustive(&x, &y, 8).unwrap());
    }

    #[test]
    fn support_lists_reaching_inputs() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let _c = nl.add_input("c");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::Or, &[a, b], z, 1).unwrap();
        nl.mark_output(z);
        assert_eq!(support(&nl, z), vec![a, b]);
    }
}
