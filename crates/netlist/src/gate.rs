use std::fmt;

/// Identifier of a net (signal) within a single module.
///
/// `NetId`s are dense indices assigned in creation order; they are only
/// meaningful relative to the [`Netlist`](crate::Netlist) or
/// [`Composite`](crate::Composite) that created them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Returns the dense index of this net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `NetId` from a dense index.
    ///
    /// Useful when iterating `0..netlist.net_count()`.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> NetId {
        NetId(u32::try_from(index).expect("net index overflow"))
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a gate within a single [`Netlist`](crate::Netlist).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Returns the dense index of this gate.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `GateId` from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> GateId {
        GateId(u32::try_from(index).expect("gate index overflow"))
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The primitive gate library.
///
/// The library is deliberately the one needed by the DAC 1998
/// experiments: simple gates plus a 2:1 multiplexer (the carry-skip
/// adder's skip mux). [`GateKind::Mux`] takes its select as the first
/// input: `Mux(s, a, b) = s·a + s̄·b`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// Constant 0 (no inputs).
    Const0,
    /// Constant 1 (no inputs).
    Const1,
    /// Buffer (one input).
    Buf,
    /// Inverter (one input).
    Not,
    /// AND of two or more inputs.
    And,
    /// OR of two or more inputs.
    Or,
    /// NAND of two or more inputs.
    Nand,
    /// NOR of two or more inputs.
    Nor,
    /// Exclusive-OR of exactly two inputs.
    Xor,
    /// Exclusive-NOR of exactly two inputs.
    Xnor,
    /// 2:1 multiplexer `Mux(s, a, b) = s·a + s̄·b` (exactly three inputs).
    Mux,
}

impl GateKind {
    /// Returns the permitted input-count range `(min, max)` for this kind.
    #[must_use]
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Buf | GateKind::Not => (1, 1),
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => (2, usize::MAX),
            GateKind::Xor | GateKind::Xnor => (2, 2),
            GateKind::Mux => (3, 3),
        }
    }

    /// Returns `true` if `n` is a legal number of inputs for this kind.
    #[must_use]
    pub fn accepts_arity(self, n: usize) -> bool {
        let (lo, hi) = self.arity();
        n >= lo && n <= hi
    }

    /// Evaluates the gate function on Boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not a legal arity for this kind.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(
            self.accepts_arity(inputs.len()),
            "{self:?} cannot take {} inputs",
            inputs.len()
        );
        match self {
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&v| v),
            GateKind::Or => inputs.iter().any(|&v| v),
            GateKind::Nand => !inputs.iter().all(|&v| v),
            GateKind::Nor => !inputs.iter().any(|&v| v),
            GateKind::Xor => inputs[0] ^ inputs[1],
            GateKind::Xnor => !(inputs[0] ^ inputs[1]),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[1]
                } else {
                    inputs[2]
                }
            }
        }
    }

    /// The canonical lower-case name used by the text formats.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
        }
    }

    /// Parses a gate kind from its canonical name (case-insensitive).
    #[must_use]
    pub fn from_name(name: &str) -> Option<GateKind> {
        Some(match name.to_ascii_lowercase().as_str() {
            "const0" | "gnd" => GateKind::Const0,
            "const1" | "vdd" => GateKind::Const1,
            "buf" | "buff" => GateKind::Buf,
            "not" | "inv" => GateKind::Not,
            "and" => GateKind::And,
            "or" => GateKind::Or,
            "nand" => GateKind::Nand,
            "nor" => GateKind::Nor,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            "mux" => GateKind::Mux,
            _ => return None,
        })
    }

    /// All gate kinds, in declaration order.
    #[must_use]
    pub fn all() -> &'static [GateKind] {
        &[
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Mux,
        ]
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single-output gate instance in a [`Netlist`](crate::Netlist).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Gate {
    /// The gate function.
    pub kind: GateKind,
    /// Input nets, in positional order (Mux: select first).
    pub inputs: Vec<NetId>,
    /// The single output net driven by this gate.
    pub output: NetId,
    /// Pin-to-pin propagation delay (same for all pins), `≥ 0`.
    pub delay: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_checks() {
        assert!(GateKind::And.accepts_arity(2));
        assert!(GateKind::And.accepts_arity(5));
        assert!(!GateKind::And.accepts_arity(1));
        assert!(GateKind::Not.accepts_arity(1));
        assert!(!GateKind::Not.accepts_arity(2));
        assert!(GateKind::Mux.accepts_arity(3));
        assert!(!GateKind::Xor.accepts_arity(3));
        assert!(GateKind::Const1.accepts_arity(0));
    }

    #[test]
    fn eval_truth_tables() {
        assert!(!GateKind::And.eval(&[true, false]));
        assert!(GateKind::And.eval(&[true, true]));
        assert!(GateKind::Or.eval(&[true, false]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(!GateKind::Nor.eval(&[true, false]));
        assert!(GateKind::Xor.eval(&[true, false]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(GateKind::Const1.eval(&[]));
        assert!(!GateKind::Const0.eval(&[]));
        // Mux(s, a, b): s=1 selects a, s=0 selects b.
        assert!(GateKind::Mux.eval(&[true, true, false]));
        assert!(!GateKind::Mux.eval(&[true, false, true]));
        assert!(GateKind::Mux.eval(&[false, false, true]));
    }

    #[test]
    fn name_round_trip() {
        for &kind in GateKind::all() {
            assert_eq!(GateKind::from_name(kind.name()), Some(kind));
            assert_eq!(
                GateKind::from_name(&kind.name().to_ascii_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(GateKind::from_name("frob"), None);
        assert_eq!(GateKind::from_name("inv"), Some(GateKind::Not));
    }

    #[test]
    fn ids_round_trip() {
        assert_eq!(NetId::from_index(42).index(), 42);
        assert_eq!(GateId::from_index(7).index(), 7);
        assert_eq!(NetId::from_index(3).to_string(), "n3");
        assert_eq!(GateId::from_index(3).to_string(), "g3");
    }
}
