use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::{Gate, GateId, GateKind, NetId, NetlistError};

/// A flat, gate-level combinational module (a *leaf module* in the
/// paper's terminology).
///
/// A netlist owns a set of named nets, lists of primary inputs and
/// outputs, and single-output [`Gate`]s. Each net has at most one
/// driver; the netlist must be acyclic (checked by [`Netlist::validate`]
/// and by every analysis that needs a topological order).
///
/// # Example
///
/// ```
/// use hfta_netlist::{Netlist, GateKind};
///
/// # fn main() -> Result<(), hfta_netlist::NetlistError> {
/// // z = (a · b) ⊕ c
/// let mut nl = Netlist::new("example");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let c = nl.add_input("c");
/// let t = nl.add_net("t");
/// let z = nl.add_net("z");
/// nl.add_gate(GateKind::And, &[a, b], t, 1)?;
/// nl.add_gate(GateKind::Xor, &[t, c], z, 2)?;
/// nl.mark_output(z);
/// assert_eq!(nl.topo_gates()?.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Netlist {
    name: String,
    net_names: Vec<String>,
    net_by_name: HashMap<String, NetId>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    gates: Vec<Gate>,
    driver: Vec<Option<GateId>>,
    // O(1) port membership (is_input/is_output sit on hot paths: gate
    // insertion, event simulation).
    input_flag: Vec<bool>,
    output_flag: Vec<bool>,
}

impl Netlist {
    /// Creates an empty netlist with the given module name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            net_names: Vec::new(),
            net_by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
            driver: Vec::new(),
            input_flag: Vec::new(),
            output_flag: Vec::new(),
        }
    }

    /// The module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the module.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a new internal net. If the name is taken, a unique suffix is
    /// appended.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let mut name = name.into();
        if self.net_by_name.contains_key(&name) {
            let mut i = 1usize;
            loop {
                let candidate = format!("{name}#{i}");
                if !self.net_by_name.contains_key(&candidate) {
                    name = candidate;
                    break;
                }
                i += 1;
            }
        }
        let id = NetId::from_index(self.net_names.len());
        self.net_by_name.insert(name.clone(), id);
        self.net_names.push(name);
        self.driver.push(None);
        self.input_flag.push(false);
        self.output_flag.push(false);
        id
    }

    /// Adds a new net and marks it as a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.inputs.push(id);
        self.input_flag[id.index()] = true;
        id
    }

    /// Marks an existing net as a primary output.
    ///
    /// # Panics
    ///
    /// Panics if the net is already marked as an output.
    pub fn mark_output(&mut self, net: NetId) {
        assert!(
            !self.output_flag[net.index()],
            "net {} marked as output twice",
            self.net_name(net)
        );
        self.output_flag[net.index()] = true;
        self.outputs.push(net);
    }

    /// Adds a gate driving `output`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] if the input count is illegal
    /// for `kind`, or [`NetlistError::MultipleDrivers`] if `output` is
    /// already driven (primary inputs count as driven).
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        output: NetId,
        delay: u32,
    ) -> Result<GateId, NetlistError> {
        if !kind.accepts_arity(inputs.len()) {
            return Err(NetlistError::BadArity {
                kind: kind.name(),
                got: inputs.len(),
            });
        }
        if self.driver[output.index()].is_some() || self.input_flag[output.index()] {
            return Err(NetlistError::MultipleDrivers {
                net: self.net_name(output).to_string(),
            });
        }
        let id = GateId::from_index(self.gates.len());
        self.driver[output.index()] = Some(id);
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
            delay,
        });
        Ok(id)
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Number of gates.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Primary inputs in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// All gates in creation order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The gate with the given id.
    #[must_use]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Changes the propagation delay of one gate — the smallest
    /// possible ECO (engineering change order) edit. Structure is
    /// untouched, but the [`Netlist::content_hash`] (and the exact
    /// structural fingerprint) change, so incremental sessions
    /// re-characterize exactly this module.
    pub fn set_gate_delay(&mut self, id: GateId, delay: u32) {
        self.gates[id.index()].delay = delay;
    }

    /// The name of a net.
    #[must_use]
    pub fn net_name(&self, net: NetId) -> &str {
        &self.net_names[net.index()]
    }

    /// Looks a net up by name.
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_by_name.get(name).copied()
    }

    /// The gate driving `net`, or `None` for primary inputs and floating
    /// nets.
    #[must_use]
    pub fn driver(&self, net: NetId) -> Option<GateId> {
        self.driver[net.index()]
    }

    /// Returns `true` if `net` is a primary input (O(1)).
    #[must_use]
    pub fn is_input(&self, net: NetId) -> bool {
        self.input_flag[net.index()]
    }

    /// Returns `true` if `net` is a primary output (O(1)).
    #[must_use]
    pub fn is_output(&self, net: NetId) -> bool {
        self.output_flag[net.index()]
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.net_count()).map(NetId::from_index)
    }

    /// Builds the fanout lists: for every net, the gates reading it.
    #[must_use]
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut fan = vec![Vec::new(); self.net_count()];
        for (i, g) in self.gates.iter().enumerate() {
            for &inp in &g.inputs {
                fan[inp.index()].push(GateId::from_index(i));
            }
        }
        fan
    }

    /// Returns the gates in a topological order (inputs before outputs).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the netlist is
    /// cyclic.
    pub fn topo_gates(&self) -> Result<Vec<GateId>, NetlistError> {
        // Kahn's algorithm over gates: a gate is ready when all of its
        // input nets are either primary inputs, floating, or already
        // produced.
        let mut remaining = vec![0usize; self.gates.len()];
        let mut ready = Vec::new();
        let fanouts = self.fanouts();
        for (i, g) in self.gates.iter().enumerate() {
            let deps = g
                .inputs
                .iter()
                .filter(|n| self.driver[n.index()].is_some())
                .count();
            remaining[i] = deps;
            if deps == 0 {
                ready.push(GateId::from_index(i));
            }
        }
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(g) = ready.pop() {
            order.push(g);
            let out = self.gates[g.index()].output;
            for &succ in &fanouts[out.index()] {
                remaining[succ.index()] -= 1;
                if remaining[succ.index()] == 0 {
                    ready.push(succ);
                }
            }
        }
        if order.len() != self.gates.len() {
            let stuck = remaining
                .iter()
                .position(|&r| r > 0)
                .map(|i| self.net_name(self.gates[i].output).to_string())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { net: stuck });
        }
        Ok(order)
    }

    /// Checks structural invariants: acyclic, every output net exists,
    /// no gate reads an undefined net (guaranteed by construction), and
    /// every primary output is driven or is a primary input.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        self.topo_gates()?;
        for &out in &self.outputs {
            if self.driver(out).is_none() && !self.is_input(out) {
                return Err(NetlistError::Unknown {
                    what: "driver for output net",
                    name: self.net_name(out).to_string(),
                });
            }
        }
        Ok(())
    }

    /// Extracts the transitive-fanin cone of `root` as a fresh netlist.
    ///
    /// The cone's primary inputs are exactly the primary inputs of
    /// `self` that reach `root`; its single primary output is `root`.
    /// Returns the cone and the mapping from cone input position to the
    /// original net.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range for this netlist.
    #[must_use]
    pub fn cone(&self, root: NetId) -> (Netlist, Vec<NetId>) {
        let mut in_cone = vec![false; self.net_count()];
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if in_cone[n.index()] {
                continue;
            }
            in_cone[n.index()] = true;
            if let Some(g) = self.driver(n) {
                for &inp in &self.gates[g.index()].inputs {
                    stack.push(inp);
                }
            }
        }
        let mut cone = Netlist::new(format!("{}::cone({})", self.name, self.net_name(root)));
        let mut map: HashMap<NetId, NetId> = HashMap::new();
        let mut sources = Vec::new();
        // Primary inputs first, preserving the parent's input order.
        for &pi in &self.inputs {
            if in_cone[pi.index()] {
                let id = cone.add_input(self.net_name(pi));
                map.insert(pi, id);
                sources.push(pi);
            }
        }
        // Then every other cone net.
        for n in self.net_ids() {
            if in_cone[n.index()] && !map.contains_key(&n) {
                let id = cone.add_net(self.net_name(n));
                map.insert(n, id);
            }
        }
        for g in &self.gates {
            if in_cone[g.output.index()] {
                let inputs: Vec<NetId> = g.inputs.iter().map(|n| map[n]).collect();
                cone.add_gate(g.kind, &inputs, map[&g.output], g.delay)
                    .expect("cone gate insertion cannot fail");
            }
        }
        cone.mark_output(map[&root]);
        (cone, sources)
    }

    /// A content hash of the netlist structure (names excluded from
    /// semantics but included to keep hashes stable across sessions).
    ///
    /// Used by the incremental analyzer to detect module changes.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.net_names.hash(&mut h);
        self.inputs.hash(&mut h);
        self.outputs.hash(&mut h);
        for g in &self.gates {
            g.kind.hash(&mut h);
            g.inputs.hash(&mut h);
            g.output.hash(&mut h);
            g.delay.hash(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_xor() -> Netlist {
        let mut nl = Netlist::new("ax");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let t = nl.add_net("t");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::And, &[a, b], t, 1).unwrap();
        nl.add_gate(GateKind::Xor, &[t, c], z, 2).unwrap();
        nl.mark_output(z);
        nl
    }

    #[test]
    fn build_and_query() {
        let nl = and_xor();
        assert_eq!(nl.net_count(), 5);
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 1);
        let z = nl.find_net("z").unwrap();
        assert!(nl.is_output(z));
        assert!(!nl.is_input(z));
        let d = nl.driver(z).unwrap();
        assert_eq!(nl.gate(d).kind, GateKind::Xor);
        nl.validate().unwrap();
    }

    #[test]
    fn duplicate_net_names_get_suffixed() {
        let mut nl = Netlist::new("m");
        let a = nl.add_net("x");
        let b = nl.add_net("x");
        assert_ne!(a, b);
        assert_eq!(nl.net_name(a), "x");
        assert_eq!(nl.net_name(b), "x#1");
        assert_eq!(nl.find_net("x"), Some(a));
        assert_eq!(nl.find_net("x#1"), Some(b));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::Or, &[a, b], z, 1).unwrap();
        let err = nl.add_gate(GateKind::And, &[a, b], z, 1).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
        // Driving a primary input is also a double-drive.
        let err = nl.add_gate(GateKind::Not, &[z], a, 1).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let z = nl.add_net("z");
        let err = nl.add_gate(GateKind::And, &[a], z, 1).unwrap_err();
        assert!(matches!(err, NetlistError::BadArity { got: 1, .. }));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = and_xor();
        let order = nl.topo_gates().unwrap();
        assert_eq!(order.len(), 2);
        let pos: Vec<usize> = order.iter().map(|g| g.index()).collect();
        // AND (gate 0) must precede XOR (gate 1).
        assert!(pos.iter().position(|&g| g == 0) < pos.iter().position(|&g| g == 1));
    }

    #[test]
    fn cycle_detected() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::And, &[a, y], x, 1).unwrap();
        nl.add_gate(GateKind::Or, &[a, x], y, 1).unwrap();
        assert!(matches!(
            nl.topo_gates(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn cone_extraction() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let t = nl.add_net("t");
        let u = nl.add_net("u");
        nl.add_gate(GateKind::And, &[a, b], t, 1).unwrap();
        nl.add_gate(GateKind::Or, &[b, c], u, 1).unwrap();
        nl.mark_output(t);
        nl.mark_output(u);
        let (cone, sources) = nl.cone(t);
        assert_eq!(cone.inputs().len(), 2); // a and b only
        assert_eq!(cone.gate_count(), 1);
        assert_eq!(sources, vec![a, b]);
        assert_eq!(cone.outputs().len(), 1);
        cone.validate().unwrap();
    }

    #[test]
    fn content_hash_changes_with_structure() {
        let nl = and_xor();
        let mut other = and_xor();
        assert_eq!(nl.content_hash(), other.content_hash());
        let z2 = other.add_net("z2");
        let a = other.find_net("a").unwrap();
        other.add_gate(GateKind::Buf, &[a], z2, 3).unwrap();
        assert_ne!(nl.content_hash(), other.content_hash());
    }

    #[test]
    fn fanouts_list_readers() {
        let nl = and_xor();
        let fan = nl.fanouts();
        let b = nl.find_net("b").unwrap();
        let t = nl.find_net("t").unwrap();
        assert_eq!(fan[b.index()].len(), 1);
        assert_eq!(fan[t.index()].len(), 1);
    }

    #[test]
    fn validate_rejects_undriven_output() {
        let mut nl = Netlist::new("m");
        let _a = nl.add_input("a");
        let z = nl.add_net("z");
        nl.mark_output(z);
        assert!(nl.validate().is_err());
    }
}
