//! Gate-level and hierarchical combinational netlists for HFTA.
//!
//! This crate provides the circuit substrate for the hierarchical
//! functional timing analysis of Kukimoto & Brayton (DAC 1998):
//!
//! * [`Netlist`] — a flat, gate-level combinational *leaf module* with
//!   named nets, primary inputs/outputs and single-output gates carrying
//!   integer delays.
//! * [`Design`] — a hierarchical design: a set of module definitions
//!   ([`ModuleDef`]) that are either leaf netlists or *composite* modules
//!   instantiating other modules. [`Design::flatten`] expands any module
//!   into an equivalent flat [`Netlist`].
//! * [`Time`] — integer time with `±∞` sentinels, shared by every HFTA
//!   crate.
//! * Simulation ([`sim`]), the ISCAS `.bench` format ([`bench_format`]),
//!   a hierarchical text format ([`hnl`]), circuit generators ([`gen`])
//!   including the paper's carry-skip adders, and the cascade
//!   partitioner ([`partition`]) used by the Table 2 experiment.
//!
//! # Example
//!
//! ```
//! use hfta_netlist::{Netlist, GateKind};
//!
//! # fn main() -> Result<(), hfta_netlist::NetlistError> {
//! let mut nl = Netlist::new("and2");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let z = nl.add_net("z");
//! nl.add_gate(GateKind::And, &[a, b], z, 1)?;
//! nl.mark_output(z);
//! assert_eq!(nl.gate_count(), 1);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_format;
pub mod blif;
mod error;
pub mod event_sim;
mod gate;
pub mod gen;
mod hier;
pub mod hnl;
mod netlist;
pub mod partition;
pub mod seq;
pub mod sim;
pub mod stats;
pub mod strash;
mod time;
pub mod transform;

pub use error::NetlistError;
pub use gate::{Gate, GateId, GateKind, NetId};
pub use hier::{Composite, Design, Instance, ModuleBody, ModuleDef};
pub use netlist::Netlist;
pub use seq::{Register, SeqCircuit};
pub use strash::{cone_signature, exact_fingerprint, ConeKey, ConeSig};
pub use time::Time;
