//! Structural hashing of fanin cones into canonical signatures.
//!
//! [`cone_signature`] reduces a single-output fanin cone (as produced by
//! [`Netlist::cone`]) to a canonical 128-bit [`ConeSig`] plus the
//! input-correspondence permutation mapping the cone's primary inputs to
//! *signature slots*. Two cones receive the same signature exactly when
//! their normalized gate DAGs are isomorphic — same gate kinds, same
//! delays, same wiring — up to renaming of nets, reordering of gates,
//! reordering of commutative gate inputs, and permutation of primary
//! inputs (modulo the negligible 2⁻¹²⁸ hash-collision probability).
//!
//! The pipeline:
//!
//! 1. **Normalization.** `Buf`/`Not` chains collapse into edge
//!    attributes: every net reference becomes `(root, accumulated delay,
//!    inversion parity)` where the root is a primary input, a normalized
//!    gate, or a constant. `Not` over a constant folds into the constant.
//! 2. **Canonical input ordering.** Weisfeiler–Leman-style iterative
//!    refinement ranks the inputs by alternating bottom-up structure
//!    labels and top-down context labels; remaining ties (automorphic or
//!    WL-indistinguishable inputs) are broken by individualizing the
//!    lowest original index and re-refining. Ties broken this way can at
//!    worst cause two isomorphic cones to canonicalize differently — a
//!    missed sharing opportunity, never a false match, because equality
//!    is decided by hashing the full canonical form below.
//! 3. **Canonical serialization.** Gates are ordered by (depth, final
//!    structure label, original index), commutative gate inputs are
//!    sorted by their serialized form, and the whole description —
//!    input slots, gates, output reference — is fed through a two-lane
//!    64-bit mixer producing the 128-bit signature.
//!
//! Because equal signatures certify isomorphism, any analysis result
//! that is itself invariant under cone isomorphism (required-time tuple
//! sets, exact stability verdicts) may be shared across equal-signature
//! cones once re-indexed through the permutation. See DESIGN.md, "Why
//! signature sharing is sound".

use crate::{GateKind, NetId, Netlist, NetlistError};

/// A canonical 128-bit structural signature of a fanin cone.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConeSig(pub u128);

impl std::fmt::Display for ConeSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A cone's signature together with its input correspondence.
///
/// `perm[i]` is the canonical *slot* assigned to the cone's `i`-th
/// primary input. Two cones with equal [`ConeSig`] are isomorphic via
/// the permutation that matches equal slots: input `i` of one
/// corresponds to input `j` of the other iff `a.perm[i] == b.perm[j]`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConeKey {
    /// The canonical structural signature.
    pub sig: ConeSig,
    /// Canonical slot of each primary input, indexed by input position.
    pub perm: Vec<usize>,
}

impl ConeKey {
    /// Re-indexes per-input values into canonical slot order.
    ///
    /// `vals[i]` belongs to input `i`; the result holds it at
    /// `perm[i]`. Values for slots without a declared input (which only
    /// arise on malformed cones with floating internal nets) are `fill`.
    #[must_use]
    pub fn to_slots<T: Copy>(&self, vals: &[T], fill: T) -> Vec<T> {
        let slots = self.slot_count();
        let mut out = vec![fill; slots];
        for (i, &v) in vals.iter().enumerate() {
            out[self.perm[i]] = v;
        }
        out
    }

    /// Re-indexes canonical-slot values back into input order.
    #[must_use]
    pub fn from_slots<T: Copy>(&self, slots: &[T]) -> Vec<T> {
        self.perm.iter().map(|&s| slots[s]).collect()
    }

    /// Number of canonical slots (≥ the number of declared inputs).
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.perm.iter().map(|&s| s + 1).max().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------
// Normalized cone representation
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Root {
    /// Source `i`: a declared primary input (or, defensively, a floating
    /// net), indexed into the source list.
    Source(u32),
    /// Normalized gate `g` (index into `Norm::gates`).
    Gate(u32),
    /// A constant value.
    Const(bool),
}

/// A reference to a normalized net: the root it reduces to after
/// collapsing `Buf`/`Not` chains, plus accumulated delay and inversion
/// parity along the chain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Ref {
    root: Root,
    delay: u64,
    inv: bool,
}

struct NGate {
    kind: GateKind,
    delay: u64,
    ins: Vec<Ref>,
}

struct Norm {
    /// Declared primary inputs first, then any floating nets in id order.
    n_declared: usize,
    n_sources: usize,
    gates: Vec<NGate>,
    outs: Vec<Ref>,
}

fn normalize(cone: &Netlist) -> Result<Norm, NetlistError> {
    let mut source_of = vec![None::<u32>; cone.net_count()];
    let mut n_sources = 0u32;
    for &pi in cone.inputs() {
        source_of[pi.index()] = Some(n_sources);
        n_sources += 1;
    }
    let n_declared = n_sources as usize;
    // Defensive: floating (undriven, non-input) nets become extra sources.
    for (idx, src) in source_of.iter_mut().enumerate() {
        let net = NetId::from_index(idx);
        if src.is_none() && cone.driver(net).is_none() && !cone.is_input(net) {
            *src = Some(n_sources);
            n_sources += 1;
        }
    }

    let mut refs = vec![None::<Ref>; cone.net_count()];
    for (idx, src) in source_of.iter().enumerate() {
        if let Some(s) = src {
            refs[idx] = Some(Ref {
                root: Root::Source(*s),
                delay: 0,
                inv: false,
            });
        }
    }

    let mut gates = Vec::new();
    for gid in cone.topo_gates()? {
        let g = cone.gate(gid);
        let d = u64::from(g.delay);
        let resolve = |net: NetId, refs: &[Option<Ref>]| {
            refs[net.index()].expect("topological order resolves gate inputs")
        };
        let out_ref = match g.kind {
            GateKind::Const0 | GateKind::Const1 => Ref {
                root: Root::Const(g.kind == GateKind::Const1),
                delay: d,
                inv: false,
            },
            GateKind::Buf => {
                let mut r = resolve(g.inputs[0], &refs);
                r.delay += d;
                r
            }
            GateKind::Not => {
                let mut r = resolve(g.inputs[0], &refs);
                r.delay += d;
                match r.root {
                    Root::Const(b) => r.root = Root::Const(!b),
                    _ => r.inv = !r.inv,
                }
                r
            }
            _ => {
                let ins: Vec<Ref> = g.inputs.iter().map(|&n| resolve(n, &refs)).collect();
                gates.push(NGate {
                    kind: g.kind,
                    delay: d,
                    ins,
                });
                Ref {
                    root: Root::Gate((gates.len() - 1) as u32),
                    delay: 0,
                    inv: false,
                }
            }
        };
        refs[g.output.index()] = Some(out_ref);
    }

    let outs = cone
        .outputs()
        .iter()
        .map(|&o| refs[o.index()].expect("outputs are driven or sources"))
        .collect();
    Ok(Norm {
        n_declared,
        n_sources: n_sources as usize,
        gates,
        outs,
    })
}

// ---------------------------------------------------------------------
// Hashing primitives
// ---------------------------------------------------------------------

/// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

fn h(vals: &[u64]) -> u64 {
    let mut acc = GOLDEN ^ (vals.len() as u64);
    for &v in vals {
        acc = mix64(acc.rotate_left(7) ^ v.wrapping_mul(GOLDEN));
    }
    acc
}

/// Two independent 64-bit lanes absorbed word-by-word into a 128-bit
/// digest; both lanes fold in the word count so prefixes never collide
/// with their extensions.
struct Sink {
    a: u64,
    b: u64,
    n: u64,
}

impl Sink {
    fn new() -> Sink {
        Sink {
            a: 0x6a09_e667_f3bc_c908,
            b: 0xbb67_ae85_84ca_a73b,
            n: 0,
        }
    }

    fn push(&mut self, v: u64) {
        self.n += 1;
        self.a = mix64(self.a ^ v.wrapping_mul(GOLDEN));
        self.b = mix64(
            self.b
                .wrapping_add(v ^ 0x3c6e_f372_fe94_f82b)
                .rotate_left(23),
        );
    }

    fn finish(self) -> u128 {
        let hi = mix64(self.a ^ self.n.wrapping_mul(GOLDEN));
        let lo = mix64(self.b ^ self.n.rotate_left(32) ^ self.a);
        (u128::from(hi) << 64) | u128::from(lo)
    }
}

fn kind_tag(kind: GateKind) -> u64 {
    match kind {
        GateKind::Const0 => 1,
        GateKind::Const1 => 2,
        GateKind::Buf => 3,
        GateKind::Not => 4,
        GateKind::And => 5,
        GateKind::Or => 6,
        GateKind::Nand => 7,
        GateKind::Nor => 8,
        GateKind::Xor => 9,
        GateKind::Xnor => 10,
        GateKind::Mux => 11,
    }
}

/// Whether the gate function is invariant under input permutation.
/// `Mux` is positional (select first), so it is excluded.
fn commutative(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor
    )
}

// ---------------------------------------------------------------------
// Weisfeiler–Leman refinement of the input ordering
// ---------------------------------------------------------------------

const TAG_SOURCE: u64 = 0x51;
const TAG_GATE: u64 = 0x52;
const TAG_CONST: u64 = 0x53;
const TAG_OUT: u64 = 0x54;
const TAG_DOWN: u64 = 0x55;
const TAG_CHILD: u64 = 0x56;

fn eff(r: Ref, src_label: &[u64], up: &[u64]) -> u64 {
    let (tag, root) = match r.root {
        Root::Source(s) => (TAG_SOURCE, src_label[s as usize]),
        Root::Gate(g) => (TAG_GATE, up[g as usize]),
        Root::Const(b) => (TAG_CONST, u64::from(b)),
    };
    h(&[tag, root, r.delay, u64::from(r.inv)])
}

/// Bottom-up structure labels for every normalized gate, given the
/// current per-source labels. Gates are stored in topological order, so
/// one forward pass suffices.
fn up_labels(norm: &Norm, src_label: &[u64]) -> Vec<u64> {
    let mut up = Vec::with_capacity(norm.gates.len());
    for g in &norm.gates {
        let mut ins: Vec<u64> = g.ins.iter().map(|&r| eff(r, src_label, &up)).collect();
        if commutative(g.kind) {
            ins.sort_unstable();
        }
        let mut words = vec![kind_tag(g.kind), g.delay];
        words.extend_from_slice(&ins);
        up.push(h(&words));
    }
    up
}

/// One full WL round: bottom-up labels, then top-down context labels,
/// producing a refined per-source signature.
fn wl_round(norm: &Norm, src_label: &[u64]) -> Vec<u64> {
    let up = up_labels(norm, src_label);
    let mut gate_contribs: Vec<Vec<u64>> = vec![Vec::new(); norm.gates.len()];
    let mut src_contribs: Vec<Vec<u64>> = vec![Vec::new(); norm.n_sources];

    for (pos, r) in norm.outs.iter().enumerate() {
        let c = h(&[TAG_OUT, pos as u64, r.delay, u64::from(r.inv)]);
        match r.root {
            Root::Source(s) => src_contribs[s as usize].push(c),
            Root::Gate(g) => gate_contribs[g as usize].push(c),
            Root::Const(_) => {}
        }
    }

    // Reverse topological order: every consumer of gate `g` has a larger
    // index, so `gate_contribs[g]` is complete when we reach it.
    for gi in (0..norm.gates.len()).rev() {
        let g = &norm.gates[gi];
        gate_contribs[gi].sort_unstable();
        let mut words = vec![TAG_DOWN, up[gi]];
        words.extend_from_slice(&gate_contribs[gi]);
        let down = h(&words);
        for (pos, r) in g.ins.iter().enumerate() {
            // Position is only structural for non-commutative gates; for
            // commutative ones the sibling's own label keys the edge.
            let slot = if commutative(g.kind) {
                eff(*r, src_label, &up)
            } else {
                pos as u64
            };
            let c = h(&[
                TAG_CHILD,
                down,
                kind_tag(g.kind),
                g.delay,
                slot,
                r.delay,
                u64::from(r.inv),
            ]);
            match r.root {
                Root::Source(s) => src_contribs[s as usize].push(c),
                Root::Gate(target) => gate_contribs[target as usize].push(c),
                Root::Const(_) => {}
            }
        }
    }

    (0..norm.n_sources)
        .map(|s| {
            src_contribs[s].sort_unstable();
            let declared = u64::from(s < norm.n_declared);
            let mut words = vec![TAG_SOURCE, src_label[s], declared];
            words.extend_from_slice(&src_contribs[s]);
            h(&words)
        })
        .collect()
}

/// Relabels class values by first occurrence so two labelings can be
/// compared as partitions.
fn partition_shape(labels: &[u64]) -> Vec<u32> {
    let mut map = std::collections::HashMap::new();
    labels
        .iter()
        .map(|&l| {
            let next = map.len() as u32;
            *map.entry(l).or_insert(next)
        })
        .collect()
}

/// Iterates WL rounds until the induced partition stops changing.
fn refine_to_fixpoint(norm: &Norm, label: &mut Vec<u64>) {
    let mut shape = partition_shape(label);
    // The partition stabilizes in ≤ n rounds in practice; the cap only
    // guards determinism on adversarial hash behaviour.
    for _ in 0..norm.n_sources + 2 {
        let next = wl_round(norm, label);
        let next_shape = partition_shape(&next);
        let done = next_shape == shape;
        *label = next;
        shape = next_shape;
        if done {
            break;
        }
    }
}

/// Computes the canonical slot of every source: WL refinement plus
/// individualization of surviving ties by lowest original index.
fn canonical_slots(norm: &Norm) -> Vec<usize> {
    let n = norm.n_sources;
    let mut label = vec![0u64; n];
    if n == 0 {
        return Vec::new();
    }
    refine_to_fixpoint(norm, &mut label);

    let mut individualized = 0u64;
    loop {
        // Find the smallest-labelled class that still has a tie.
        let mut tied: Option<(u64, usize)> = None;
        for i in 0..n {
            if label.iter().filter(|&&l| l == label[i]).count() > 1 {
                match tied {
                    Some((l, _)) if l <= label[i] => {}
                    _ => tied = Some((label[i], i)),
                }
            }
        }
        let Some((_, pivot)) = tied else { break };
        individualized += 1;
        // A value outside `h`'s typical range is unnecessary; distinctness
        // within this labeling is what matters.
        label[pivot] = h(&[0x1d1u64, individualized, label[pivot]]);
        refine_to_fixpoint(norm, &mut label);
    }

    let mut sorted: Vec<u64> = label.clone();
    sorted.sort_unstable();
    label
        .iter()
        .map(|l| sorted.binary_search(l).expect("label present"))
        .collect()
}

// ---------------------------------------------------------------------
// Canonical serialization
// ---------------------------------------------------------------------

fn serialize_ref(r: Ref, slot_of: &[usize], canon_gate: &[u32]) -> [u64; 4] {
    match r.root {
        Root::Source(s) => [
            TAG_SOURCE,
            slot_of[s as usize] as u64,
            r.delay,
            u64::from(r.inv),
        ],
        Root::Gate(g) => [
            TAG_GATE,
            u64::from(canon_gate[g as usize]),
            r.delay,
            u64::from(r.inv),
        ],
        Root::Const(b) => [TAG_CONST, u64::from(b), r.delay, u64::from(r.inv)],
    }
}

/// Computes the canonical signature and input correspondence of a
/// fanin cone.
///
/// The cone is expected to come from [`Netlist::cone`]: a self-contained
/// netlist whose inputs are the cone sources and whose (usually single)
/// outputs are the cone roots. Output order is significant.
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`] from the topological
/// sort; well-formed cones never fail.
pub fn cone_signature(cone: &Netlist) -> Result<ConeKey, NetlistError> {
    let norm = normalize(cone)?;
    let slot_of = canonical_slots(&norm);

    // Final bottom-up labels with discrete (slot-valued) source labels.
    let final_src: Vec<u64> = slot_of.iter().map(|&s| s as u64).collect();
    let up = up_labels(&norm, &final_src);

    // Canonical gate order: by depth (topologically valid), then by the
    // final structure label, then by original index as a last resort.
    let mut depth = vec![0u64; norm.gates.len()];
    for (gi, g) in norm.gates.iter().enumerate() {
        depth[gi] = 1 + g
            .ins
            .iter()
            .map(|r| match r.root {
                Root::Gate(p) => depth[p as usize],
                _ => 0,
            })
            .max()
            .unwrap_or(0);
    }
    let mut order: Vec<usize> = (0..norm.gates.len()).collect();
    order.sort_unstable_by_key(|&gi| (depth[gi], up[gi], gi));
    let mut canon_gate = vec![0u32; norm.gates.len()];
    for (pos, &gi) in order.iter().enumerate() {
        canon_gate[gi] = pos as u32;
    }

    let mut sink = Sink::new();
    sink.push(0x4846_5441_0001); // "HFTA" v1
    sink.push(norm.n_sources as u64);
    sink.push(norm.n_declared as u64);
    sink.push(norm.gates.len() as u64);
    sink.push(norm.outs.len() as u64);
    for &gi in &order {
        let g = &norm.gates[gi];
        let mut ins: Vec<[u64; 4]> = g
            .ins
            .iter()
            .map(|&r| serialize_ref(r, &slot_of, &canon_gate))
            .collect();
        if commutative(g.kind) {
            ins.sort_unstable();
        }
        sink.push(kind_tag(g.kind));
        sink.push(g.delay);
        sink.push(ins.len() as u64);
        for w in ins.iter().flatten() {
            sink.push(*w);
        }
    }
    for &r in &norm.outs {
        for w in serialize_ref(r, &slot_of, &canon_gate) {
            sink.push(w);
        }
    }

    let perm = slot_of[..norm.n_declared].to_vec();
    Ok(ConeKey {
        sig: ConeSig(sink.finish()),
        perm,
    })
}

/// A name-independent fingerprint of the literal cone structure: gate
/// list in creation order with raw net ids, inputs, and outputs.
///
/// Unlike [`ConeSig`] this is *not* canonical — permuting inputs or
/// reordering gates changes it — which is exactly what callers need
/// when they must distinguish "literally the same netlist modulo names"
/// from "isomorphic": under a limited solve budget only the former
/// guarantees identical solver behaviour.
#[must_use]
pub fn exact_fingerprint(cone: &Netlist) -> u64 {
    let mut sink = Sink::new();
    sink.push(cone.net_count() as u64);
    sink.push(cone.inputs().len() as u64);
    for &pi in cone.inputs() {
        sink.push(pi.index() as u64);
    }
    sink.push(cone.outputs().len() as u64);
    for &po in cone.outputs() {
        sink.push(po.index() as u64);
    }
    sink.push(cone.gate_count() as u64);
    for g in cone.gates() {
        sink.push(kind_tag(g.kind));
        sink.push(u64::from(g.delay));
        sink.push(g.output.index() as u64);
        sink.push(g.inputs.len() as u64);
        for &i in &g.inputs {
            sink.push(i.index() as u64);
        }
    }
    mix64(sink.finish() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{carry_skip_block, CsaDelays};
    use crate::GateKind as K;

    fn sig_of(nl: &Netlist) -> ConeKey {
        cone_signature(nl).expect("acyclic")
    }

    /// A tiny AOI cone: out = (a·b) + c, with configurable delays.
    fn aoi(d_and: u32, d_or: u32) -> Netlist {
        let mut nl = Netlist::new("aoi");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let t = nl.add_net("t");
        let z = nl.add_net("z");
        nl.add_gate(K::And, &[a, b], t, d_and).unwrap();
        nl.add_gate(K::Or, &[t, c], z, d_or).unwrap();
        nl.mark_output(z);
        nl
    }

    #[test]
    fn renaming_and_gate_reorder_are_invisible() {
        let base = aoi(2, 3);
        // Same structure, different names, gates created in a different
        // order (Or's non-tree input first).
        let mut nl = Netlist::new("other");
        let x = nl.add_input("x");
        let y = nl.add_input("y");
        let w = nl.add_input("w");
        let m = nl.add_net("m");
        let o = nl.add_net("o");
        nl.add_gate(K::And, &[x, y], m, 2).unwrap();
        nl.add_gate(K::Or, &[m, w], o, 3).unwrap();
        nl.mark_output(o);
        assert_eq!(sig_of(&base).sig, sig_of(&nl).sig);
    }

    #[test]
    fn input_permutation_matches_through_perm() {
        let base = aoi(2, 3);
        // c declared first: inputs permuted, same function/structure.
        let mut nl = Netlist::new("perm");
        let c = nl.add_input("c");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let t = nl.add_net("t");
        let z = nl.add_net("z");
        nl.add_gate(K::And, &[a, b], t, 2).unwrap();
        nl.add_gate(K::Or, &[t, c], z, 3).unwrap();
        nl.mark_output(z);
        let ka = sig_of(&base);
        let kb = sig_of(&nl);
        assert_eq!(ka.sig, kb.sig);
        // base inputs (a, b, c); perm maps c (base pos 2) and c (perm
        // pos 0) to the same slot.
        assert_eq!(ka.perm[2], kb.perm[0]);
        assert_eq!(
            {
                let mut s = ka.perm.clone();
                s.sort_unstable();
                s
            },
            vec![0, 1, 2]
        );
    }

    #[test]
    fn commutative_input_order_is_invisible_but_mux_is_not() {
        let mut a = Netlist::new("a");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let z = a.add_net("z");
        a.add_gate(K::And, &[x, y], z, 1).unwrap();
        a.mark_output(z);

        let mut b = Netlist::new("b");
        let x2 = b.add_input("x");
        let y2 = b.add_input("y");
        let z2 = b.add_net("z");
        b.add_gate(K::And, &[y2, x2], z2, 1).unwrap();
        b.mark_output(z2);
        assert_eq!(sig_of(&a).sig, sig_of(&b).sig);

        // Mux data inputs are positional: swapping them changes the
        // function unless the inputs are symmetric, so the signature
        // must distinguish the two orderings' wiring to the *select*.
        let mk = |sel_first: bool| {
            let mut nl = Netlist::new("m");
            let s = nl.add_input("s");
            let p = nl.add_input("p");
            let q = nl.add_input("q");
            let t = nl.add_net("t");
            let o = nl.add_net("o");
            nl.add_gate(K::And, &[p, q], t, 1).unwrap();
            if sel_first {
                nl.add_gate(K::Mux, &[s, t, p], o, 2).unwrap();
            } else {
                nl.add_gate(K::Mux, &[s, p, t], o, 2).unwrap();
            }
            nl.mark_output(o);
            nl
        };
        assert_ne!(sig_of(&mk(true)).sig, sig_of(&mk(false)).sig);
    }

    #[test]
    fn buf_not_chains_normalize() {
        // not(not(a)) with delays 1,2 == buf(buf(a)) with delays 2,1
        // == buf(a) with delay 3: all collapse to (a, +3, even parity).
        let chain = |kinds: &[(K, u32)]| {
            let mut nl = Netlist::new("c");
            let a = nl.add_input("a");
            let b = nl.add_input("b");
            let mut cur = a;
            for (i, &(k, d)) in kinds.iter().enumerate() {
                let n = nl.add_net(format!("n{i}"));
                nl.add_gate(k, &[cur], n, d).unwrap();
                cur = n;
            }
            let z = nl.add_net("z");
            nl.add_gate(K::And, &[cur, b], z, 5).unwrap();
            nl.mark_output(z);
            nl
        };
        let double_not = chain(&[(K::Not, 1), (K::Not, 2)]);
        let double_buf = chain(&[(K::Buf, 2), (K::Buf, 1)]);
        let single_buf = chain(&[(K::Buf, 3)]);
        assert_eq!(sig_of(&double_not).sig, sig_of(&double_buf).sig);
        assert_eq!(sig_of(&double_not).sig, sig_of(&single_buf).sig);
        // Odd parity differs.
        let single_not = chain(&[(K::Not, 3)]);
        assert_ne!(sig_of(&double_not).sig, sig_of(&single_not).sig);
        // Different accumulated delay differs.
        let slow_buf = chain(&[(K::Buf, 4)]);
        assert_ne!(sig_of(&single_buf).sig, sig_of(&slow_buf).sig);
    }

    #[test]
    fn const_folding_through_not() {
        let mk = |kind: K, invert: bool| {
            let mut nl = Netlist::new("k");
            let a = nl.add_input("a");
            let c = nl.add_net("c");
            nl.add_gate(kind, &[], c, 1).unwrap();
            let src = if invert {
                let ci = nl.add_net("ci");
                nl.add_gate(K::Not, &[c], ci, 0).unwrap();
                ci
            } else {
                c
            };
            let z = nl.add_net("z");
            nl.add_gate(K::And, &[a, src], z, 2).unwrap();
            nl.mark_output(z);
            nl
        };
        // not(const0) == const1 (with matching accumulated delay).
        assert_eq!(
            sig_of(&mk(K::Const0, true)).sig,
            sig_of(&mk(K::Const1, false)).sig
        );
        assert_ne!(
            sig_of(&mk(K::Const0, false)).sig,
            sig_of(&mk(K::Const1, false)).sig
        );
    }

    #[test]
    fn kind_delay_and_structure_differences_are_visible() {
        assert_ne!(sig_of(&aoi(2, 3)).sig, sig_of(&aoi(2, 4)).sig);
        let mut nl = Netlist::new("nand_version");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let t = nl.add_net("t");
        let z = nl.add_net("z");
        nl.add_gate(K::Nand, &[a, b], t, 2).unwrap();
        nl.add_gate(K::Or, &[t, c], z, 3).unwrap();
        nl.mark_output(z);
        assert_ne!(sig_of(&aoi(2, 3)).sig, sig_of(&nl).sig);
    }

    #[test]
    fn symmetric_inputs_share_any_correspondence() {
        // out = a·b: both inputs are automorphic; whatever slots are
        // assigned, signatures agree and tuple sharing is valid either
        // way round.
        let mut a = Netlist::new("and2");
        let x = a.add_input("p");
        let y = a.add_input("q");
        let z = a.add_net("z");
        a.add_gate(K::And, &[x, y], z, 1).unwrap();
        a.mark_output(z);
        let ka = sig_of(&a);
        assert_eq!(ka.perm.len(), 2);
        assert_ne!(ka.perm[0], ka.perm[1]);
    }

    #[test]
    fn carry_skip_block_output_cones_match_across_copies() {
        let blk = carry_skip_block(2, CsaDelays::default());
        let mut other = carry_skip_block(2, CsaDelays::default());
        other.set_name("renamed");
        for (&oa, &ob) in blk.outputs().iter().zip(other.outputs()) {
            let (ca, _) = blk.cone(oa);
            let (cb, _) = other.cone(ob);
            let ka = sig_of(&ca);
            let kb = sig_of(&cb);
            assert_eq!(ka.sig, kb.sig);
            assert_eq!(ka.perm, kb.perm);
            assert_eq!(exact_fingerprint(&ca), exact_fingerprint(&cb));
        }
        // Different delays produce different signatures: delay is part
        // of the timing-relevant structure.
        let slow = carry_skip_block(
            2,
            CsaDelays {
                mux: 9,
                ..CsaDelays::default()
            },
        );
        let (ca, _) = blk.cone(*blk.outputs().last().unwrap());
        let (cs, _) = slow.cone(*slow.outputs().last().unwrap());
        assert_ne!(sig_of(&ca).sig, sig_of(&cs).sig);
    }

    #[test]
    fn trivial_cones() {
        // Output is directly a primary input.
        let mut nl = Netlist::new("wire");
        let a = nl.add_input("a");
        nl.mark_output(a);
        let k = sig_of(&nl);
        assert_eq!(k.perm, vec![0]);

        // Constant-only cone: no inputs at all.
        let mut c = Netlist::new("const");
        let z = c.add_net("z");
        c.add_gate(K::Const1, &[], z, 1).unwrap();
        c.mark_output(z);
        let kc = sig_of(&c);
        assert!(kc.perm.is_empty());
        assert_ne!(k.sig, kc.sig);
    }

    #[test]
    fn slot_round_trip() {
        let key = ConeKey {
            sig: ConeSig(1),
            perm: vec![2, 0, 1],
        };
        let vals = [10i64, 20, 30];
        let slots = key.to_slots(&vals, 0);
        assert_eq!(slots, vec![20, 30, 10]);
        assert_eq!(key.from_slots(&slots), vals);
    }
}
