use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing netlists.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum NetlistError {
    /// A net already has a driver and a second gate tried to drive it.
    MultipleDrivers {
        /// Name of the doubly-driven net.
        net: String,
    },
    /// A gate was created with an illegal number of inputs for its kind.
    BadArity {
        /// The offending gate kind name.
        kind: &'static str,
        /// Number of inputs supplied.
        got: usize,
    },
    /// The combinational netlist contains a cycle.
    CombinationalCycle {
        /// Name of a net on the cycle.
        net: String,
    },
    /// A referenced name (net, module, instance…) does not exist.
    Unknown {
        /// What category of object was looked up.
        what: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// A name was defined twice.
    Duplicate {
        /// What category of object was defined.
        what: &'static str,
        /// The duplicated name.
        name: String,
    },
    /// An instance's connection list does not match the module's ports.
    PortMismatch {
        /// Instance name.
        instance: String,
        /// Referenced module name.
        module: String,
        /// Expected number of connections (inputs + outputs).
        expected: usize,
        /// Supplied number of connections.
        got: usize,
    },
    /// The module hierarchy is recursive.
    RecursiveHierarchy {
        /// Name of a module on the instantiation cycle.
        module: String,
    },
    /// A parse error in one of the text formats.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An I/O failure on an analysis resource (e.g. a model database
    /// directory that cannot be created).
    Io {
        /// The path that failed.
        path: String,
        /// The underlying error, rendered.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            NetlistError::BadArity { kind, got } => {
                write!(f, "gate kind `{kind}` cannot take {got} inputs")
            }
            NetlistError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net `{net}`")
            }
            NetlistError::Unknown { what, name } => write!(f, "unknown {what} `{name}`"),
            NetlistError::Duplicate { what, name } => write!(f, "duplicate {what} `{name}`"),
            NetlistError::PortMismatch {
                instance,
                module,
                expected,
                got,
            } => write!(
                f,
                "instance `{instance}` of `{module}` has {got} connections, expected {expected}"
            ),
            NetlistError::RecursiveHierarchy { module } => {
                write!(f, "recursive instantiation of module `{module}`")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::Io { path, message } => {
                write!(f, "i/o error on `{path}`: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetlistError::MultipleDrivers { net: "z".into() };
        assert_eq!(e.to_string(), "net `z` has multiple drivers");
        let e = NetlistError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        let e = NetlistError::PortMismatch {
            instance: "u1".into(),
            module: "adder".into(),
            expected: 5,
            got: 4,
        };
        assert!(e.to_string().contains("u1"));
        assert!(e.to_string().contains("expected 5"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<NetlistError>();
    }
}
