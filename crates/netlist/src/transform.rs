//! Structural netlist transforms.
//!
//! * [`decompose_mux`] — expands every MUX primitive into
//!   AND–OR–NOT logic. Functionally equivalent, but *timing-model
//!   relevant*: the decomposed form loses the mux's consensus prime
//!   (`a·b`), so under XBD0 it genuinely suffers the static hazard a
//!   complex-gate mux filters out — a hands-on demonstration that
//!   sensitization accuracy depends on gate granularity.
//! * [`strip_buffers`] — removes zero-delay buffers by rewiring their
//!   readers (primary-output buffers are kept, since the output net
//!   must stay driven).

use crate::{GateKind, NetId, Netlist};

/// Returns a copy of `netlist` with every [`GateKind::Mux`] expanded
/// into `z = (s·a) + (s̄·b)`: an inverter (delay 0), two ANDs carrying
/// the mux delay, and a zero-delay OR, preserving every pin-to-pin
/// topological delay.
#[must_use]
pub fn decompose_mux(netlist: &Netlist) -> Netlist {
    let mut out = Netlist::new(format!("{}_demuxed", netlist.name()));
    // Copy nets in order so NetIds line up.
    for n in netlist.net_ids() {
        if netlist.is_input(n) {
            out.add_input(netlist.net_name(n));
        } else {
            out.add_net(netlist.net_name(n));
        }
    }
    for g in netlist.gates() {
        if g.kind == GateKind::Mux {
            let (s, a, b) = (g.inputs[0], g.inputs[1], g.inputs[2]);
            let ns = out.add_net(format!("{}_ns", netlist.net_name(g.output)));
            let u = out.add_net(format!("{}_u", netlist.net_name(g.output)));
            let v = out.add_net(format!("{}_v", netlist.net_name(g.output)));
            out.add_gate(GateKind::Not, &[s], ns, 0)
                .expect("transform invariant");
            out.add_gate(GateKind::And, &[s, a], u, g.delay)
                .expect("transform invariant");
            out.add_gate(GateKind::And, &[ns, b], v, g.delay)
                .expect("transform invariant");
            out.add_gate(GateKind::Or, &[u, v], g.output, 0)
                .expect("transform invariant");
        } else {
            out.add_gate(g.kind, &g.inputs, g.output, g.delay)
                .expect("transform invariant");
        }
    }
    for &po in netlist.outputs() {
        out.mark_output(po);
    }
    out
}

/// Returns a copy of `netlist` with zero-delay buffers removed: each
/// reader of a stripped buffer's output reads the buffer's input
/// directly. Buffers driving primary outputs, and buffers with nonzero
/// delay, are kept.
#[must_use]
pub fn strip_buffers(netlist: &Netlist) -> Netlist {
    // Resolve aliases: the representative of a stripped buffer's
    // output is (transitively) its input.
    let mut alias: Vec<NetId> = netlist.net_ids().collect();
    let mut stripped = vec![false; netlist.gate_count()];
    for (i, g) in netlist.gates().iter().enumerate() {
        if g.kind == GateKind::Buf && g.delay == 0 && !netlist.is_output(g.output) {
            alias[g.output.index()] = g.inputs[0];
            stripped[i] = true;
        }
    }
    let resolve = |mut n: NetId, alias: &[NetId]| {
        while alias[n.index()] != n {
            n = alias[n.index()];
        }
        n
    };
    let mut out = Netlist::new(netlist.name());
    let mut map: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for n in netlist.net_ids() {
        if resolve(n, &alias) != n {
            continue; // aliased away
        }
        let id = if netlist.is_input(n) {
            out.add_input(netlist.net_name(n))
        } else {
            out.add_net(netlist.net_name(n))
        };
        map[n.index()] = Some(id);
    }
    let lookup = |n: NetId, map: &[Option<NetId>], alias: &[NetId]| {
        map[resolve(n, alias).index()].expect("representative mapped")
    };
    for (i, g) in netlist.gates().iter().enumerate() {
        if stripped[i] {
            continue;
        }
        let ins: Vec<NetId> = g.inputs.iter().map(|&n| lookup(n, &map, &alias)).collect();
        out.add_gate(g.kind, &ins, lookup(g.output, &map, &alias), g.delay)
            .expect("transform invariant");
    }
    for &po in netlist.outputs() {
        out.mark_output(lookup(po, &map, &alias));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{carry_skip_block, CsaDelays};
    use crate::sim;

    #[test]
    fn decompose_preserves_function() {
        let nl = carry_skip_block(2, CsaDelays::default());
        let de = decompose_mux(&nl);
        assert!(sim::equivalent_exhaustive(&nl, &de, 8).unwrap());
        // One mux became four gates.
        assert_eq!(de.gate_count(), nl.gate_count() + 3);
        de.validate().unwrap();
    }

    #[test]
    fn decompose_preserves_pin_delays() {
        // Longest-path delays from every input to every output match.
        let nl = carry_skip_block(2, CsaDelays::default());
        let de = decompose_mux(&nl);
        fn longest(nl: &Netlist, target: NetId) -> Vec<i64> {
            let mut dist = vec![i64::MIN; nl.net_count()];
            dist[target.index()] = 0;
            let mut order = nl.topo_gates().unwrap();
            order.reverse();
            for g in order {
                let gate = nl.gate(g);
                let d = dist[gate.output.index()];
                if d == i64::MIN {
                    continue;
                }
                for &inp in &gate.inputs {
                    dist[inp.index()] = dist[inp.index()].max(d + i64::from(gate.delay));
                }
            }
            nl.inputs().iter().map(|pi| dist[pi.index()]).collect()
        }
        for (k, (&o1, &o2)) in nl.outputs().iter().zip(de.outputs()).enumerate() {
            assert_eq!(longest(&nl, o1), longest(&de, o2), "output {k}");
        }
    }

    #[test]
    fn strip_buffers_removes_zero_delay_bufs() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::Buf, &[a], b, 0).unwrap();
        nl.add_gate(GateKind::Buf, &[b], c, 2).unwrap(); // delayed: kept
        nl.add_gate(GateKind::Not, &[c], z, 1).unwrap();
        nl.mark_output(z);
        let stripped = strip_buffers(&nl);
        assert_eq!(stripped.gate_count(), 2);
        assert!(sim::equivalent_exhaustive(&nl, &stripped, 4).unwrap());
    }

    #[test]
    fn strip_keeps_output_buffers() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::Buf, &[a], z, 0).unwrap();
        nl.mark_output(z);
        let stripped = strip_buffers(&nl);
        assert_eq!(stripped.gate_count(), 1, "PO buffer must stay");
        assert!(sim::equivalent_exhaustive(&nl, &stripped, 2).unwrap());
    }

    #[test]
    fn strip_chains_of_buffers() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_net("b");
        let c = nl.add_net("c");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::Buf, &[a], b, 0).unwrap();
        nl.add_gate(GateKind::Buf, &[b], c, 0).unwrap();
        nl.add_gate(GateKind::Not, &[c], z, 1).unwrap();
        nl.mark_output(z);
        let stripped = strip_buffers(&nl);
        assert_eq!(stripped.gate_count(), 1);
        assert!(sim::equivalent_exhaustive(&nl, &stripped, 2).unwrap());
    }
}
