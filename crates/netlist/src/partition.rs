//! Cascade bipartitioning of flat circuits.
//!
//! The paper's Table 2 experiment creates hierarchical test cases by
//! partitioning a flat benchmark circuit "into two circuits in a
//! cascade structure so that one circuit drives the other", then
//! treating each part as a leaf module. [`cascade_bipartition`]
//! implements exactly that: gates are split by topological position, so
//! all cut nets flow from the first part to the second and the result
//! is a depth-1 hierarchy with no glue logic.

use std::collections::HashMap;

use crate::{Composite, Design, NetId, Netlist, NetlistError};

/// Splits `flat` into a two-module cascade design.
///
/// The first `⌈fraction·gates⌉` gates (in topological order) form the
/// leaf module `{name}_head`, the rest `{name}_tail`; a composite
/// `{name}_top` instantiates both. Primary inputs consumed by either
/// part are routed to it directly; nets crossing the cut become
/// head outputs / tail inputs.
///
/// Returns the design; the top module is named `{name}_top` where
/// `name` is the flat netlist's module name.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if `flat` is cyclic.
///
/// # Panics
///
/// Panics if `fraction` is not within `(0, 1)` or `flat` has no gates.
pub fn cascade_bipartition(flat: &Netlist, fraction: f64) -> Result<Design, NetlistError> {
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "fraction must be in (0, 1)"
    );
    assert!(flat.gate_count() > 0, "cannot partition an empty netlist");
    let order = flat.topo_gates()?;
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let split =
        ((flat.gate_count() as f64 * fraction).ceil() as usize).clamp(1, flat.gate_count() - 1);
    bipartition_at(flat, &order, split)
}

/// Like [`cascade_bipartition`], but sweeps the split point over
/// `[min_fraction, max_fraction]` of the gates (topological order) and
/// picks the position with the *narrowest cut* — the fewest nets
/// crossing from head to tail.
///
/// Real designs are partitioned at natural module boundaries where few,
/// weakly correlated signals cross; this sweep recovers that behaviour
/// on flat circuits and markedly improves hierarchical accuracy (a wide
/// correlated cut hides global false paths from the per-module
/// analysis).
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if `flat` is cyclic.
///
/// # Panics
///
/// Panics unless `0 < min_fraction ≤ max_fraction < 1` or if `flat` has
/// fewer than two gates.
pub fn cascade_bipartition_min_cut(
    flat: &Netlist,
    min_fraction: f64,
    max_fraction: f64,
) -> Result<Design, NetlistError> {
    assert!(
        min_fraction > 0.0 && min_fraction <= max_fraction && max_fraction < 1.0,
        "need 0 < min_fraction <= max_fraction < 1"
    );
    assert!(
        flat.gate_count() > 1,
        "cannot partition fewer than two gates"
    );
    let order = flat.topo_gates()?;
    let n = flat.gate_count();
    // Topological position of each gate.
    let mut pos = vec![0usize; n];
    for (p, &g) in order.iter().enumerate() {
        pos[g.index()] = p;
    }
    // cut(k) = #nets whose driver is at position < k with a reader at
    // position ≥ k. Build via a difference array.
    let mut diff = vec![0i64; n + 2];
    let fanouts = flat.fanouts();
    for net in flat.net_ids() {
        let Some(driver) = flat.driver(net) else {
            continue;
        };
        let d = pos[driver.index()];
        let last_reader = fanouts[net.index()].iter().map(|g| pos[g.index()]).max();
        if let Some(r) = last_reader {
            if r > d {
                // The net crosses every split k with d < k <= r.
                diff[d + 1] += 1;
                diff[r + 1] -= 1;
            }
        }
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let lo = ((n as f64 * min_fraction).ceil() as usize).clamp(1, n - 1);
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let hi = ((n as f64 * max_fraction).floor() as usize).clamp(lo, n - 1);
    let mut cut = 0i64;
    let mut best = (i64::MAX, lo);
    #[allow(clippy::needless_range_loop)] // k is the split position, not just an index
    for k in 1..=hi {
        cut += diff[k];
        if k >= lo && cut < best.0 {
            best = (cut, k);
        }
    }
    bipartition_at(flat, &order, best.1)
}

fn bipartition_at(
    flat: &Netlist,
    order: &[crate::GateId],
    split: usize,
) -> Result<Design, NetlistError> {
    // side[gate] = true if the gate belongs to the head.
    let mut head_gate = vec![false; flat.gate_count()];
    for &g in &order[..split] {
        head_gate[g.index()] = true;
    }

    let fanouts = flat.fanouts();
    // Classify each net.
    let driven_by_head = |n: NetId| {
        flat.driver(n)
            .map(|g| head_gate[g.index()])
            .unwrap_or(false)
    };
    let read_by = |n: NetId, head: bool| {
        fanouts[n.index()]
            .iter()
            .any(|g| head_gate[g.index()] == head)
    };

    let name = flat.name();
    let mut head = Netlist::new(format!("{name}_head"));
    let mut tail = Netlist::new(format!("{name}_tail"));
    let mut head_map: HashMap<NetId, NetId> = HashMap::new();
    let mut tail_map: HashMap<NetId, NetId> = HashMap::new();

    // Module inputs. Order: PIs first (in flat order), then cut nets
    // (for the tail).
    let mut head_inputs: Vec<NetId> = Vec::new();
    let mut tail_inputs: Vec<NetId> = Vec::new();
    for &pi in flat.inputs() {
        if read_by(pi, true) {
            head_map.insert(pi, head.add_input(flat.net_name(pi)));
            head_inputs.push(pi);
        }
        if read_by(pi, false) || flat.is_output(pi) {
            // PIs that are also POs are exported through the tail
            // (regardless of who reads them), so the top-level output
            // stays driven.
            tail_map.insert(pi, tail.add_input(flat.net_name(pi)));
            tail_inputs.push(pi);
        }
    }
    // Cut nets: head-driven nets read by the tail (or that are POs —
    // those are exported from the head directly).
    let mut cut_nets: Vec<NetId> = Vec::new();
    for n in flat.net_ids() {
        if driven_by_head(n) && read_by(n, false) {
            cut_nets.push(n);
        }
    }
    for &n in &cut_nets {
        tail_map.insert(n, tail.add_input(flat.net_name(n)));
        tail_inputs.push(n);
    }

    // Internal nets and gates.
    for n in flat.net_ids() {
        if let Some(g) = flat.driver(n) {
            if head_gate[g.index()] {
                head_map
                    .entry(n)
                    .or_insert_with(|| head.add_net(flat.net_name(n)));
            } else {
                tail_map
                    .entry(n)
                    .or_insert_with(|| tail.add_net(flat.net_name(n)));
            }
        }
    }
    for &g in order {
        let gate = flat.gate(g);
        let (module, map) = if head_gate[g.index()] {
            (&mut head, &head_map)
        } else {
            (&mut tail, &tail_map)
        };
        let inputs: Vec<NetId> = gate.inputs.iter().map(|n| map[n]).collect();
        module.add_gate(gate.kind, &inputs, map[&gate.output], gate.delay)?;
    }

    // Module outputs. Head: cut nets plus head-driven POs. Tail:
    // tail-driven POs plus passthrough PIs that are POs.
    let mut head_outputs: Vec<NetId> = Vec::new();
    for &n in &cut_nets {
        head.mark_output(head_map[&n]);
        head_outputs.push(n);
    }
    for &po in flat.outputs() {
        if driven_by_head(po) && !cut_nets.contains(&po) {
            head.mark_output(head_map[&po]);
            head_outputs.push(po);
        }
    }
    let mut tail_outputs: Vec<NetId> = Vec::new();
    for &po in flat.outputs() {
        if !driven_by_head(po) {
            tail.mark_output(tail_map[&po]);
            tail_outputs.push(po);
        }
    }

    // Top-level composite.
    let mut top = Composite::new(format!("{name}_top"));
    let mut top_map: HashMap<NetId, NetId> = HashMap::new();
    for &pi in flat.inputs() {
        top_map.insert(pi, top.add_input(flat.net_name(pi)));
    }
    for &n in cut_nets
        .iter()
        .chain(head_outputs.iter())
        .chain(tail_outputs.iter())
    {
        top_map
            .entry(n)
            .or_insert_with(|| top.add_net(flat.net_name(n)));
    }
    // Primary inputs that are also primary outputs pass through the
    // tail module; their exported copy needs a fresh top-level net
    // (an instance cannot drive an input net).
    let mut po_override: HashMap<NetId, NetId> = HashMap::new();
    for &po in flat.outputs() {
        if flat.is_input(po) {
            let fresh = top.add_net(flat.net_name(po));
            po_override.insert(po, fresh);
        }
    }
    let bind = |nets: &[NetId],
                map: &HashMap<NetId, NetId>,
                overrides: Option<&HashMap<NetId, NetId>>|
     -> Vec<NetId> {
        nets.iter()
            .map(|n| overrides.and_then(|o| o.get(n)).copied().unwrap_or(map[n]))
            .collect()
    };
    top.add_instance(
        "head",
        head.name().to_string(),
        &bind(&head_inputs, &top_map, None),
        &bind(&head_outputs, &top_map, None),
    );
    top.add_instance(
        "tail",
        tail.name().to_string(),
        &bind(&tail_inputs, &top_map, None),
        &bind(&tail_outputs, &top_map, Some(&po_override)),
    );
    for &po in flat.outputs() {
        top.mark_output(po_override.get(&po).copied().unwrap_or(top_map[&po]));
    }

    let mut design = Design::new();
    design.add_leaf(head)?;
    design.add_leaf(tail)?;
    design.add_composite(top)?;
    design.validate()?;
    Ok(design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{random_circuit, ripple_carry_adder, CsaDelays, RandomCircuitSpec};
    use crate::sim;

    #[test]
    fn partition_preserves_function_rca() {
        let flat = ripple_carry_adder(3, CsaDelays::default());
        let design = cascade_bipartition(&flat, 0.5).unwrap();
        let reflat = design.flatten("rca3_top").unwrap();
        assert_eq!(flat.inputs().len(), reflat.inputs().len());
        assert_eq!(flat.outputs().len(), reflat.outputs().len());
        // Port order may differ, so compare by name-keyed exhaustive sim.
        for v in 0u64..(1 << flat.inputs().len()) {
            let vec_flat: Vec<bool> = (0..flat.inputs().len())
                .map(|i| (v >> i) & 1 == 1)
                .collect();
            let out_flat = sim::eval(&flat, &vec_flat).unwrap();
            // Build reflat's input vector by matching names.
            let mut vec2 = vec![false; reflat.inputs().len()];
            for (k, &pi) in reflat.inputs().iter().enumerate() {
                let name = reflat.net_name(pi);
                let idx = flat
                    .inputs()
                    .iter()
                    .position(|&p| flat.net_name(p) == name)
                    .unwrap();
                vec2[k] = vec_flat[idx];
            }
            let out2 = sim::eval(&reflat, &vec2).unwrap();
            for (k, &po) in reflat.outputs().iter().enumerate() {
                let name = reflat.net_name(po);
                let idx = flat
                    .outputs()
                    .iter()
                    .position(|&p| flat.net_name(p) == name)
                    .unwrap();
                assert_eq!(out2[k], out_flat[idx], "output {name} vector {v}");
            }
        }
    }

    #[test]
    fn partition_preserves_function_random() {
        let spec = RandomCircuitSpec {
            inputs: 6,
            gates: 60,
            seed: 11,
            locality: 8,
            global_fanin_prob: 0.2,
            mix: Default::default(),
        };
        let flat = random_circuit("r60", spec);
        let design = cascade_bipartition(&flat, 0.5).unwrap();
        let reflat = design.flatten("r60_top").unwrap();
        for v in 0u64..(1 << 6) {
            let vector: Vec<bool> = (0..6).map(|i| (v >> i) & 1 == 1).collect();
            let a = sim::eval(&flat, &vector).unwrap();
            // The generators keep PI order, so direct eval is safe here;
            // output order matches flat.outputs() order by construction.
            let mut vec2 = vec![false; reflat.inputs().len()];
            for (k, &pi) in reflat.inputs().iter().enumerate() {
                let name = reflat.net_name(pi);
                let idx = flat
                    .inputs()
                    .iter()
                    .position(|&p| flat.net_name(p) == name)
                    .unwrap();
                vec2[k] = vector[idx];
            }
            let b = sim::eval(&reflat, &vec2).unwrap();
            for (k, &po) in reflat.outputs().iter().enumerate() {
                let name = reflat.net_name(po);
                let idx = flat
                    .outputs()
                    .iter()
                    .position(|&p| flat.net_name(p) == name)
                    .unwrap();
                assert_eq!(b[k], a[idx], "output {name} vector {v}");
            }
        }
    }

    #[test]
    fn partition_is_a_true_cascade() {
        let spec = RandomCircuitSpec {
            inputs: 8,
            gates: 120,
            seed: 3,
            locality: 12,
            global_fanin_prob: 0.2,
            mix: Default::default(),
        };
        let flat = random_circuit("c", spec);
        let design = cascade_bipartition(&flat, 0.4).unwrap();
        let top = design.composite("c_top").unwrap();
        assert_eq!(top.instances().len(), 2);
        // Topological order must put head before tail.
        let order = top.instance_topo_order().unwrap();
        assert_eq!(order, vec![0, 1]);
        // Both leaves are nonempty.
        assert!(design.leaf("c_head").unwrap().gate_count() > 0);
        assert!(design.leaf("c_tail").unwrap().gate_count() > 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let flat = ripple_carry_adder(2, CsaDelays::default());
        let _ = cascade_bipartition(&flat, 1.5);
    }
}

#[cfg(test)]
mod passthrough_tests {
    use super::*;
    use crate::{GateKind, Netlist};

    /// A primary input that is also a primary output (legal in .bench
    /// files) must survive bipartitioning even when head gates read it.
    #[test]
    fn pi_that_is_po_survives_partitioning() {
        let mut nl = Netlist::new("pp");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let t = nl.add_net("t");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::And, &[a, b], t, 1).unwrap();
        nl.add_gate(GateKind::Not, &[t], z, 1).unwrap();
        nl.mark_output(z);
        nl.mark_output(a); // passthrough output
        let design = cascade_bipartition(&nl, 0.5).unwrap();
        let flat = design.flatten("pp_top").unwrap();
        assert_eq!(flat.outputs().len(), 2);
        // Function preserved (match outputs by name).
        for v in 0u64..4 {
            let vector = vec![v & 1 == 1, v & 2 == 2];
            let expect = crate::sim::eval(&nl, &vector).unwrap();
            let mut vec2 = vec![false; 2];
            for (k, &pi) in flat.inputs().iter().enumerate() {
                let idx = nl
                    .inputs()
                    .iter()
                    .position(|&p| nl.net_name(p) == flat.net_name(pi))
                    .unwrap();
                vec2[k] = vector[idx];
            }
            let got = crate::sim::eval(&flat, &vec2).unwrap();
            // Output order is preserved by the partitioner.
            assert_eq!(got, expect, "v={v}");
        }
    }
}
