//! A Berkeley Logic Interchange Format (BLIF) subset.
//!
//! BLIF is SIS's native format — the system the paper's implementation
//! was built on. Supported constructs:
//!
//! ```text
//! .model adder
//! .inputs a b cin
//! .outputs sum cout
//! .names a b cin sum     # PLA cover: one row per product term
//! 100 1
//! 010 1
//! 001 1
//! 111 1
//! .latch d q             # optional: edge-triggered register
//! .end
//! ```
//!
//! Each `.names` cover is expanded structurally into two-level
//! AND–OR–NOT logic (inverters delay 0, product/sum gates delay 1), so
//! a cover behaves like one unit-delay complex gate for the timing
//! engines. `.latch` lines produce a [`SeqCircuit`] register with unit
//! clock-to-q and setup.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{GateKind, NetId, Netlist, NetlistError, SeqCircuit};

/// Parses a BLIF model into a sequential circuit (with an empty
/// register list when the model is purely combinational).
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input and structural
/// errors on inconsistent models.
pub fn parse(text: &str) -> Result<SeqCircuit, NetlistError> {
    let mut name = String::from("blif");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut covers: Vec<(usize, Vec<String>, Vec<String>)> = Vec::new(); // line, signals, rows
    let mut latches: Vec<(usize, String, String)> = Vec::new(); // line, d, q

    // Join continuation lines (trailing backslash).
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim_end();
        let (joined_line, mut content) = match pending.take() {
            Some((l, mut s)) => {
                s.push(' ');
                s.push_str(line.trim_start());
                (l, s)
            }
            None => (lineno, line.to_string()),
        };
        if content.ends_with('\\') {
            content.pop();
            pending = Some((joined_line, content));
        } else {
            logical.push((joined_line, content));
        }
    }
    if let Some((l, _)) = pending {
        return Err(NetlistError::Parse {
            line: l,
            message: "dangling line continuation".to_string(),
        });
    }

    let mut current_cover: Option<(usize, Vec<String>, Vec<String>)> = None;
    for (lineno, line) in logical {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('.') {
            if let Some(c) = current_cover.take() {
                covers.push(c);
            }
            let mut toks = trimmed.split_whitespace();
            let directive = toks.next().expect("non-empty");
            let rest: Vec<String> = toks.map(str::to_string).collect();
            match directive {
                ".model" => {
                    if let Some(n) = rest.first() {
                        name = n.clone();
                    }
                }
                ".inputs" => inputs.extend(rest),
                ".outputs" => outputs.extend(rest),
                ".names" => {
                    if rest.is_empty() {
                        return Err(NetlistError::Parse {
                            line: lineno,
                            message: ".names needs at least an output signal".to_string(),
                        });
                    }
                    current_cover = Some((lineno, rest, Vec::new()));
                }
                ".latch" => {
                    if rest.len() < 2 {
                        return Err(NetlistError::Parse {
                            line: lineno,
                            message: "usage: .latch INPUT OUTPUT [type control [init]]".to_string(),
                        });
                    }
                    latches.push((lineno, rest[0].clone(), rest[1].clone()));
                }
                ".end" => break,
                // Ignore common benign directives.
                ".default_input_arrival" | ".clock" | ".wire_load_slope" => {}
                other => {
                    return Err(NetlistError::Parse {
                        line: lineno,
                        message: format!("unsupported directive `{other}`"),
                    })
                }
            }
        } else if let Some((_, _, rows)) = current_cover.as_mut() {
            rows.push(trimmed.to_string());
        } else {
            return Err(NetlistError::Parse {
                line: lineno,
                message: format!("unexpected line `{trimmed}`"),
            });
        }
    }
    if let Some(c) = current_cover.take() {
        covers.push(c);
    }

    // Build the netlist.
    let mut nl = Netlist::new(&name);
    let mut by_name: HashMap<String, NetId> = HashMap::new();
    for pi in &inputs {
        by_name.insert(pi.clone(), nl.add_input(pi.clone()));
    }
    // Latch outputs are additional "inputs" of the combinational core.
    for (_, _, q) in &latches {
        if !by_name.contains_key(q) {
            by_name.insert(q.clone(), nl.add_input(q.clone()));
        }
    }
    // Declare all cover signals.
    for (_, signals, _) in &covers {
        for s in signals {
            if !by_name.contains_key(s) {
                by_name.insert(s.clone(), nl.add_net(s.clone()));
            }
        }
    }
    for (_, d, _) in &latches {
        if !by_name.contains_key(d) {
            by_name.insert(d.clone(), nl.add_net(d.clone()));
        }
    }

    for (lineno, signals, rows) in &covers {
        let (out_name, in_names) = signals.split_last().expect("non-empty");
        let out = by_name[out_name];
        let ins: Vec<NetId> = in_names.iter().map(|n| by_name[n]).collect();
        build_cover(&mut nl, &ins, out, rows, *lineno)?;
    }

    for po in &outputs {
        let id = *by_name.get(po).ok_or_else(|| NetlistError::Parse {
            line: 0,
            message: format!(".outputs references undefined signal `{po}`"),
        })?;
        nl.mark_output(id);
    }
    // Latch data inputs must be observable as core outputs.
    let mut registers = Vec::with_capacity(latches.len());
    for (lineno, d, q) in &latches {
        let d_id = *by_name.get(d).ok_or_else(|| NetlistError::Parse {
            line: *lineno,
            message: format!(".latch input `{d}` undefined"),
        })?;
        if !nl.is_output(d_id) {
            nl.mark_output(d_id);
        }
        registers.push((d_id, by_name[q], 1, 1));
    }
    nl.validate()?;
    SeqCircuit::new(nl, registers)
}

/// Expands one PLA cover into AND–OR–NOT logic driving `out`.
fn build_cover(
    nl: &mut Netlist,
    ins: &[NetId],
    out: NetId,
    rows: &[String],
    lineno: usize,
) -> Result<(), NetlistError> {
    // Constant covers.
    if ins.is_empty() {
        let kind = if rows.iter().any(|r| r.trim() == "1") {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        nl.add_gate(kind, &[], out, 0)?;
        return Ok(());
    }
    let mut inverted: HashMap<NetId, NetId> = HashMap::new();
    let mut products: Vec<NetId> = Vec::new();
    for row in rows {
        let mut parts = row.split_whitespace();
        let cube = parts.next().unwrap_or("");
        let value = parts.next().unwrap_or("1");
        if value != "1" {
            return Err(NetlistError::Parse {
                line: lineno,
                message: "only on-set (`1`) covers are supported".to_string(),
            });
        }
        if cube.len() != ins.len() {
            return Err(NetlistError::Parse {
                line: lineno,
                message: format!(
                    "cube `{cube}` has {} columns, cover has {} inputs",
                    cube.len(),
                    ins.len()
                ),
            });
        }
        let mut literals: Vec<NetId> = Vec::new();
        for (k, c) in cube.chars().enumerate() {
            match c {
                '1' => literals.push(ins[k]),
                '0' => {
                    let inv = match inverted.get(&ins[k]) {
                        Some(&n) => n,
                        None => {
                            let n = nl.add_net(format!("{}_bar", nl.net_name(ins[k])));
                            nl.add_gate(GateKind::Not, &[ins[k]], n, 0)?;
                            inverted.insert(ins[k], n);
                            n
                        }
                    };
                    literals.push(inv);
                }
                '-' => {}
                other => {
                    return Err(NetlistError::Parse {
                        line: lineno,
                        message: format!("bad cube character `{other}`"),
                    })
                }
            }
        }
        let product = match literals.len() {
            0 => {
                // Full don't-care row: the function is constant 1.
                let n = nl.add_net("const_row");
                nl.add_gate(GateKind::Const1, &[], n, 0)?;
                n
            }
            1 => literals[0],
            _ => {
                let n = nl.add_net("prod");
                nl.add_gate(GateKind::And, &literals, n, 1)?;
                n
            }
        };
        products.push(product);
    }
    match products.len() {
        0 => {
            nl.add_gate(GateKind::Const0, &[], out, 0)?;
        }
        1 => {
            nl.add_gate(GateKind::Buf, &[products[0]], out, 1)?;
        }
        _ => {
            nl.add_gate(GateKind::Or, &products, out, 1)?;
        }
    }
    Ok(())
}

/// Serializes a combinational netlist to BLIF (one `.names` per gate).
#[must_use]
pub fn write(netlist: &Netlist) -> String {
    let mut s = String::new();
    let _ = writeln!(s, ".model {}", netlist.name());
    let ins: Vec<&str> = netlist
        .inputs()
        .iter()
        .map(|&n| netlist.net_name(n))
        .collect();
    let outs: Vec<&str> = netlist
        .outputs()
        .iter()
        .map(|&n| netlist.net_name(n))
        .collect();
    let _ = writeln!(s, ".inputs {}", ins.join(" "));
    let _ = writeln!(s, ".outputs {}", outs.join(" "));
    for g in netlist.gates() {
        let names: Vec<&str> = g
            .inputs
            .iter()
            .map(|&n| netlist.net_name(n))
            .chain(std::iter::once(netlist.net_name(g.output)))
            .collect();
        let _ = writeln!(s, ".names {}", names.join(" "));
        let n = g.inputs.len();
        match g.kind {
            GateKind::Const0 => {}
            GateKind::Const1 => {
                let _ = writeln!(s, "1");
            }
            GateKind::Buf => {
                let _ = writeln!(s, "1 1");
            }
            GateKind::Not => {
                let _ = writeln!(s, "0 1");
            }
            GateKind::And => {
                let _ = writeln!(s, "{} 1", "1".repeat(n));
            }
            GateKind::Or => {
                for k in 0..n {
                    let mut row = vec!['-'; n];
                    row[k] = '1';
                    let _ = writeln!(s, "{} 1", row.iter().collect::<String>());
                }
            }
            GateKind::Nand => {
                for k in 0..n {
                    let mut row = vec!['-'; n];
                    row[k] = '0';
                    let _ = writeln!(s, "{} 1", row.iter().collect::<String>());
                }
            }
            GateKind::Nor => {
                let _ = writeln!(s, "{} 1", "0".repeat(n));
            }
            GateKind::Xor => {
                let _ = writeln!(s, "10 1");
                let _ = writeln!(s, "01 1");
            }
            GateKind::Xnor => {
                let _ = writeln!(s, "11 1");
                let _ = writeln!(s, "00 1");
            }
            GateKind::Mux => {
                let _ = writeln!(s, "11- 1");
                let _ = writeln!(s, "0-1 1");
            }
        }
    }
    let _ = writeln!(s, ".end");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, sim};

    #[test]
    fn parse_simple_cover() {
        let text = "\
.model maj
.inputs a b c
.outputs z
.names a b c z
11- 1
1-1 1
-11 1
.end
";
        let seq = parse(text).unwrap();
        assert!(seq.registers().is_empty());
        let nl = seq.core();
        assert_eq!(nl.inputs().len(), 3);
        // Majority function.
        for v in 0u32..8 {
            let bits: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            let expect = bits.iter().filter(|&&b| b).count() >= 2;
            assert_eq!(sim::eval(nl, &bits).unwrap(), vec![expect], "v={v}");
        }
    }

    #[test]
    fn inverting_cover() {
        let text = ".model inv\n.inputs a\n.outputs z\n.names a z\n0 1\n.end\n";
        let seq = parse(text).unwrap();
        assert_eq!(sim::eval(seq.core(), &[false]).unwrap(), vec![true]);
        assert_eq!(sim::eval(seq.core(), &[true]).unwrap(), vec![false]);
    }

    #[test]
    fn constant_covers() {
        let text = "\
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
";
        let seq = parse(text).unwrap();
        assert_eq!(sim::eval(seq.core(), &[true]).unwrap(), vec![true, false]);
    }

    #[test]
    fn latch_becomes_register() {
        let text = "\
.model toggle
.inputs
.outputs out
.names q d
0 1
.names q out
1 1
.latch d q
.end
";
        let seq = parse(text).unwrap();
        assert_eq!(seq.registers().len(), 1);
        let trace = seq.simulate(&vec![vec![]; 3]).unwrap();
        assert_eq!(trace, vec![vec![false], vec![true], vec![false]]);
    }

    #[test]
    fn continuation_lines_joined() {
        let text = ".model m\n.inputs a \\\nb\n.outputs z\n.names a b z\n11 1\n.end\n";
        let seq = parse(text).unwrap();
        assert_eq!(seq.core().inputs().len(), 2);
    }

    #[test]
    fn write_round_trips_functionally() {
        let nl = gen::carry_skip_block(2, gen::CsaDelays::default());
        let text = write(&nl);
        let parsed = parse(&text).unwrap();
        assert!(sim::equivalent_exhaustive(nl_ref(&nl), parsed.core(), 8).unwrap());
    }

    fn nl_ref(nl: &Netlist) -> &Netlist {
        nl
    }

    #[test]
    fn bad_cube_rejected() {
        let text = ".model m\n.inputs a\n.outputs z\n.names a z\n2 1\n.end\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse { .. })));
        let text = ".model m\n.inputs a\n.outputs z\n.names a z\n11 1\n.end\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn off_set_cover_rejected() {
        let text = ".model m\n.inputs a\n.outputs z\n.names a z\n1 0\n.end\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn unknown_directive_rejected() {
        let text = ".model m\n.bogus x\n.end\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse { .. })));
    }

    #[test]
    fn undefined_output_rejected() {
        let text = ".model m\n.inputs a\n.outputs ghost\n.end\n";
        assert!(matches!(parse(text), Err(NetlistError::Parse { .. })));
    }
}
