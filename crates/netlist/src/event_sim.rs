//! Event-driven timing simulation (transport-delay model).
//!
//! An independent witness for the timing analyses: simulating an input
//! transition with the *nominal* gate delays yields one concrete
//! settling waveform, and under the XBD0 model (which quantifies over
//! all delay assignments up to nominal) the analytical stable time must
//! upper-bound every simulated settle time. The test-suite exploits
//! this: for random circuits and random vector pairs,
//!
//! ```text
//! simulated settle(o) ≤ functional arrival(o) ≤ topological arrival(o)
//! ```
//!
//! The simulator uses transport-delay semantics: every input change is
//! propagated to the output after the gate delay, so glitches are
//! modelled (and counted — useful in its own right for hazard
//! analysis).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{sim, NetId, Netlist, NetlistError, Time};

/// Result of simulating one input transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransitionOutcome {
    /// Final value of every net.
    pub final_values: Vec<bool>,
    /// Per primary output: the time of its *last* value change, or
    /// [`Time::NEG_INF`] if it never changed.
    pub output_settle: Vec<Time>,
    /// The latest change time on any primary output.
    pub settle: Time,
    /// Total net value changes processed (≥ the number of nets that
    /// changed; the excess counts glitches).
    pub events: u64,
    /// Events on primary outputs beyond their final transition —
    /// observable output glitches.
    pub output_glitches: u64,
}

/// Simulates the transition `from → to` with per-input switch times.
///
/// All nets start at their steady state under `from`. At `arrivals[i]`
/// (which must be finite) input `i` switches to `to[i]` (no event if
/// the two values agree). Gate outputs follow with transport delay.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
///
/// # Panics
///
/// Panics if the vector lengths do not match the input count or an
/// arrival is infinite.
///
/// # Example
///
/// ```
/// use hfta_netlist::{event_sim, GateKind, Netlist, Time};
///
/// # fn main() -> Result<(), hfta_netlist::NetlistError> {
/// let mut nl = Netlist::new("inv");
/// let a = nl.add_input("a");
/// let z = nl.add_net("z");
/// nl.add_gate(GateKind::Not, &[a], z, 3)?;
/// nl.mark_output(z);
/// let out = event_sim::simulate_transition(
///     &nl, &[false], &[true], &[Time::new(5)])?;
/// assert_eq!(out.settle, Time::new(8)); // switch at 5 + delay 3
/// assert_eq!(out.final_values[z.index()], false);
/// # Ok(())
/// # }
/// ```
pub fn simulate_transition(
    netlist: &Netlist,
    from: &[bool],
    to: &[bool],
    arrivals: &[Time],
) -> Result<TransitionOutcome, NetlistError> {
    let n_in = netlist.inputs().len();
    assert_eq!(from.len(), n_in, "`from` vector length mismatch");
    assert_eq!(to.len(), n_in, "`to` vector length mismatch");
    assert_eq!(arrivals.len(), n_in, "arrival vector length mismatch");
    for &a in arrivals {
        assert!(a.is_finite(), "event simulation needs finite arrivals");
    }

    let mut values = sim::eval_all(netlist, from)?;
    let fanouts = netlist.fanouts();

    // Min-heap of (time, sequence, net, value). The sequence number
    // makes processing deterministic for simultaneous events.
    let mut queue: BinaryHeap<Reverse<(Time, u64, u32, bool)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (k, &pi) in netlist.inputs().iter().enumerate() {
        if from[k] != to[k] {
            queue.push(Reverse((arrivals[k], seq, pi.0, to[k])));
            seq += 1;
        }
    }

    let mut events = 0u64;
    let mut last_change = vec![Time::NEG_INF; netlist.net_count()];
    let mut output_events = vec![0u64; netlist.net_count()];

    while let Some(Reverse((t, _, net_raw, value))) = queue.pop() {
        let net = NetId(net_raw);
        if values[net.index()] == value {
            continue; // superseded by an earlier opposite event
        }
        values[net.index()] = value;
        last_change[net.index()] = t;
        events += 1;
        if netlist.is_output(net) {
            output_events[net.index()] += 1;
        }
        for &g in &fanouts[net.index()] {
            let gate = netlist.gate(g);
            let ins: Vec<bool> = gate.inputs.iter().map(|n| values[n.index()]).collect();
            let out_val = gate.kind.eval(&ins);
            // Transport delay: schedule unconditionally; stale events
            // are filtered by the value check above.
            queue.push(Reverse((
                t + Time::from(gate.delay),
                seq,
                gate.output.0,
                out_val,
            )));
            seq += 1;
        }
    }

    let output_settle: Vec<Time> = netlist
        .outputs()
        .iter()
        .map(|o| last_change[o.index()])
        .collect();
    let settle = output_settle.iter().copied().fold(Time::NEG_INF, Time::max);
    let output_glitches = netlist
        .outputs()
        .iter()
        .map(|o| output_events[o.index()].saturating_sub(1))
        .sum();
    Ok(TransitionOutcome {
        final_values: values,
        output_settle,
        settle,
        events,
        output_glitches,
    })
}

/// Monte-Carlo settle-time estimation: simulates `samples` random
/// vector pairs (seeded) and returns, per output, the worst observed
/// settle time. This is a *lower bound* on the true worst-case delay —
/// the analytical engines must dominate it.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists.
///
/// # Panics
///
/// Panics if `arrivals` has the wrong length or contains infinities.
pub fn monte_carlo_settle(
    netlist: &Netlist,
    arrivals: &[Time],
    samples: usize,
    seed: u64,
) -> Result<Vec<Time>, NetlistError> {
    let mut rng = hfta_testkit::Rng::seed_from_u64(seed);
    let n = netlist.inputs().len();
    let mut worst = vec![Time::NEG_INF; netlist.outputs().len()];
    for _ in 0..samples {
        let from: Vec<bool> = (0..n).map(|_| rng.next_bool()).collect();
        let to: Vec<bool> = (0..n).map(|_| rng.next_bool()).collect();
        let outcome = simulate_transition(netlist, &from, &to, arrivals)?;
        for (w, &s) in worst.iter_mut().zip(&outcome.output_settle) {
            *w = (*w).max(s);
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{carry_skip_block, CsaDelays};
    use crate::GateKind;

    fn t(v: i64) -> Time {
        Time::new(v)
    }

    #[test]
    fn single_gate_transition() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::And, &[a, b], z, 2).unwrap();
        nl.mark_output(z);
        // 10 -> 11: output rises 2 after b switches.
        let out = simulate_transition(&nl, &[true, false], &[true, true], &[t(0), t(3)]).unwrap();
        assert_eq!(out.settle, t(5));
        assert!(out.final_values[z.index()]);
        assert_eq!(out.output_glitches, 0);
    }

    #[test]
    fn no_change_means_no_events() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::Buf, &[a], z, 1).unwrap();
        nl.mark_output(z);
        let out = simulate_transition(&nl, &[true], &[true], &[t(0)]).unwrap();
        assert_eq!(out.settle, Time::NEG_INF);
        assert_eq!(out.events, 0);
    }

    #[test]
    fn static_hazard_produces_glitch() {
        // z = a + ā with unequal path delays. On a 1→0 transition of
        // `a` (falling at t=0): the OR momentarily sees (0, 0) and
        // drops z at t=1; the inverter raises ā at t=1 and the OR
        // restores z at t=2 — a static-1 hazard.
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let na = nl.add_net("na");
        let z = nl.add_net("z");
        nl.add_gate(GateKind::Not, &[a], na, 1).unwrap();
        nl.add_gate(GateKind::Or, &[a, na], z, 1).unwrap();
        nl.mark_output(z);
        let out = simulate_transition(&nl, &[true], &[false], &[t(0)]).unwrap();
        assert!(out.final_values[z.index()]);
        assert_eq!(out.settle, t(2));
        assert_eq!(out.output_glitches, 1, "static-1 hazard observed");
    }

    #[test]
    fn final_values_match_steady_state() {
        let nl = carry_skip_block(2, CsaDelays::default());
        let from = vec![false, true, false, true, true];
        let to = vec![true, true, true, false, true];
        let arrivals = vec![t(0); 5];
        let out = simulate_transition(&nl, &from, &to, &arrivals).unwrap();
        let steady = sim::eval_all(&nl, &to).unwrap();
        assert_eq!(out.final_values, steady);
    }

    #[test]
    fn settle_bounded_by_topological_delay() {
        let nl = carry_skip_block(2, CsaDelays::default());
        let arrivals = vec![t(0); 5];
        // Topological bound: c_out at 8 (worst output).
        let worst = monte_carlo_settle(&nl, &arrivals, 64, 1).unwrap();
        for &w in &worst {
            assert!(w <= t(8), "settle {w} above topological bound");
        }
        // Something must actually switch across 64 random pairs.
        assert!(worst.iter().any(|&w| w > Time::NEG_INF));
    }

    #[test]
    fn skip_path_settles_fast_when_only_cin_switches() {
        // Only c_in changes: the ripple chain may wobble, but when the
        // skip condition holds (p0 = p1 = 1), c_out follows c_in in 2.
        let nl = carry_skip_block(2, CsaDelays::default());
        // a = 01, b = 10 -> p0 = p1 = 1.
        let from = vec![false, true, false, false, true];
        let to = vec![true, true, false, false, true];
        let out = simulate_transition(&nl, &from, &to, &[t(0); 5]).unwrap();
        let c_out_pos = nl.outputs().len() - 1;
        assert_eq!(out.output_settle[c_out_pos], t(2));
    }

    #[test]
    fn monte_carlo_is_deterministic() {
        let nl = carry_skip_block(2, CsaDelays::default());
        let a = monte_carlo_settle(&nl, &[t(0); 5], 16, 9).unwrap();
        let b = monte_carlo_settle(&nl, &[t(0); 5], 16, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "finite arrivals")]
    fn infinite_arrival_rejected() {
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        nl.mark_output(a);
        let _ = simulate_transition(&nl, &[false], &[true], &[Time::POS_INF]);
    }
}
#[cfg(test)]
mod golden {
    use super::*;
    use crate::gen::{carry_skip_block, CsaDelays};

    /// Golden-value pin on the seeded stimulus stream: the Monte-Carlo
    /// driver must draw the same vector pairs for a given seed on every
    /// run and platform (part of the reproducibility contract; see the
    /// matching pins in `gen::random`).
    #[test]
    fn pinned_monte_carlo_settle_per_seed() {
        let nl = carry_skip_block(2, CsaDelays::default());
        let worst = monte_carlo_settle(&nl, &[Time::new(0); 5], 16, 9).unwrap();
        let expected: Vec<Time> = [4, 6, 8].into_iter().map(Time::new).collect();
        assert_eq!(worst, expected);
    }
}
