//! The ISCAS `.bench` netlist format.
//!
//! The `.bench` format is the lingua franca of the ISCAS-85/89 benchmark
//! suites used in the paper's Table 2 experiment:
//!
//! ```text
//! # comment
//! INPUT(a)
//! INPUT(b)
//! OUTPUT(z)
//! t = AND(a, b)
//! z = NOT(t)
//! ```
//!
//! Flip-flop primitives (`DFF`) are not supported — the paper analyzes
//! combinational circuits. An optional HFTA extension annotates gate
//! delays: `z = AND(a, b) # delay=2`. Unannotated gates default to the
//! unit delay model used throughout the paper's evaluation.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{GateKind, Netlist, NetlistError};

/// Parses a `.bench` description into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on malformed input, and the usual
/// structural errors (multiple drivers, bad arity) when the description
/// is inconsistent.
///
/// # Example
///
/// ```
/// use hfta_netlist::bench_format;
///
/// # fn main() -> Result<(), hfta_netlist::NetlistError> {
/// let text = "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n";
/// let nl = bench_format::parse(text, "nand2")?;
/// assert_eq!(nl.gate_count(), 1);
/// assert_eq!(nl.inputs().len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str, name: &str) -> Result<Netlist, NetlistError> {
    let mut nl = Netlist::new(name);
    let mut pending_outputs: Vec<(usize, String)> = Vec::new();
    let mut gates: Vec<(usize, String, GateKind, Vec<String>, u32)> = Vec::new();
    let mut declared_inputs: HashMap<String, ()> = HashMap::new();

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        let delay = parse_delay_annotation(raw, lineno)?;
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = strip_directive(line, "INPUT") {
            if declared_inputs.insert(inner.to_string(), ()).is_some() {
                return Err(NetlistError::Duplicate {
                    what: "input",
                    name: inner.to_string(),
                });
            }
            nl.add_input(inner);
        } else if let Some(inner) = strip_directive(line, "OUTPUT") {
            pending_outputs.push((lineno, inner.to_string()));
        } else if let Some(eq) = line.find('=') {
            let lhs = line[..eq].trim().to_string();
            let rhs = line[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| NetlistError::Parse {
                line: lineno,
                message: format!("expected `gate(args)` after `=`, got `{rhs}`"),
            })?;
            if !rhs.ends_with(')') {
                return Err(NetlistError::Parse {
                    line: lineno,
                    message: "missing closing parenthesis".to_string(),
                });
            }
            let kind_name = rhs[..open].trim();
            let kind = GateKind::from_name(kind_name).ok_or_else(|| NetlistError::Parse {
                line: lineno,
                message: format!("unknown gate kind `{kind_name}`"),
            })?;
            let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            gates.push((lineno, lhs, kind, args, delay.unwrap_or(1)));
        } else {
            return Err(NetlistError::Parse {
                line: lineno,
                message: format!("unrecognized line `{line}`"),
            });
        }
    }

    // Create all driven nets first so gates can reference forward.
    for (_, lhs, _, _, _) in &gates {
        if nl.find_net(lhs).is_none() {
            nl.add_net(lhs.clone());
        }
    }
    for (lineno, lhs, kind, args, delay) in &gates {
        let output = nl.find_net(lhs).expect("created above");
        let mut inputs = Vec::with_capacity(args.len());
        for a in args {
            let id = nl.find_net(a).ok_or_else(|| NetlistError::Parse {
                line: *lineno,
                message: format!("gate input `{a}` is neither an INPUT nor a defined signal"),
            })?;
            inputs.push(id);
        }
        nl.add_gate(*kind, &inputs, output, *delay)?;
    }
    for (lineno, out) in pending_outputs {
        let id = nl.find_net(&out).ok_or_else(|| NetlistError::Parse {
            line: lineno,
            message: format!("OUTPUT references undefined signal `{out}`"),
        })?;
        nl.mark_output(id);
    }
    nl.validate()?;
    Ok(nl)
}

fn strip_directive<'a>(line: &'a str, directive: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(directive)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

fn parse_delay_annotation(raw: &str, lineno: usize) -> Result<Option<u32>, NetlistError> {
    let Some(comment) = raw.split_once('#').map(|(_, c)| c) else {
        return Ok(None);
    };
    let Some(rest) = comment.trim().strip_prefix("delay=") else {
        return Ok(None);
    };
    rest.trim()
        .parse::<u32>()
        .map(Some)
        .map_err(|_| NetlistError::Parse {
            line: lineno,
            message: format!("bad delay annotation `{}`", rest.trim()),
        })
}

/// Serializes a [`Netlist`] to `.bench` text, with `# delay=` extensions
/// for non-unit delays. [`parse`] round-trips the output.
#[must_use]
pub fn write(netlist: &Netlist) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# module {}", netlist.name());
    for &pi in netlist.inputs() {
        let _ = writeln!(s, "INPUT({})", netlist.net_name(pi));
    }
    for &po in netlist.outputs() {
        let _ = writeln!(s, "OUTPUT({})", netlist.net_name(po));
    }
    for g in netlist.gates() {
        let args: Vec<&str> = g.inputs.iter().map(|&n| netlist.net_name(n)).collect();
        let _ = write!(
            s,
            "{} = {}({})",
            netlist.net_name(g.output),
            g.kind.name().to_ascii_uppercase(),
            args.join(", ")
        );
        if g.delay != 1 {
            let _ = write!(s, " # delay={}", g.delay);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn parse_simple() {
        let text = "\
# c17-ish
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
t1 = NAND(a, b)
t2 = NAND(b, c)
z = NAND(t1, t2)
";
        let nl = parse(text, "c17ish").unwrap();
        assert_eq!(nl.gate_count(), 3);
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 1);
        // NAND(NAND(a,b), NAND(b,c)) = ab + bc
        assert_eq!(sim::eval(&nl, &[true, true, false]).unwrap(), vec![true]);
        assert_eq!(sim::eval(&nl, &[true, false, true]).unwrap(), vec![false]);
    }

    #[test]
    fn forward_references_allowed() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = NOT(t)\nt = BUF(a)\n";
        let nl = parse(text, "fwd").unwrap();
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(sim::eval(&nl, &[true]).unwrap(), vec![false]);
    }

    #[test]
    fn delay_annotation_parsed() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = NOT(a) # delay=7\n";
        let nl = parse(text, "d").unwrap();
        assert_eq!(nl.gates()[0].delay, 7);
    }

    #[test]
    fn default_delay_is_unit() {
        let text = "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n";
        let nl = parse(text, "d").unwrap();
        assert_eq!(nl.gates()[0].delay, 1);
    }

    #[test]
    fn round_trip() {
        let text = "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nt = XOR(a, b) # delay=2\nz = NOT(t)\n";
        let nl = parse(text, "rt").unwrap();
        let emitted = write(&nl);
        let nl2 = parse(&emitted, "rt").unwrap();
        assert!(sim::equivalent_exhaustive(&nl, &nl2, 8).unwrap());
        assert_eq!(nl2.gates()[0].delay, 2);
    }

    #[test]
    fn errors_reported_with_line_numbers() {
        let err = parse("INPUT(a)\nz = FROB(a)\n", "e").unwrap_err();
        match err {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("FROB"));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = parse("INPUT(a)\nOUTPUT(ghost)\n", "e").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
        let err = parse("wat\n", "e").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 1, .. }));
        let err = parse("INPUT(a)\nz = NOT(a # delay=x\n", "e").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }

    #[test]
    fn duplicate_input_rejected() {
        let err = parse("INPUT(a)\nINPUT(a)\n", "e").unwrap_err();
        assert!(matches!(err, NetlistError::Duplicate { .. }));
    }

    #[test]
    fn undefined_gate_input_rejected() {
        let err = parse("INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n", "e").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 3, .. }));
    }
}
