//! Sequential circuits with edge-triggered registers.
//!
//! The paper's analyses are stated for combinational circuits but, as
//! its footnote 3 notes, "clearly apply to sequential circuits with
//! edge-triggered latches": timing is analyzed on the combinational
//! core between register boundaries, with register outputs acting as
//! primary inputs (arriving at clock-to-q) and register inputs as
//! primary outputs (required by period − setup).
//!
//! [`SeqCircuit`] packages a combinational [`Netlist`] with its
//! registers; `hfta-fta`'s sequential analysis consumes it.

use crate::{NetId, Netlist, NetlistError};

/// An edge-triggered register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Register {
    /// The data input: a net of the combinational core (captured at the
    /// clock edge; must be a primary output of the core).
    pub d: NetId,
    /// The register output: a primary input of the combinational core.
    pub q: NetId,
    /// Clock-to-q delay.
    pub clk_to_q: u32,
    /// Setup time required before the capturing edge.
    pub setup: u32,
}

/// A sequential circuit: a combinational core plus registers.
///
/// Core primary inputs that are not register `q` pins are the
/// circuit's true primary inputs; core primary outputs that are not
/// register `d` pins are its true primary outputs.
///
/// # Example
///
/// ```
/// use hfta_netlist::{GateKind, Netlist, SeqCircuit};
///
/// # fn main() -> Result<(), hfta_netlist::NetlistError> {
/// // A 1-bit toggle: q -> NOT -> d, registered.
/// let mut core = Netlist::new("toggle");
/// let q = core.add_input("q");
/// let d = core.add_net("d");
/// core.add_gate(GateKind::Not, &[q], d, 2)?;
/// core.mark_output(d);
/// let seq = SeqCircuit::new(core, vec![(d, q, 1, 1)])?;
/// assert_eq!(seq.registers().len(), 1);
/// assert!(seq.primary_inputs().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SeqCircuit {
    core: Netlist,
    registers: Vec<Register>,
}

impl SeqCircuit {
    /// Builds a sequential circuit. Each register is given as
    /// `(d, q, clk_to_q, setup)`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Unknown`] if a `q` net is not a core
    /// primary input or a `d` net is not a core primary output, and
    /// [`NetlistError::Duplicate`] if a pin is used by two registers.
    pub fn new(
        core: Netlist,
        registers: Vec<(NetId, NetId, u32, u32)>,
    ) -> Result<SeqCircuit, NetlistError> {
        core.validate()?;
        let mut seen_q = std::collections::HashSet::new();
        let mut seen_d = std::collections::HashSet::new();
        let mut regs = Vec::with_capacity(registers.len());
        for (d, q, clk_to_q, setup) in registers {
            if !core.is_input(q) {
                return Err(NetlistError::Unknown {
                    what: "register q pin (must be a core primary input)",
                    name: core.net_name(q).to_string(),
                });
            }
            if !core.is_output(d) {
                return Err(NetlistError::Unknown {
                    what: "register d pin (must be a core primary output)",
                    name: core.net_name(d).to_string(),
                });
            }
            if !seen_q.insert(q) {
                return Err(NetlistError::Duplicate {
                    what: "register q pin",
                    name: core.net_name(q).to_string(),
                });
            }
            if !seen_d.insert(d) {
                return Err(NetlistError::Duplicate {
                    what: "register d pin",
                    name: core.net_name(d).to_string(),
                });
            }
            regs.push(Register {
                d,
                q,
                clk_to_q,
                setup,
            });
        }
        Ok(SeqCircuit {
            core,
            registers: regs,
        })
    }

    /// The combinational core.
    #[must_use]
    pub fn core(&self) -> &Netlist {
        &self.core
    }

    /// The registers.
    #[must_use]
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// The register driven by core output `d`, if any.
    #[must_use]
    pub fn register_for_d(&self, d: NetId) -> Option<&Register> {
        self.registers.iter().find(|r| r.d == d)
    }

    /// The register feeding core input `q`, if any.
    #[must_use]
    pub fn register_for_q(&self, q: NetId) -> Option<&Register> {
        self.registers.iter().find(|r| r.q == q)
    }

    /// True primary inputs: core inputs not driven by a register.
    #[must_use]
    pub fn primary_inputs(&self) -> Vec<NetId> {
        self.core
            .inputs()
            .iter()
            .copied()
            .filter(|&n| self.register_for_q(n).is_none())
            .collect()
    }

    /// True primary outputs: core outputs not captured by a register.
    #[must_use]
    pub fn primary_outputs(&self) -> Vec<NetId> {
        self.core
            .outputs()
            .iter()
            .copied()
            .filter(|&n| self.register_for_d(n).is_none())
            .collect()
    }

    /// Cycle-accurate simulation: steps the circuit `cycles` times from
    /// the all-zero register state, applying `inputs[c]` at cycle `c`.
    /// Returns the true-primary-output values per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic cores.
    ///
    /// # Panics
    ///
    /// Panics if an input vector has the wrong length.
    pub fn simulate(&self, inputs: &[Vec<bool>]) -> Result<Vec<Vec<bool>>, NetlistError> {
        let pis = self.primary_inputs();
        let pos = self.primary_outputs();
        let mut state: std::collections::HashMap<NetId, bool> =
            self.registers.iter().map(|r| (r.q, false)).collect();
        let mut trace = Vec::with_capacity(inputs.len());
        for vector in inputs {
            assert_eq!(vector.len(), pis.len(), "input vector length mismatch");
            let full: Vec<bool> = self
                .core
                .inputs()
                .iter()
                .map(|n| {
                    state.get(n).copied().unwrap_or_else(|| {
                        let k = pis.iter().position(|p| p == n).expect("true PI");
                        vector[k]
                    })
                })
                .collect();
            let values = crate::sim::eval_all(&self.core, &full)?;
            trace.push(pos.iter().map(|&o| values[o.index()]).collect());
            for r in &self.registers {
                state.insert(r.q, values[r.d.index()]);
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    fn toggle() -> SeqCircuit {
        let mut core = Netlist::new("toggle");
        let q = core.add_input("q");
        let d = core.add_net("d");
        let out = core.add_net("out");
        core.add_gate(GateKind::Not, &[q], d, 2).unwrap();
        core.add_gate(GateKind::Buf, &[q], out, 1).unwrap();
        core.mark_output(d);
        core.mark_output(out);
        SeqCircuit::new(core, vec![(d, q, 1, 1)]).unwrap()
    }

    #[test]
    fn toggle_oscillates() {
        let seq = toggle();
        let trace = seq.simulate(&vec![vec![]; 4]).unwrap();
        // out observes q: 0, 1, 0, 1.
        assert_eq!(
            trace,
            vec![vec![false], vec![true], vec![false], vec![true]]
        );
    }

    #[test]
    fn pin_classification() {
        let seq = toggle();
        assert!(seq.primary_inputs().is_empty());
        assert_eq!(seq.primary_outputs().len(), 1);
        let d = seq.core().find_net("d").unwrap();
        let q = seq.core().find_net("q").unwrap();
        assert!(seq.register_for_d(d).is_some());
        assert!(seq.register_for_q(q).is_some());
        assert!(seq.register_for_d(q).is_none());
    }

    #[test]
    fn bad_q_pin_rejected() {
        let mut core = Netlist::new("m");
        let a = core.add_input("a");
        let z = core.add_net("z");
        core.add_gate(GateKind::Not, &[a], z, 1).unwrap();
        core.mark_output(z);
        // z is not an input, so it cannot be a q pin.
        let err = SeqCircuit::new(core, vec![(z, z, 1, 1)]).unwrap_err();
        assert!(matches!(err, NetlistError::Unknown { .. }));
    }

    #[test]
    fn duplicate_register_pin_rejected() {
        let mut core = Netlist::new("m");
        let q = core.add_input("q");
        let d = core.add_net("d");
        core.add_gate(GateKind::Not, &[q], d, 1).unwrap();
        core.mark_output(d);
        let err = SeqCircuit::new(core, vec![(d, q, 1, 1), (d, q, 1, 1)]).unwrap_err();
        assert!(matches!(err, NetlistError::Duplicate { .. }));
    }

    #[test]
    fn counter_with_external_enable() {
        // d = q XOR en; out = q.
        let mut core = Netlist::new("cnt");
        let q = core.add_input("q");
        let en = core.add_input("en");
        let d = core.add_net("d");
        core.add_gate(GateKind::Xor, &[q, en], d, 2).unwrap();
        core.mark_output(d);
        let seq = SeqCircuit::new(core, vec![(d, q, 1, 1)]).unwrap();
        assert_eq!(seq.primary_inputs().len(), 1);
        // Enable pattern 1,1,0,1: q toggles on enabled cycles.
        let trace = seq
            .simulate(&[vec![true], vec![true], vec![false], vec![true]])
            .unwrap();
        // No true POs here (d is registered), so traces are empty rows.
        assert_eq!(trace.len(), 4);
    }
}
