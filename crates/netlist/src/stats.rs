//! Structural circuit statistics and Graphviz export.
//!
//! [`NetlistStats::collect`] summarizes a netlist (gate histogram,
//! logic depth, fanout distribution) for reports and sanity checks;
//! [`to_dot`] renders the gate graph for visual inspection of small
//! circuits.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::{GateKind, Netlist, NetlistError};

/// Structural summary of a netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetlistStats {
    /// Module name.
    pub module: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of gates.
    pub gates: usize,
    /// Number of nets.
    pub nets: usize,
    /// Gates per kind, by canonical name.
    pub by_kind: BTreeMap<&'static str, usize>,
    /// Maximum logic depth in gate counts (not delay).
    pub depth: usize,
    /// Largest fanout of any net.
    pub max_fanout: usize,
    /// Sum of all gate delays along the topologically longest path.
    pub max_delay_depth: u64,
}

impl NetlistStats {
    /// Collects statistics.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic
    /// netlists.
    pub fn collect(netlist: &Netlist) -> Result<NetlistStats, NetlistError> {
        let order = netlist.topo_gates()?;
        let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
        for g in netlist.gates() {
            *by_kind.entry(g.kind.name()).or_insert(0) += 1;
        }
        // Depth (gate count) and delay depth per net.
        let mut depth = vec![0usize; netlist.net_count()];
        let mut ddepth = vec![0u64; netlist.net_count()];
        for &g in &order {
            let gate = netlist.gate(g);
            let d = gate
                .inputs
                .iter()
                .map(|n| depth[n.index()])
                .max()
                .unwrap_or(0);
            let dd = gate
                .inputs
                .iter()
                .map(|n| ddepth[n.index()])
                .max()
                .unwrap_or(0);
            depth[gate.output.index()] = d + 1;
            ddepth[gate.output.index()] = dd + u64::from(gate.delay);
        }
        let fanouts = netlist.fanouts();
        Ok(NetlistStats {
            module: netlist.name().to_string(),
            inputs: netlist.inputs().len(),
            outputs: netlist.outputs().len(),
            gates: netlist.gate_count(),
            nets: netlist.net_count(),
            by_kind,
            depth: depth.iter().copied().max().unwrap_or(0),
            max_fanout: fanouts.iter().map(Vec::len).max().unwrap_or(0),
            max_delay_depth: ddepth.iter().copied().max().unwrap_or(0),
        })
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "module {}: {} gates, {} nets, {} inputs, {} outputs",
            self.module, self.gates, self.nets, self.inputs, self.outputs
        )?;
        writeln!(
            f,
            "depth {} gates ({} delay units), max fanout {}",
            self.depth, self.max_delay_depth, self.max_fanout
        )?;
        write!(f, "kinds:")?;
        for (kind, count) in &self.by_kind {
            write!(f, " {kind}={count}")?;
        }
        Ok(())
    }
}

/// Renders the netlist as a Graphviz `dot` digraph: primary inputs as
/// diamonds, gates as boxes labelled `kind/delay`, primary outputs
/// double-circled.
#[must_use]
pub fn to_dot(netlist: &Netlist) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", netlist.name());
    let _ = writeln!(s, "  rankdir=LR;");
    for &pi in netlist.inputs() {
        let _ = writeln!(s, "  \"{}\" [shape=diamond];", netlist.net_name(pi));
    }
    for (i, g) in netlist.gates().iter().enumerate() {
        let gid = format!("g{i}");
        let _ = writeln!(
            s,
            "  \"{gid}\" [shape=box, label=\"{}/{}\"];",
            g.kind.name(),
            g.delay
        );
        for &inp in &g.inputs {
            let src = match netlist.driver(inp) {
                Some(d) => format!("g{}", d.index()),
                None => netlist.net_name(inp).to_string(),
            };
            let _ = writeln!(s, "  \"{src}\" -> \"{gid}\";");
        }
        if netlist.is_output(g.output) {
            let name = netlist.net_name(g.output);
            let _ = writeln!(s, "  \"{name}\" [shape=doublecircle];");
            let _ = writeln!(s, "  \"{gid}\" -> \"{name}\";");
        }
    }
    // Passthrough outputs (PO == PI).
    for &po in netlist.outputs() {
        if netlist.driver(po).is_none() {
            let name = netlist.net_name(po);
            let _ = writeln!(s, "  \"{name}\" [shape=doublecircle];");
        }
    }
    let _ = writeln!(s, "}}");
    s
}

/// Kind histogram helper for gate mixes (e.g. to verify generator
/// distributions).
#[must_use]
pub fn kind_fraction(netlist: &Netlist, kind: GateKind) -> f64 {
    if netlist.gate_count() == 0 {
        return 0.0;
    }
    let count = netlist.gates().iter().filter(|g| g.kind == kind).count();
    #[allow(clippy::cast_precision_loss)]
    {
        count as f64 / netlist.gate_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{
        carry_skip_block, parity_tree, random_circuit, CsaDelays, GateMix, RandomCircuitSpec,
    };

    #[test]
    fn block_stats() {
        let nl = carry_skip_block(2, CsaDelays::default());
        let stats = NetlistStats::collect(&nl).unwrap();
        assert_eq!(stats.gates, 12);
        assert_eq!(stats.inputs, 5);
        assert_eq!(stats.outputs, 3);
        assert_eq!(stats.by_kind["xor"], 4);
        assert_eq!(stats.by_kind["mux"], 1);
        assert_eq!(stats.max_delay_depth, 8); // the ripple chain
        assert!(stats.depth >= 5);
        let text = stats.to_string();
        assert!(text.contains("12 gates"));
        assert!(text.contains("mux=1"));
    }

    #[test]
    fn parity_depth_is_logarithmic() {
        let nl = parity_tree(16, 1);
        let stats = NetlistStats::collect(&nl).unwrap();
        assert_eq!(stats.depth, 4);
        assert_eq!(stats.gates, 15);
    }

    #[test]
    fn dot_output_shapes() {
        let nl = carry_skip_block(2, CsaDelays::default());
        let dot = to_dot(&nl);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("shape=doublecircle"));
        assert!(dot.contains("mux/2"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn xor_heavy_mix_is_xor_heavy() {
        let spec = RandomCircuitSpec {
            inputs: 16,
            gates: 400,
            seed: 5,
            locality: 40,
            global_fanin_prob: 0.05,
            mix: GateMix::XorHeavy,
        };
        let nl = random_circuit("x", spec);
        let xor_like = kind_fraction(&nl, GateKind::Xor) + kind_fraction(&nl, GateKind::Xnor);
        assert!(xor_like > 0.4, "xor fraction {xor_like}");
    }
}
