//! Seeded random multilevel logic generation.
//!
//! The paper's Table 2 runs on ISCAS-85 benchmark circuits. Those
//! netlists are not shipped here, so the harness substitutes
//! deterministic *ISCAS-like* circuits: random multilevel logic with
//! heavy reconvergent fanout (the structural property that creates
//! false paths), sized to match the originals' gate counts. The
//! generator is fully determined by its [`RandomCircuitSpec`], so every
//! experiment is reproducible.

use hfta_testkit::Rng;

use crate::{GateKind, NetId, Netlist};

/// Parameters for [`random_circuit`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RandomCircuitSpec {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of gates.
    pub gates: usize,
    /// RNG seed; equal specs generate identical circuits.
    pub seed: u64,
    /// Locality window: gate inputs are drawn mostly from the most
    /// recent `locality` nets, producing deep circuits with
    /// reconvergence. Larger values flatten the circuit.
    pub locality: usize,
    /// Probability that a gate input is drawn from the *whole* net pool
    /// instead of the locality window. Long-range picks create global
    /// reconvergence — and hence *global* false paths spanning module
    /// boundaries, which hierarchical analysis cannot see. Real
    /// benchmark circuits keep most reconvergence local (the paper's
    /// observation), so keep this small for ISCAS-like workloads.
    pub global_fanin_prob: f64,
    /// The gate-kind distribution.
    pub mix: GateMix,
}

/// Gate-kind distributions for [`random_circuit`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GateMix {
    /// NAND/NOR-dominated mapped logic. Controlling values abound, so
    /// long paths are frequently unsensitizable: circuits of this mix
    /// are *false-path rich* (large topological-vs-functional gaps).
    #[default]
    NandHeavy,
    /// XOR/XNOR-dominated logic in the style of the ISCAS-85
    /// parity-and-ECC benchmarks (C499, C1355, …). XOR never masks an
    /// input, so false paths are sparse and mostly local — the regime
    /// of the paper's Table 2.
    XorHeavy,
}

impl RandomCircuitSpec {
    /// A spec shaped like the ISCAS-85 circuit of the given gate count:
    /// NAND/NOR-heavy, deep, with mostly-local reconvergence.
    #[must_use]
    pub fn iscas_like(name_gates: usize, seed: u64) -> RandomCircuitSpec {
        RandomCircuitSpec {
            inputs: (name_gates / 8).clamp(8, 256),
            gates: name_gates,
            seed,
            locality: (name_gates / 10).max(8),
            global_fanin_prob: 0.05,
            mix: GateMix::XorHeavy,
        }
    }
}

/// Generates a random combinational netlist per `spec`.
///
/// Every net with no fanout becomes a primary output, so the circuit has
/// no dead logic. Gate kinds are drawn with weights resembling mapped
/// ISCAS circuits (NAND/NOR-heavy, some XOR and inverters, occasional
/// wide gates and multiplexers). All gates use the unit delay model, as
/// in the paper's experiments.
///
/// # Panics
///
/// Panics if `spec.inputs == 0` or `spec.gates == 0`.
#[must_use]
pub fn random_circuit(name: &str, spec: RandomCircuitSpec) -> Netlist {
    assert!(spec.inputs > 0, "need at least one input");
    assert!(spec.gates > 0, "need at least one gate");
    let mut rng = Rng::seed_from_u64(spec.seed);
    let mut nl = Netlist::new(name);
    let mut pool: Vec<NetId> = (0..spec.inputs)
        .map(|i| nl.add_input(format!("i{i}")))
        .collect();

    for g in 0..spec.gates {
        let kind = pick_kind(&mut rng, spec.mix);
        let (lo, _) = kind.arity();
        let fanin = match kind {
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => {
                // Mostly 2-input, occasionally 3-4 input gates.
                match rng.gen_range(0..10) {
                    0 => 4,
                    1 | 2 => 3,
                    _ => 2,
                }
            }
            _ => lo,
        };
        let mut inputs = Vec::with_capacity(fanin);
        while inputs.len() < fanin {
            let candidate = pick_net(&mut rng, &pool, spec.locality, spec.global_fanin_prob);
            if !inputs.contains(&candidate) {
                inputs.push(candidate);
            } else if pool.len() <= fanin {
                break; // tiny pools cannot supply distinct nets
            }
        }
        if inputs.len() < lo {
            // Fall back to an inverter when distinct nets ran out.
            let out = nl.add_net(format!("g{g}"));
            nl.add_gate(GateKind::Not, &inputs[..1], out, 1)
                .expect("generator invariant");
            pool.push(out);
            continue;
        }
        let out = nl.add_net(format!("g{g}"));
        nl.add_gate(kind, &inputs, out, 1)
            .expect("generator invariant");
        pool.push(out);
    }

    // Dangling nets become primary outputs.
    let fanouts = nl.fanouts();
    let danglers: Vec<NetId> = nl
        .net_ids()
        .filter(|n| fanouts[n.index()].is_empty() && nl.driver(*n).is_some())
        .collect();
    for n in danglers {
        nl.mark_output(n);
    }
    if nl.outputs().is_empty() {
        // Degenerate but possible with tiny specs: expose the last gate.
        let last = nl.gates().last().expect("at least one gate").output;
        nl.mark_output(last);
    }
    nl
}

fn pick_kind(rng: &mut Rng, mix: GateMix) -> GateKind {
    match mix {
        GateMix::NandHeavy => match rng.gen_range(0..100) {
            0..=29 => GateKind::Nand,
            30..=49 => GateKind::Nor,
            50..=64 => GateKind::And,
            65..=79 => GateKind::Or,
            80..=87 => GateKind::Not,
            88..=93 => GateKind::Xor,
            94..=96 => GateKind::Xnor,
            _ => GateKind::Mux,
        },
        GateMix::XorHeavy => match rng.gen_range(0..100) {
            0..=39 => GateKind::Xor,
            40..=54 => GateKind::Xnor,
            55..=69 => GateKind::Nand,
            70..=79 => GateKind::And,
            80..=89 => GateKind::Or,
            90..=96 => GateKind::Not,
            _ => GateKind::Mux,
        },
    }
}

fn pick_net(rng: &mut Rng, pool: &[NetId], locality: usize, global_prob: f64) -> NetId {
    // Mostly the recent window (depth + local reconvergence); rarely
    // anywhere (global reconvergence across distant levels).
    if !rng.gen_bool(global_prob) && pool.len() > locality {
        let start = pool.len() - locality;
        pool[rng.gen_range(start..pool.len())]
    } else {
        pool[rng.gen_range(0..pool.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn deterministic_for_equal_seeds() {
        let spec = RandomCircuitSpec {
            inputs: 10,
            gates: 50,
            seed: 42,
            locality: 8,
            global_fanin_prob: 0.2,
            mix: GateMix::default(),
        };
        let a = random_circuit("a", spec);
        let b = random_circuit("b", spec);
        assert_eq!(a.gate_count(), b.gate_count());
        assert_eq!(a.content_hash(), {
            let mut b2 = b.clone();
            b2.set_name("a");
            // names of modules don't enter the hash; nets do and match
            b2.content_hash()
        });
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = RandomCircuitSpec {
            inputs: 10,
            gates: 50,
            seed: 1,
            locality: 8,
            global_fanin_prob: 0.2,
            mix: GateMix::default(),
        };
        let a = random_circuit("x", spec);
        spec.seed = 2;
        let b = random_circuit("x", spec);
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn generated_circuits_are_valid_and_acyclic() {
        for seed in 0..5 {
            let spec = RandomCircuitSpec {
                inputs: 12,
                gates: 200,
                seed,
                locality: 16,
                global_fanin_prob: 0.2,
                mix: GateMix::default(),
            };
            let nl = random_circuit("r", spec);
            nl.validate().unwrap();
            assert_eq!(nl.gate_count(), 200);
            assert!(!nl.outputs().is_empty());
            // Simulable end to end.
            let inputs = vec![true; nl.inputs().len()];
            let _ = sim::eval(&nl, &inputs).unwrap();
        }
    }

    #[test]
    fn every_gate_output_is_used_or_po() {
        let spec = RandomCircuitSpec {
            inputs: 8,
            gates: 100,
            seed: 7,
            locality: 10,
            global_fanin_prob: 0.2,
            mix: GateMix::default(),
        };
        let nl = random_circuit("r", spec);
        let fanouts = nl.fanouts();
        for g in nl.gates() {
            let used = !fanouts[g.output.index()].is_empty() || nl.is_output(g.output);
            assert!(used, "dead gate output {}", nl.net_name(g.output));
        }
    }

    #[test]
    fn iscas_like_spec_scales() {
        let s = RandomCircuitSpec::iscas_like(1000, 3);
        assert_eq!(s.gates, 1000);
        assert!(s.inputs >= 8);
        let nl = random_circuit("c1000", s);
        assert_eq!(nl.gate_count(), 1000);
    }

    #[test]
    fn tiny_spec_still_works() {
        let spec = RandomCircuitSpec {
            inputs: 1,
            gates: 3,
            seed: 0,
            locality: 2,
            global_fanin_prob: 0.2,
            mix: GateMix::default(),
        };
        let nl = random_circuit("tiny", spec);
        nl.validate().unwrap();
        assert!(!nl.outputs().is_empty());
    }
}

#[cfg(test)]
mod golden {
    use super::*;

    /// Golden-value regression pin: the generator's output for a fixed
    /// seed is part of the reproducibility contract (every experiment
    /// and failure report quotes a seed). If an intentional generator
    /// or PRNG change breaks these, update the constants *and* say so
    /// in the changelog — old seeds stop reproducing old circuits.
    #[test]
    fn pinned_netlists_per_seed() {
        let cases: [(usize, u64, usize, usize, u64); 3] = [
            // (gates, seed, inputs, outputs, content_hash)
            (50, 42, 8, 7, 0x4b68_a86a_3a0d_6894),
            (200, 7, 25, 28, 0x16f4_c677_36f2_5cf9),
            (160, 432, 20, 14, 0xcedc_11fb_6669_8e82),
        ];
        for (gates, seed, inputs, outputs, hash) in cases {
            let nl = random_circuit("g", RandomCircuitSpec::iscas_like(gates, seed));
            assert_eq!(nl.gate_count(), gates, "gates={gates} seed={seed}");
            assert_eq!(nl.inputs().len(), inputs, "gates={gates} seed={seed}");
            assert_eq!(nl.outputs().len(), outputs, "gates={gates} seed={seed}");
            assert_eq!(nl.content_hash(), hash, "gates={gates} seed={seed}");
        }
    }

    /// Same pin for the NAND-heavy mix (a different draw path through
    /// the generator).
    #[test]
    fn pinned_nand_heavy_netlists() {
        let cases: [(usize, u64, usize, u64); 3] = [
            // (gates, seed, outputs, content_hash)
            (50, 42, 10, 0x3025_7cd5_ec25_7873),
            (200, 7, 20, 0xe1e7_d6ae_0036_41d4),
            (160, 432, 21, 0x3561_51e2_680a_a518),
        ];
        for (gates, seed, outputs, hash) in cases {
            let spec = RandomCircuitSpec {
                inputs: 10,
                gates,
                seed,
                locality: 8,
                global_fanin_prob: 0.2,
                mix: GateMix::NandHeavy,
            };
            let nl = random_circuit("g", spec);
            assert_eq!(nl.gate_count(), gates, "gates={gates} seed={seed}");
            assert_eq!(nl.outputs().len(), outputs, "gates={gates} seed={seed}");
            assert_eq!(nl.content_hash(), hash, "gates={gates} seed={seed}");
        }
    }
}
