//! Carry-skip and ripple-carry adder generators.
//!
//! [`carry_skip_block`] reproduces the 2-bit carry-skip adder of the
//! paper's Figure 1 (generalized to `m` bits), and [`carry_skip_adder`]
//! the cascade of Figure 2 — the `csa n.m` circuits of Table 1. The
//! classic false path runs from `c_in` through the ripple chain to
//! `c_out`: whenever the carry would ripple all the way (all propagate
//! signals high), the skip multiplexer selects `c_in` directly, so the
//! long path is never sensitized.

use crate::{Composite, Design, GateKind, Netlist, NetlistError};

/// Gate delays for the carry-skip adder family.
///
/// The paper's Section 4 example uses delay 1 for AND/OR and delay 2 for
/// XOR/MUX, which is [`CsaDelays::default`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CsaDelays {
    /// Delay of AND and OR gates.
    pub and_or: u32,
    /// Delay of XOR gates.
    pub xor: u32,
    /// Delay of the skip multiplexer.
    pub mux: u32,
}

impl Default for CsaDelays {
    fn default() -> CsaDelays {
        CsaDelays {
            and_or: 1,
            xor: 2,
            mux: 2,
        }
    }
}

/// Builds an `m`-bit carry-skip adder block (Figure 1 for `m = 2`).
///
/// Ports, in order:
/// * inputs: `c_in, a0, b0, a1, b1, …, a{m-1}, b{m-1}`
/// * outputs: `s0, …, s{m-1}, c_out`
///
/// With the default delays and `m = 2` the module reproduces the
/// paper's timing models exactly: the topological `c_in → c_out` delay
/// is 6 but the functional (XBD0) delay is 2.
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn carry_skip_block(m: usize, delays: CsaDelays) -> Netlist {
    assert!(m > 0, "block width must be positive");
    let mut nl = Netlist::new(format!("csa_block{m}"));
    let c_in = nl.add_input("c_in");
    let mut a = Vec::with_capacity(m);
    let mut b = Vec::with_capacity(m);
    for i in 0..m {
        a.push(nl.add_input(format!("a{i}")));
        b.push(nl.add_input(format!("b{i}")));
    }
    let mut sums = Vec::with_capacity(m);
    let mut carry = c_in;
    let mut props = Vec::with_capacity(m);
    for i in 0..m {
        let p = nl.add_net(format!("p{i}"));
        let g = nl.add_net(format!("g{i}"));
        let s = nl.add_net(format!("s{i}"));
        let t = nl.add_net(format!("t{i}"));
        let c = nl.add_net(format!("c{}", i + 1));
        nl.add_gate(GateKind::Xor, &[a[i], b[i]], p, delays.xor)
            .expect("generator invariant");
        nl.add_gate(GateKind::And, &[a[i], b[i]], g, delays.and_or)
            .expect("generator invariant");
        nl.add_gate(GateKind::Xor, &[p, carry], s, delays.xor)
            .expect("generator invariant");
        nl.add_gate(GateKind::And, &[p, carry], t, delays.and_or)
            .expect("generator invariant");
        nl.add_gate(GateKind::Or, &[g, t], c, delays.and_or)
            .expect("generator invariant");
        props.push(p);
        sums.push(s);
        carry = c;
    }
    // Skip logic: P = p0·p1·…·p{m-1}; c_out = Mux(P, c_in, ripple carry).
    let big_p = if m == 1 {
        props[0]
    } else {
        let p = nl.add_net("P");
        nl.add_gate(GateKind::And, &props, p, delays.and_or)
            .expect("generator invariant");
        p
    };
    let c_out = nl.add_net("c_out");
    nl.add_gate(GateKind::Mux, &[big_p, c_in, carry], c_out, delays.mux)
        .expect("generator invariant");
    for s in sums {
        nl.mark_output(s);
    }
    nl.mark_output(c_out);
    nl
}

/// Builds the `csa n.m` cascade of Table 1: an `n`-bit adder structured
/// as `n / m` cascaded `m`-bit carry-skip blocks (Figure 2 shows
/// `n = 4, m = 2`).
///
/// The returned design contains the leaf block `csa_block{m}` and a
/// composite `csa{n}.{m}` whose ports are:
/// * inputs: `c_in, a0, b0, …, a{n-1}, b{n-1}`
/// * outputs: `s0, …, s{n-1}, c{n}`
///
/// # Panics
///
/// Panics if `m == 0` or `m` does not divide `n`.
#[must_use]
pub fn carry_skip_adder(n: usize, m: usize, delays: CsaDelays) -> Design {
    assert!(m > 0 && n.is_multiple_of(m), "m must divide n");
    let blocks = n / m;
    let block = carry_skip_block(m, delays);
    let block_name = block.name().to_string();
    let mut top = Composite::new(format!("csa{n}.{m}"));
    let c_in = top.add_input("c_in");
    let mut ab = Vec::with_capacity(n);
    for i in 0..n {
        let a = top.add_input(format!("a{i}"));
        let b = top.add_input(format!("b{i}"));
        ab.push((a, b));
    }
    let mut sums = Vec::with_capacity(n);
    let mut carry = c_in;
    for blk in 0..blocks {
        let mut inputs = vec![carry];
        for i in 0..m {
            let (a, b) = ab[blk * m + i];
            inputs.push(a);
            inputs.push(b);
        }
        let mut outputs = Vec::with_capacity(m + 1);
        for i in 0..m {
            outputs.push(top.add_net(format!("s{}", blk * m + i)));
        }
        let next_carry = top.add_net(format!("c{}", (blk + 1) * m));
        outputs.push(next_carry);
        top.add_instance(format!("blk{blk}"), &block_name, &inputs, &outputs);
        sums.extend_from_slice(&outputs[..m]);
        carry = next_carry;
    }
    for s in sums {
        top.mark_output(s);
    }
    top.mark_output(carry);
    let mut design = Design::new();
    design.add_leaf(block).expect("fresh design");
    design.add_composite(top).expect("fresh design");
    design
}

/// Builds a flat `n`-bit ripple-carry adder (no skip logic): the
/// straightforward baseline whose topological and functional delays
/// coincide.
///
/// Ports: inputs `c_in, a0, b0, …`; outputs `s0, …, s{n-1}, c_out`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn ripple_carry_adder(n: usize, delays: CsaDelays) -> Netlist {
    assert!(n > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("rca{n}"));
    let c_in = nl.add_input("c_in");
    let mut carry = c_in;
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let a = nl.add_input(format!("a{i}"));
        let b = nl.add_input(format!("b{i}"));
        let p = nl.add_net(format!("p{i}"));
        let g = nl.add_net(format!("g{i}"));
        let s = nl.add_net(format!("s{i}"));
        let t = nl.add_net(format!("t{i}"));
        let c = nl.add_net(format!("c{}", i + 1));
        nl.add_gate(GateKind::Xor, &[a, b], p, delays.xor).unwrap();
        nl.add_gate(GateKind::And, &[a, b], g, delays.and_or)
            .unwrap();
        nl.add_gate(GateKind::Xor, &[p, carry], s, delays.xor)
            .unwrap();
        nl.add_gate(GateKind::And, &[p, carry], t, delays.and_or)
            .unwrap();
        nl.add_gate(GateKind::Or, &[g, t], c, delays.and_or)
            .unwrap();
        sums.push(s);
        carry = c;
    }
    for s in sums {
        nl.mark_output(s);
    }
    nl.mark_output(carry);
    nl
}

/// Convenience: flattens `csa n.m` into a single netlist (what the
/// paper's *flat* analysis consumes).
///
/// # Errors
///
/// Propagates flattening errors (none occur for generator output).
pub fn carry_skip_adder_flat(
    n: usize,
    m: usize,
    delays: CsaDelays,
) -> Result<Netlist, NetlistError> {
    let design = carry_skip_adder(n, m, delays);
    design.flatten(&format!("csa{n}.{m}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    /// Interprets generator port order to compute `a + b + c_in`.
    fn add_via_netlist(nl: &Netlist, n: usize, a: u64, b: u64, c_in: bool) -> (u64, bool) {
        let mut inputs = vec![c_in];
        for i in 0..n {
            inputs.push((a >> i) & 1 == 1);
            inputs.push((b >> i) & 1 == 1);
        }
        let out = sim::eval(nl, &inputs).unwrap();
        let mut sum = 0u64;
        for (i, &bit) in out[..n].iter().enumerate() {
            if bit {
                sum |= 1 << i;
            }
        }
        (sum, out[n])
    }

    #[test]
    fn block_is_a_correct_adder() {
        let nl = carry_skip_block(2, CsaDelays::default());
        nl.validate().unwrap();
        for a in 0..4u64 {
            for b in 0..4u64 {
                for c in [false, true] {
                    let (s, cout) = add_via_netlist(&nl, 2, a, b, c);
                    let expect = a + b + u64::from(c);
                    assert_eq!(s, expect & 3, "a={a} b={b} c={c}");
                    assert_eq!(cout, expect >= 4, "a={a} b={b} c={c}");
                }
            }
        }
    }

    #[test]
    fn block_gate_count_matches_figure_1() {
        // 2 bits × (XOR,AND,XOR,AND,OR) + skip AND + MUX = 12 gates.
        let nl = carry_skip_block(2, CsaDelays::default());
        assert_eq!(nl.gate_count(), 12);
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 3);
    }

    #[test]
    fn cascade_adds_correctly() {
        let flat = carry_skip_adder_flat(8, 2, CsaDelays::default()).unwrap();
        for (a, b, c) in [
            (0, 0, false),
            (255, 1, false),
            (170, 85, true),
            (200, 100, false),
        ] {
            let (s, cout) = add_via_netlist(&flat, 8, a, b, c);
            let expect = a + b + u64::from(c);
            assert_eq!(s, expect & 0xff);
            assert_eq!(cout, expect > 0xff);
        }
    }

    #[test]
    fn cascade_matches_ripple_carry() {
        let csa = carry_skip_adder_flat(4, 2, CsaDelays::default()).unwrap();
        let rca = ripple_carry_adder(4, CsaDelays::default());
        assert!(sim::equivalent_exhaustive(&csa, &rca, 9).unwrap());
    }

    #[test]
    fn wider_blocks_work() {
        let flat = carry_skip_adder_flat(8, 4, CsaDelays::default()).unwrap();
        let rca = ripple_carry_adder(8, CsaDelays::default());
        for (a, b, c) in [(0u64, 0u64, true), (255, 255, true), (90, 165, false)] {
            assert_eq!(
                add_via_netlist(&flat, 8, a, b, c),
                add_via_netlist(&rca, 8, a, b, c)
            );
        }
    }

    #[test]
    fn single_bit_block_skips_and_gate() {
        let nl = carry_skip_block(1, CsaDelays::default());
        nl.validate().unwrap();
        // p0 doubles as P: XOR,AND,XOR,AND,OR,MUX = 6 gates.
        assert_eq!(nl.gate_count(), 6);
    }

    #[test]
    #[should_panic(expected = "m must divide n")]
    fn indivisible_width_panics() {
        let _ = carry_skip_adder(10, 4, CsaDelays::default());
    }
}
