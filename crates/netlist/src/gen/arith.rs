//! Additional arithmetic generators: richer workloads for tests and
//! benchmarks.
//!
//! * [`carry_select_adder`] — each block precomputes both carry cases
//!   and a mux chain selects. An instructive contrast to carry-skip:
//!   the spec-chain→mux-cascade path is *sensitizable* (when the two
//!   speculative carries differ the mux genuinely follows its select),
//!   so functional delay equals topological here.
//! * [`carry_lookahead_adder`] — flat two-level carry logic (wide
//!   gates); essentially no false paths.
//! * [`parity_tree`] — an XOR reduction tree; XOR never masks, so
//!   functional delay equals topological delay (a useful negative
//!   control).
//! * [`array_multiplier`] — an n×n array multiplier built from ripple
//!   adders; a quickly-growing stress workload.

use crate::gen::adders::CsaDelays;
use crate::{GateKind, NetId, Netlist};

/// Builds an `n`-bit carry-select adder of `m`-bit blocks.
///
/// Ports: inputs `c_in, a0, b0, …`; outputs `s0…s{n-1}, c_out`.
/// Each block computes its sums and carry for both carry-in values
/// using two ripple chains seeded by constants, then 2:1 muxes pick the
/// real case — so the incoming carry only traverses one mux per block.
///
/// # Panics
///
/// Panics if `m == 0` or `m` does not divide `n`.
#[must_use]
pub fn carry_select_adder(n: usize, m: usize, delays: CsaDelays) -> Netlist {
    assert!(m > 0 && n.is_multiple_of(m), "m must divide n");
    let mut nl = Netlist::new(format!("csel{n}.{m}"));
    let c_in = nl.add_input("c_in");
    let mut ab = Vec::with_capacity(n);
    for i in 0..n {
        let a = nl.add_input(format!("a{i}"));
        let b = nl.add_input(format!("b{i}"));
        ab.push((a, b));
    }
    let mut carry = c_in;
    let mut sums = Vec::with_capacity(n);
    for blk in 0..(n / m) {
        // Two speculative ripple chains.
        let mut chain = |tag: &str, seed_one: bool| -> (Vec<NetId>, NetId) {
            let seed = nl.add_net(format!("blk{blk}_{tag}_seed"));
            nl.add_gate(
                if seed_one {
                    GateKind::Const1
                } else {
                    GateKind::Const0
                },
                &[],
                seed,
                0,
            )
            .expect("generator invariant");
            let mut c = seed;
            let mut ss = Vec::with_capacity(m);
            for i in 0..m {
                let (a, b) = ab[blk * m + i];
                let p = nl.add_net(format!("blk{blk}_{tag}_p{i}"));
                let g = nl.add_net(format!("blk{blk}_{tag}_g{i}"));
                let s = nl.add_net(format!("blk{blk}_{tag}_s{i}"));
                let t = nl.add_net(format!("blk{blk}_{tag}_t{i}"));
                let nc = nl.add_net(format!("blk{blk}_{tag}_c{i}"));
                nl.add_gate(GateKind::Xor, &[a, b], p, delays.xor)
                    .expect("ok");
                nl.add_gate(GateKind::And, &[a, b], g, delays.and_or)
                    .expect("ok");
                nl.add_gate(GateKind::Xor, &[p, c], s, delays.xor)
                    .expect("ok");
                nl.add_gate(GateKind::And, &[p, c], t, delays.and_or)
                    .expect("ok");
                nl.add_gate(GateKind::Or, &[g, t], nc, delays.and_or)
                    .expect("ok");
                ss.push(s);
                c = nc;
            }
            (ss, c)
        };
        let (s0, c0) = chain("c0", false);
        let (s1, c1) = chain("c1", true);
        // Select by the incoming carry.
        for i in 0..m {
            let s = nl.add_net(format!("s{}", blk * m + i));
            nl.add_gate(GateKind::Mux, &[carry, s1[i], s0[i]], s, delays.mux)
                .expect("ok");
            sums.push(s);
        }
        let next = nl.add_net(format!("c{}", (blk + 1) * m));
        nl.add_gate(GateKind::Mux, &[carry, c1, c0], next, delays.mux)
            .expect("ok");
        carry = next;
    }
    for s in sums {
        nl.mark_output(s);
    }
    nl.mark_output(carry);
    nl
}

/// Builds an `n`-bit single-level carry-lookahead adder.
///
/// Carries are computed by two-level AND–OR logic over the propagate
/// and generate signals (wide gates, unit delays), so the carry depth
/// is constant in `n`.
///
/// Ports: inputs `c_in, a0, b0, …`; outputs `s0…s{n-1}, c_out`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn carry_lookahead_adder(n: usize, delays: CsaDelays) -> Netlist {
    assert!(n > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("cla{n}"));
    let c_in = nl.add_input("c_in");
    let mut p = Vec::with_capacity(n);
    let mut g = Vec::with_capacity(n);
    for i in 0..n {
        let a = nl.add_input(format!("a{i}"));
        let b = nl.add_input(format!("b{i}"));
        let pi = nl.add_net(format!("p{i}"));
        let gi = nl.add_net(format!("g{i}"));
        nl.add_gate(GateKind::Xor, &[a, b], pi, delays.xor)
            .expect("ok");
        nl.add_gate(GateKind::And, &[a, b], gi, delays.and_or)
            .expect("ok");
        p.push(pi);
        g.push(gi);
    }
    // c_{i+1} = g_i + p_i·g_{i-1} + … + p_i·…·p_0·c_in
    let mut carries = vec![c_in];
    for i in 0..n {
        let mut terms: Vec<NetId> = Vec::with_capacity(i + 2);
        terms.push(g[i]);
        for j in (0..i).rev() {
            // p_i · p_{i-1} · … · p_{j+1} · g_j
            let mut lits: Vec<NetId> = ((j + 1)..=i).map(|k| p[k]).collect();
            lits.push(g[j]);
            let t = nl.add_net(format!("c{}_t{j}", i + 1));
            nl.add_gate(GateKind::And, &lits, t, delays.and_or)
                .expect("ok");
            terms.push(t);
        }
        // p_i · … · p_0 · c_in
        let mut lits: Vec<NetId> = (0..=i).map(|k| p[k]).collect();
        lits.push(c_in);
        let t = nl.add_net(format!("c{}_tc", i + 1));
        nl.add_gate(GateKind::And, &lits, t, delays.and_or)
            .expect("ok");
        terms.push(t);
        let c = nl.add_net(format!("c{}", i + 1));
        if terms.len() == 1 {
            nl.add_gate(GateKind::Buf, &[terms[0]], c, delays.and_or)
                .expect("ok");
        } else {
            nl.add_gate(GateKind::Or, &terms, c, delays.and_or)
                .expect("ok");
        }
        carries.push(c);
    }
    for i in 0..n {
        let s = nl.add_net(format!("s{i}"));
        nl.add_gate(GateKind::Xor, &[p[i], carries[i]], s, delays.xor)
            .expect("ok");
        nl.mark_output(s);
    }
    nl.mark_output(carries[n]);
    nl
}

/// Builds an `n`-input XOR reduction tree (`z = x0 ⊕ … ⊕ x{n-1}`).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn parity_tree(n: usize, xor_delay: u32) -> Netlist {
    assert!(n > 0, "parity needs at least one input");
    let mut nl = Netlist::new(format!("parity{n}"));
    let mut layer: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
    let mut level = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for (k, pair) in layer.chunks(2).enumerate() {
            if pair.len() == 2 {
                let z = nl.add_net(format!("l{level}_{k}"));
                nl.add_gate(GateKind::Xor, &[pair[0], pair[1]], z, xor_delay)
                    .expect("ok");
                next.push(z);
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
        level += 1;
    }
    nl.mark_output(layer[0]);
    nl
}

/// Builds an `n × n` array multiplier (`p = a × b`, 2n product bits)
/// from AND partial products and ripple-carry rows.
///
/// Ports: inputs `a0…a{n-1}, b0…b{n-1}`; outputs `p0…p{2n-1}`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn array_multiplier(n: usize, delays: CsaDelays) -> Netlist {
    assert!(n > 0, "multiplier width must be positive");
    let mut nl = Netlist::new(format!("mul{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    // Partial products.
    let mut pp = vec![vec![NetId::from_index(0); n]; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let net = nl.add_net(format!("pp{i}_{j}"));
            nl.add_gate(GateKind::And, &[ai, bj], net, delays.and_or)
                .expect("ok");
            pp[i][j] = net;
        }
    }
    // Full adder helper.
    let full_adder = |nl: &mut Netlist, x: NetId, y: NetId, c: NetId, tag: String| {
        let p = nl.add_net(format!("{tag}_p"));
        let s = nl.add_net(format!("{tag}_s"));
        let g = nl.add_net(format!("{tag}_g"));
        let t = nl.add_net(format!("{tag}_t"));
        let co = nl.add_net(format!("{tag}_c"));
        nl.add_gate(GateKind::Xor, &[x, y], p, delays.xor)
            .expect("ok");
        nl.add_gate(GateKind::Xor, &[p, c], s, delays.xor)
            .expect("ok");
        nl.add_gate(GateKind::And, &[x, y], g, delays.and_or)
            .expect("ok");
        nl.add_gate(GateKind::And, &[p, c], t, delays.and_or)
            .expect("ok");
        nl.add_gate(GateKind::Or, &[g, t], co, delays.and_or)
            .expect("ok");
        (s, co)
    };
    let zero = {
        let z = nl.add_net("zero");
        nl.add_gate(GateKind::Const0, &[], z, 0).expect("ok");
        z
    };
    // Row-by-row accumulation: row i adds pp[*][i] shifted by i.
    let mut acc: Vec<NetId> = pp.iter().map(|row| row[0]).collect(); // a_i·b_0
    let mut outputs = Vec::with_capacity(2 * n);
    outputs.push(acc[0]); // p0
    let mut acc_rest: Vec<NetId> = acc[1..].to_vec();
    #[allow(clippy::needless_range_loop)] // j is the partial-product column
    for j in 1..n {
        // Add the j-th partial-product row to acc_rest.
        let mut carry = zero;
        let mut new_acc = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // i indexes two parallel arrays
        for i in 0..n {
            let x = if i < acc_rest.len() {
                acc_rest[i]
            } else {
                zero
            };
            let y = pp[i][j];
            let (s, c) = full_adder(&mut nl, x, y, carry, format!("fa{j}_{i}"));
            new_acc.push(s);
            carry = c;
        }
        outputs.push(new_acc[0]); // p_j
        acc_rest = new_acc[1..].to_vec();
        acc_rest.push(carry);
        acc = acc_rest.clone();
    }
    // Remaining bits.
    for &bit in &acc {
        outputs.push(bit);
    }
    for o in outputs {
        nl.mark_output(o);
    }
    nl
}

/// Builds an `n`-bit Kogge–Stone adder: a logarithmic-depth
/// parallel-prefix carry network over (generate, propagate) pairs.
///
/// Ports: inputs `c_in, a0, b0, …`; outputs `s0…s{n-1}, c_out`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn kogge_stone_adder(n: usize, delays: CsaDelays) -> Netlist {
    assert!(n > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("ks{n}"));
    let c_in = nl.add_input("c_in");
    // Level-0 (g, p) per bit; treat c_in as bit −1 with g = c_in, p = 0.
    let mut g: Vec<NetId> = Vec::with_capacity(n + 1);
    let mut p: Vec<NetId> = Vec::with_capacity(n + 1);
    let zero = {
        let z = nl.add_net("zero");
        nl.add_gate(GateKind::Const0, &[], z, 0).expect("ok");
        z
    };
    g.push(c_in);
    p.push(zero);
    let mut half_sum = Vec::with_capacity(n);
    for i in 0..n {
        let a = nl.add_input(format!("a{i}"));
        let b = nl.add_input(format!("b{i}"));
        let gi = nl.add_net(format!("g0_{i}"));
        let pi = nl.add_net(format!("p0_{i}"));
        nl.add_gate(GateKind::And, &[a, b], gi, delays.and_or)
            .expect("ok");
        nl.add_gate(GateKind::Xor, &[a, b], pi, delays.xor)
            .expect("ok");
        g.push(gi);
        p.push(pi);
        half_sum.push(pi);
    }
    // Prefix network over indices 0..=n (index 0 = the c_in slot):
    // (g, p)[i] ∘ (g, p)[i - 2^k] with ∘ = (g + p·g', p·p').
    let mut level = 0usize;
    let mut dist = 1usize;
    while dist <= n {
        let mut ng = g.clone();
        let mut np = p.clone();
        for i in dist..=n {
            let t = nl.add_net(format!("ks{level}_{i}_t"));
            nl.add_gate(GateKind::And, &[p[i], g[i - dist]], t, delays.and_or)
                .expect("ok");
            let gi = nl.add_net(format!("ks{level}_{i}_g"));
            nl.add_gate(GateKind::Or, &[g[i], t], gi, delays.and_or)
                .expect("ok");
            ng[i] = gi;
            if i > dist {
                // p of the c_in slot never matters past its own column.
                let pi = nl.add_net(format!("ks{level}_{i}_p"));
                nl.add_gate(GateKind::And, &[p[i], p[i - dist]], pi, delays.and_or)
                    .expect("ok");
                np[i] = pi;
            } else {
                np[i] = zero;
            }
        }
        g = ng;
        p = np;
        level += 1;
        dist *= 2;
    }
    // Sums: s_i = halfsum_i ⊕ carry_i where carry_i = prefix g at slot i.
    for i in 0..n {
        let s = nl.add_net(format!("s{i}"));
        nl.add_gate(GateKind::Xor, &[half_sum[i], g[i]], s, delays.xor)
            .expect("ok");
        nl.mark_output(s);
    }
    nl.mark_output(g[n]);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::ripple_carry_adder;
    use crate::sim;

    fn add_via(nl: &Netlist, n: usize, a: u64, b: u64, c: bool) -> (u64, bool) {
        let mut inputs = vec![c];
        for i in 0..n {
            inputs.push((a >> i) & 1 == 1);
            inputs.push((b >> i) & 1 == 1);
        }
        let out = sim::eval(nl, &inputs).unwrap();
        let mut sum = 0u64;
        for (i, &bit) in out[..n].iter().enumerate() {
            if bit {
                sum |= 1 << i;
            }
        }
        (sum, out[n])
    }

    #[test]
    fn carry_select_adds() {
        let nl = carry_select_adder(6, 2, CsaDelays::default());
        nl.validate().unwrap();
        for (a, b, c) in [
            (0u64, 0u64, false),
            (63, 1, false),
            (42, 21, true),
            (33, 31, false),
        ] {
            let expect = a + b + u64::from(c);
            let (s, cout) = add_via(&nl, 6, a, b, c);
            assert_eq!(s, expect & 63, "a={a} b={b} c={c}");
            assert_eq!(cout, expect > 63);
        }
    }

    #[test]
    fn carry_select_matches_ripple_exhaustively() {
        let csel = carry_select_adder(4, 2, CsaDelays::default());
        let rca = ripple_carry_adder(4, CsaDelays::default());
        assert!(sim::equivalent_exhaustive(&csel, &rca, 9).unwrap());
    }

    #[test]
    fn cla_matches_ripple_exhaustively() {
        let cla = carry_lookahead_adder(4, CsaDelays::default());
        let rca = ripple_carry_adder(4, CsaDelays::default());
        assert!(sim::equivalent_exhaustive(&cla, &rca, 9).unwrap());
    }

    #[test]
    fn cla_carry_depth_is_constant() {
        // Longest c_in→c_out path (gate-delay sum) is width-independent.
        fn carry_depth(n: usize) -> i64 {
            let nl = carry_lookahead_adder(n, CsaDelays::default());
            let c_out = nl.outputs()[n];
            let c_in = nl.inputs()[0];
            // Backward longest-path DP from c_out.
            let mut dist = vec![i64::MIN; nl.net_count()];
            dist[c_out.index()] = 0;
            let mut order = nl.topo_gates().unwrap();
            order.reverse();
            for g in order {
                let gate = nl.gate(g);
                let d = dist[gate.output.index()];
                if d == i64::MIN {
                    continue;
                }
                for &inp in &gate.inputs {
                    dist[inp.index()] = dist[inp.index()].max(d + i64::from(gate.delay));
                }
            }
            dist[c_in.index()]
        }
        assert_eq!(carry_depth(4), carry_depth(8));
        assert_eq!(carry_depth(4), 2); // AND then OR
    }

    #[test]
    fn parity_tree_is_parity() {
        for n in [1usize, 2, 3, 5, 8] {
            let nl = parity_tree(n, 2);
            nl.validate().unwrap();
            for v in 0u64..(1 << n) {
                let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
                let expect = v.count_ones() % 2 == 1;
                assert_eq!(sim::eval(&nl, &bits).unwrap(), vec![expect], "n={n} v={v}");
            }
        }
    }

    #[test]
    fn multiplier_multiplies() {
        for n in [2usize, 3, 4] {
            let nl = array_multiplier(n, CsaDelays::default());
            nl.validate().unwrap();
            assert_eq!(nl.outputs().len(), 2 * n);
            for a in 0u64..(1 << n) {
                for b in 0u64..(1 << n) {
                    let mut inputs = Vec::new();
                    for i in 0..n {
                        inputs.push((a >> i) & 1 == 1);
                    }
                    for i in 0..n {
                        inputs.push((b >> i) & 1 == 1);
                    }
                    let out = sim::eval(&nl, &inputs).unwrap();
                    let mut p = 0u64;
                    for (i, &bit) in out.iter().enumerate() {
                        if bit {
                            p |= 1 << i;
                        }
                    }
                    assert_eq!(p, a * b, "n={n} a={a} b={b}");
                }
            }
        }
    }
}

#[cfg(test)]
mod kogge_stone_tests {
    use super::*;
    use crate::gen::ripple_carry_adder;
    use crate::sim;

    #[test]
    fn kogge_stone_matches_ripple_exhaustively() {
        let ks = kogge_stone_adder(4, CsaDelays::default());
        ks.validate().unwrap();
        let rca = ripple_carry_adder(4, CsaDelays::default());
        assert!(sim::equivalent_exhaustive(&ks, &rca, 9).unwrap());
    }

    #[test]
    fn kogge_stone_depth_is_logarithmic() {
        fn depth(nl: &Netlist) -> usize {
            let mut d = vec![0usize; nl.net_count()];
            for g in nl.topo_gates().unwrap() {
                let gate = nl.gate(g);
                let m = gate.inputs.iter().map(|n| d[n.index()]).max().unwrap_or(0);
                d[gate.output.index()] = m + 1;
            }
            d.into_iter().max().unwrap_or(0)
        }
        let d8 = depth(&kogge_stone_adder(8, CsaDelays::default()));
        let d16 = depth(&kogge_stone_adder(16, CsaDelays::default()));
        // Logarithmic growth: doubling width adds ~2 levels, far from
        // the ripple adder's linear depth.
        assert!(d16 <= d8 + 3, "d8={d8} d16={d16}");
        let ripple16 = depth(&ripple_carry_adder(16, CsaDelays::default()));
        assert!(depth(&kogge_stone_adder(16, CsaDelays::default())) < ripple16 / 2);
    }

    #[test]
    fn kogge_stone_wide_check() {
        let ks = kogge_stone_adder(10, CsaDelays::default());
        let rca = ripple_carry_adder(10, CsaDelays::default());
        for (a, b, c) in [(1023u64, 1u64, false), (512, 511, true), (682, 341, false)] {
            let mut inputs = vec![c];
            for i in 0..10 {
                inputs.push((a >> i) & 1 == 1);
                inputs.push((b >> i) & 1 == 1);
            }
            assert_eq!(
                sim::eval(&ks, &inputs).unwrap(),
                sim::eval(&rca, &inputs).unwrap(),
                "a={a} b={b} c={c}"
            );
        }
    }
}
