//! Circuit generators for the paper's experiments.
//!
//! * [`adders`] — the carry-skip adder family of Figures 1–2 (the
//!   Table 1 workload) and a ripple-carry baseline.
//! * [`random`] — seeded ISCAS-like random multilevel logic (the
//!   Table 2 workload substitute; see DESIGN.md for the substitution
//!   rationale).
//! * [`modular`] — large layered hierarchical designs (many instances
//!   of a few random leaf flavors) for parallel-scaling experiments.

pub mod adders;
pub mod arith;
pub mod modular;
pub mod random;

pub use adders::{
    carry_skip_adder, carry_skip_adder_flat, carry_skip_block, ripple_carry_adder, CsaDelays,
};
pub use arith::{
    array_multiplier, carry_lookahead_adder, carry_select_adder, kogge_stone_adder, parity_tree,
};
pub use modular::{modular_design, ModularDesignSpec};
pub use random::{random_circuit, GateMix, RandomCircuitSpec};
