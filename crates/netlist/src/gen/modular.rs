//! Large layered modular designs for parallel-scaling experiments.
//!
//! The Table 1/2 workloads are small enough that a characterization or
//! refinement round finishes in microseconds — useless for measuring
//! scheduler behaviour. [`modular_design`] builds designs big enough to
//! expose scheduling costs: a depth-1 hierarchy of a few distinct
//! random leaf *flavors* instantiated many times in a layered DAG, the
//! regime hierarchical analysis is built for (few characterizations,
//! many instances). Sizing to ~100k instantiated gates gives parallel
//! phases real work per task while a single characterization stays
//! small enough to iterate in a benchmark loop.
//!
//! Everything is determined by the [`ModularDesignSpec`], so bench
//! results quote one seed and reproduce exactly.

use hfta_testkit::Rng;

use crate::gen::random::{random_circuit, GateMix, RandomCircuitSpec};
use crate::{Composite, Design, NetId, Netlist};

/// Parameters for [`modular_design`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ModularDesignSpec {
    /// Number of distinct leaf modules. Characterization work scales
    /// with this; instantiation (and demand refinement) work scales
    /// with `instances`.
    pub flavors: usize,
    /// Total module instances in the top composite.
    pub instances: usize,
    /// Gates per leaf module, so the design instantiates
    /// `instances * gates_per_module` gates.
    pub gates_per_module: usize,
    /// Instances are arranged in this many topological layers; each
    /// instance draws its inputs mostly from the previous layer.
    pub layers: usize,
    /// RNG seed; equal specs generate identical designs.
    pub seed: u64,
    /// Gate-kind distribution of the leaf flavors.
    pub mix: GateMix,
}

impl ModularDesignSpec {
    /// A spec instantiating roughly `total_gates` gates: small
    /// (60-gate) leaves, up to 12 flavors, a layered DAG.
    /// `sized(100_000, s)` is the parallel-scaling workload from
    /// EXPERIMENTS.md. Leaves stay small because functional
    /// characterization of random reconvergent logic scales
    /// superlinearly in cone size — characterization cost lives in
    /// `flavors`, total design size in `instances`.
    #[must_use]
    pub fn sized(total_gates: usize, seed: u64) -> ModularDesignSpec {
        let gates_per_module = 60.min(total_gates.max(1));
        let instances = (total_gates / gates_per_module).max(1);
        ModularDesignSpec {
            flavors: instances.clamp(1, 12),
            instances,
            gates_per_module,
            layers: (instances / 8).clamp(1, 12),
            seed,
            mix: GateMix::NandHeavy,
        }
    }

    /// Total instantiated gates (`instances * gates_per_module`).
    #[must_use]
    pub fn total_gates(&self) -> usize {
        self.instances * self.gates_per_module
    }

    /// The top module's name, `mod<instances>x<gates_per_module>`.
    #[must_use]
    pub fn top_name(&self) -> String {
        format!("mod{}x{}", self.instances, self.gates_per_module)
    }
}

/// Generates a depth-1 hierarchical design per `spec`: `flavors`
/// distinct random leaf netlists (`leaf0`, `leaf1`, …) instantiated
/// `instances` times in a layered DAG under one top composite
/// ([`top_name`](ModularDesignSpec::top_name)).
///
/// Wiring: each instance's flavor is drawn uniformly; its inputs come
/// mostly (90%) from the previous layer's outputs and occasionally from
/// anywhere earlier, so the DAG is deep with long-range reconvergence.
/// Instance outputs nobody consumes become primary outputs — no dead
/// logic at the top level.
///
/// # Panics
///
/// Panics if any of `flavors`, `instances`, `gates_per_module`, or
/// `layers` is zero.
#[must_use]
pub fn modular_design(spec: ModularDesignSpec) -> Design {
    assert!(spec.flavors > 0, "need at least one flavor");
    assert!(spec.instances > 0, "need at least one instance");
    assert!(spec.gates_per_module > 0, "need at least one gate");
    assert!(spec.layers > 0, "need at least one layer");

    let leaves: Vec<Netlist> = (0..spec.flavors)
        .map(|f| {
            let mut leaf_spec = RandomCircuitSpec::iscas_like(
                spec.gates_per_module,
                spec.seed
                    .wrapping_add((f as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            );
            leaf_spec.mix = spec.mix;
            random_circuit(&format!("leaf{f}"), leaf_spec)
        })
        .collect();

    let mut rng = Rng::seed_from_u64(spec.seed ^ 0xd1b5_4a32_d192_ed03);
    let mut top = Composite::new(spec.top_name());
    let pi_count = leaves
        .iter()
        .map(|l| l.inputs().len())
        .max()
        .expect("at least one flavor");
    let mut pool: Vec<NetId> = (0..pi_count)
        .map(|i| top.add_input(format!("p{i}")))
        .collect();
    let mut consumed: Vec<bool> = vec![true; pi_count]; // PIs need no PO

    let per_layer = spec.instances.div_ceil(spec.layers);
    let mut window_start = 0;
    let mut placed = 0;
    while placed < spec.instances {
        // All instances of one layer draw from the pool as it stood
        // when the layer began — mostly the previous layer's outputs.
        let layer_pool_len = pool.len();
        let here = per_layer.min(spec.instances - placed);
        for _ in 0..here {
            let leaf = &leaves[rng.gen_range(0..spec.flavors)];
            let inputs: Vec<NetId> = (0..leaf.inputs().len())
                .map(|_| {
                    let lo = if rng.gen_bool(0.1) { 0 } else { window_start };
                    pool[rng.gen_range(lo..layer_pool_len)]
                })
                .collect();
            for net in &inputs {
                consumed[net.index()] = true;
            }
            let outputs: Vec<NetId> = (0..leaf.outputs().len())
                .map(|o| top.add_net(format!("u{placed}_o{o}")))
                .collect();
            consumed.resize(top.net_count(), false);
            top.add_instance(format!("u{placed}"), leaf.name(), &inputs, &outputs);
            pool.extend_from_slice(&outputs);
            placed += 1;
        }
        window_start = layer_pool_len;
    }

    let danglers: Vec<NetId> = pool[pi_count..]
        .iter()
        .copied()
        .filter(|n| !consumed[n.index()])
        .collect();
    if danglers.is_empty() {
        // Degenerate but possible with tiny specs: expose the last net.
        top.mark_output(*pool.last().expect("instances placed"));
    }
    for n in danglers {
        top.mark_output(n);
    }

    let mut design = Design::new();
    for leaf in leaves {
        design.add_leaf(leaf).expect("fresh design, unique flavors");
    }
    design.add_composite(top).expect("fresh design");
    design
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sized_spec_hits_the_gate_target() {
        let s = ModularDesignSpec::sized(100_000, 1);
        assert!(s.total_gates() >= 95_000 && s.total_gates() <= 100_000);
        assert_eq!(s.gates_per_module, 60);
        assert_eq!(s.flavors, 12);
        assert!(s.layers > 1);
    }

    #[test]
    fn generated_design_is_valid_and_layered() {
        let spec = ModularDesignSpec::sized(20_000, 11);
        let design = modular_design(spec);
        design.validate().unwrap();
        let top = design.composite(&spec.top_name()).unwrap();
        assert_eq!(top.instances().len(), spec.instances);
        assert!(!top.outputs().is_empty(), "unconsumed outputs become POs");
        // Depth-1 hierarchy: every instance references a leaf flavor.
        for inst in top.instances() {
            assert!(design.leaf(&inst.module).is_some(), "{}", inst.module);
        }
        // The wiring is a DAG (validate checks this via topo order) and
        // genuinely multi-layer: some instance consumes another's output.
        let pi: std::collections::HashSet<NetId> = top.inputs().iter().copied().collect();
        assert!(top
            .instances()
            .iter()
            .any(|i| i.inputs.iter().any(|n| !pi.contains(n))));
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let spec = ModularDesignSpec::sized(3_000, 42);
        let a = modular_design(spec);
        let b = modular_design(spec);
        let flat_a = a.flatten(&spec.top_name()).unwrap();
        let flat_b = b.flatten(&spec.top_name()).unwrap();
        assert_eq!(flat_a.content_hash(), flat_b.content_hash());
        let c = modular_design(ModularDesignSpec::sized(3_000, 43));
        let flat_c = c.flatten(&spec.top_name()).unwrap();
        assert_ne!(flat_a.content_hash(), flat_c.content_hash());
    }

    #[test]
    fn instantiated_gate_count_matches_spec() {
        let spec = ModularDesignSpec::sized(2_000, 5);
        let design = modular_design(spec);
        let flat = design.flatten(&spec.top_name()).unwrap();
        assert_eq!(flat.gate_count(), spec.total_gates());
    }
}
