//! Property tests: every text format round-trips random circuits with
//! function preserved (checked by exhaustive simulation on small input
//! counts).

use hfta_netlist::gen::{random_circuit, GateMix, RandomCircuitSpec};
use hfta_netlist::{bench_format, blif, hnl, sim, Design};
use hfta_testkit::{from_fn_with_shrink, prop, Rng, Strategy};

/// Small random circuits; shrinking reduces gate and input counts so a
/// failing round-trip pins to a minimal netlist.
fn small_spec() -> impl Strategy<Value = RandomCircuitSpec> {
    from_fn_with_shrink(
        |rng: &mut Rng| RandomCircuitSpec {
            inputs: rng.gen_range(2usize..7),
            gates: rng.gen_range(3usize..25),
            seed: rng.next_u64(),
            locality: 6,
            global_fanin_prob: 0.25,
            mix: if rng.next_bool() {
                GateMix::XorHeavy
            } else {
                GateMix::NandHeavy
            },
        },
        |spec: &RandomCircuitSpec| {
            let mut out = Vec::new();
            if spec.gates > 3 {
                out.push(RandomCircuitSpec {
                    gates: 3.max(spec.gates / 2),
                    ..*spec
                });
                out.push(RandomCircuitSpec {
                    gates: spec.gates - 1,
                    ..*spec
                });
            }
            if spec.inputs > 2 {
                out.push(RandomCircuitSpec {
                    inputs: spec.inputs - 1,
                    ..*spec
                });
            }
            if spec.seed != 0 {
                out.push(RandomCircuitSpec { seed: 0, ..*spec });
            }
            out
        },
    )
}

prop!(cases = 64, fn bench_round_trip(spec in small_spec()) {
    let nl = random_circuit("rt", spec);
    let text = bench_format::write(&nl);
    let parsed = bench_format::parse(&text, "rt").expect("parses");
    assert!(sim::equivalent_exhaustive(&nl, &parsed, 8).expect("simulates"));
    // Delays survive too.
    for (a, b) in nl.gates().iter().zip(parsed.gates()) {
        assert_eq!(a.delay, b.delay);
    }
});

prop!(cases = 64, fn hnl_round_trip(spec in small_spec()) {
    let nl = random_circuit("rt", spec);
    let mut design = Design::new();
    design.add_leaf(nl.clone()).expect("fresh design");
    let text = hnl::write(&design, None);
    let (parsed, _) = hnl::parse(&text).expect("parses");
    let parsed_nl = parsed.leaf("rt").expect("same module");
    assert!(sim::equivalent_exhaustive(&nl, parsed_nl, 8).expect("simulates"));
});

prop!(cases = 64, fn blif_round_trip_preserves_function(spec in small_spec()) {
    let nl = random_circuit("rt", spec);
    let text = blif::write(&nl);
    let parsed = blif::parse(&text).expect("parses");
    assert!(parsed.registers().is_empty());
    assert!(sim::equivalent_exhaustive(&nl, parsed.core(), 8).expect("simulates"));
});

// Flatten(partition(x)) ≡ x was covered elsewhere; here:
// flatten is idempotent on leaf modules.
prop!(cases = 64, fn flatten_leaf_is_identity(spec in small_spec()) {
    let nl = random_circuit("rt", spec);
    let mut design = Design::new();
    design.add_leaf(nl.clone()).expect("fresh design");
    let flat = design.flatten("rt").expect("flattens");
    assert_eq!(flat.content_hash(), nl.content_hash());
});
