//! Property tests: every text format round-trips random circuits with
//! function preserved (checked by exhaustive simulation on small input
//! counts).

use hfta_netlist::gen::{random_circuit, GateMix, RandomCircuitSpec};
use hfta_netlist::{bench_format, blif, hnl, sim, Design};
use proptest::prelude::*;

fn small_spec() -> impl Strategy<Value = RandomCircuitSpec> {
    (2usize..7, 3usize..25, any::<u64>(), prop::bool::ANY).prop_map(
        |(inputs, gates, seed, xor)| RandomCircuitSpec {
            inputs,
            gates,
            seed,
            locality: 6,
            global_fanin_prob: 0.25,
            mix: if xor { GateMix::XorHeavy } else { GateMix::NandHeavy },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bench_round_trip(spec in small_spec()) {
        let nl = random_circuit("rt", spec);
        let text = bench_format::write(&nl);
        let parsed = bench_format::parse(&text, "rt").expect("parses");
        prop_assert!(sim::equivalent_exhaustive(&nl, &parsed, 8).expect("simulates"));
        // Delays survive too.
        for (a, b) in nl.gates().iter().zip(parsed.gates()) {
            prop_assert_eq!(a.delay, b.delay);
        }
    }

    #[test]
    fn hnl_round_trip(spec in small_spec()) {
        let nl = random_circuit("rt", spec);
        let mut design = Design::new();
        design.add_leaf(nl.clone()).expect("fresh design");
        let text = hnl::write(&design, None);
        let (parsed, _) = hnl::parse(&text).expect("parses");
        let parsed_nl = parsed.leaf("rt").expect("same module");
        prop_assert!(sim::equivalent_exhaustive(&nl, parsed_nl, 8).expect("simulates"));
    }

    #[test]
    fn blif_round_trip_preserves_function(spec in small_spec()) {
        let nl = random_circuit("rt", spec);
        let text = blif::write(&nl);
        let parsed = blif::parse(&text).expect("parses");
        prop_assert!(parsed.registers().is_empty());
        prop_assert!(
            sim::equivalent_exhaustive(&nl, parsed.core(), 8).expect("simulates")
        );
    }

    /// Flatten(partition(x)) ≡ x was covered elsewhere; here:
    /// flatten is idempotent on leaf modules.
    #[test]
    fn flatten_leaf_is_identity(spec in small_spec()) {
        let nl = random_circuit("rt", spec);
        let mut design = Design::new();
        design.add_leaf(nl.clone()).expect("fresh design");
        let flat = design.flatten("rt").expect("flattens");
        prop_assert_eq!(flat.content_hash(), nl.content_hash());
    }
}
