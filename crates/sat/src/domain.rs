//! Per-query variable domains for a shared incremental solver.
//!
//! HFTA's shared-solver mode encodes an entire module into one
//! incremental SAT instance and answers each per-cone stability query
//! restricted to the variable domain of that cone's transitive fanin:
//! the search runs exactly as an unrestricted solve would, but may
//! *stop early* — the moment every domain variable is assigned at a
//! conflict-free propagation fixpoint (with every assumption
//! enqueued), the query is declared `Sat` without extending the
//! assignment over the rest of the module. A [`Domain`] is that
//! active-variable set: a flat, deduplicated list of variables
//! (cache-friendly to walk) plus a bitset for O(1) membership tests.
//!
//! # Soundness contract
//!
//! The early exit is sound *and* complete for formulas that are
//! **definitional extensions** over a domain `D`:
//!
//! * `D` is *definition-closed*: for every non-input variable in `D`,
//!   the variables of its defining (Tseitin) clauses are also in `D`.
//! * Every clause not fully contained in `D` is either part of the
//!   gate definition of a variable outside `D`, or implied by the
//!   formula (e.g. a learnt clause).
//!
//! Under that contract, a conflict-free fixpoint that assigns all of
//! `D` extends to a total model even when out-of-domain variables sit
//! (decided or propagated) on the trail: keep the trail's values on
//! `D`'s inputs, assign the remaining free inputs arbitrarily, and
//! evaluate every defined variable from its definition in topological
//! order. The rebuilt model agrees with the trail on `D` by induction
//! over `D`'s definitions, satisfies every gate-definition clause by
//! construction, and satisfies every learnt clause because learnt
//! clauses are implied. An `Unsat` answer is exact without any
//! argument, because the full formula is a conservative extension of
//! the in-domain sub-formula. See `DESIGN.md` ("Why domain-restricted
//! sharing is sound").
//!
//! [`crate::CnfBuilder::domain_of`] constructs domains satisfying the
//! contract for formulas built purely from its gate primitives.

use crate::types::Var;

/// A growable bitset over solver variables.
#[derive(Debug, Clone, Default)]
pub struct VarSet {
    words: Vec<u64>,
}

impl VarSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> VarSet {
        VarSet::default()
    }

    /// Inserts `v`, growing the backing store as needed. Returns
    /// `true` when `v` was not already present.
    pub fn insert(&mut self, v: Var) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Membership test; variables beyond the backing store are absent.
    #[must_use]
    pub fn contains(&self, v: Var) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Removes every element but keeps the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

/// The active-variable set of one domain-restricted query: a flat,
/// deduplicated variable list (the order the builder discovered them
/// in) plus a bitset for membership tests.
#[derive(Debug, Clone)]
pub struct Domain {
    vars: Vec<Var>,
    set: VarSet,
}

impl Domain {
    /// Builds a domain from a variable list, dropping duplicates while
    /// preserving first-occurrence order.
    #[must_use]
    pub fn from_vars(vars: Vec<Var>) -> Domain {
        let mut set = VarSet::new();
        let mut uniq = Vec::with_capacity(vars.len());
        for v in vars {
            if set.insert(v) {
                uniq.push(v);
            }
        }
        Domain { vars: uniq, set }
    }

    /// The domain's variables, deduplicated, in insertion order.
    #[must_use]
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of variables in the domain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the domain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, v: Var) -> bool {
        self.set.contains(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varset_insert_contains_clear() {
        let mut s = VarSet::new();
        assert!(!s.contains(Var::from_index(130)));
        assert!(s.insert(Var::from_index(130)));
        assert!(!s.insert(Var::from_index(130)));
        assert!(s.contains(Var::from_index(130)));
        assert!(!s.contains(Var::from_index(129)));
        s.clear();
        assert!(!s.contains(Var::from_index(130)));
    }

    #[test]
    fn domain_dedups_preserving_order() {
        let d = Domain::from_vars(vec![
            Var::from_index(5),
            Var::from_index(2),
            Var::from_index(5),
            Var::from_index(9),
            Var::from_index(2),
        ]);
        assert_eq!(
            d.vars(),
            &[Var::from_index(5), Var::from_index(2), Var::from_index(9)]
        );
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!(d.contains(Var::from_index(9)));
        assert!(!d.contains(Var::from_index(3)));
    }
}
