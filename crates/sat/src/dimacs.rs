//! DIMACS CNF reading and writing.
//!
//! The standard exchange format for SAT instances:
//!
//! ```text
//! c a comment
//! p cnf 3 2
//! 1 -2 0
//! 2 3 0
//! ```

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::{Lit, Solver, Var};

/// Errors from [`parse`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseDimacsError {
    /// The `p cnf` header line is missing or malformed.
    BadHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A token could not be read as a literal.
    BadLiteral {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A literal references a variable beyond the header's count.
    VariableOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The out-of-range variable (1-based, as written).
        var: i64,
    },
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::BadHeader { line } => {
                write!(f, "missing or malformed `p cnf` header at line {line}")
            }
            ParseDimacsError::BadLiteral { line, token } => {
                write!(f, "bad literal `{token}` at line {line}")
            }
            ParseDimacsError::VariableOutOfRange { line, var } => {
                write!(f, "variable {var} out of declared range at line {line}")
            }
        }
    }
}

impl Error for ParseDimacsError {}

/// Parses DIMACS CNF text into a fresh [`Solver`].
///
/// # Errors
///
/// Returns a [`ParseDimacsError`] on malformed input.
pub fn parse(text: &str) -> Result<Solver, ParseDimacsError> {
    let mut solver = Solver::new();
    let mut declared_vars: Option<usize> = None;
    let mut clause: Vec<Lit> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let mut it = line.split_whitespace();
            let _p = it.next();
            if it.next() != Some("cnf") {
                return Err(ParseDimacsError::BadHeader { line: lineno });
            }
            let nv: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or(ParseDimacsError::BadHeader { line: lineno })?;
            let _nc = it.next();
            for _ in 0..nv {
                solver.new_var();
            }
            declared_vars = Some(nv);
            continue;
        }
        let nv = declared_vars.ok_or(ParseDimacsError::BadHeader { line: lineno })?;
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| ParseDimacsError::BadLiteral {
                line: lineno,
                token: tok.to_string(),
            })?;
            if v == 0 {
                solver.add_clause(&clause);
                clause.clear();
            } else {
                let var_index = v.unsigned_abs() as usize - 1;
                if var_index >= nv {
                    return Err(ParseDimacsError::VariableOutOfRange {
                        line: lineno,
                        var: v,
                    });
                }
                let var = Var::from_index(var_index);
                clause.push(var.lit(v > 0));
            }
        }
    }
    if !clause.is_empty() {
        solver.add_clause(&clause);
    }
    Ok(solver)
}

/// Serializes a clause set to DIMACS CNF text.
///
/// `num_vars` is the declared variable count; clauses are slices of
/// literals.
#[must_use]
pub fn write(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "p cnf {} {}", num_vars, clauses.len());
    for c in clauses {
        for &l in c {
            let v = l.var().index() + 1;
            if l.is_positive() {
                let _ = write!(s, "{v} ");
            } else {
                let _ = write!(s, "-{v} ");
            }
        }
        let _ = writeln!(s, "0");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SatResult;

    #[test]
    fn parse_and_solve() {
        let text = "c demo\np cnf 3 3\n1 -2 0\n2 3 0\n-1 0\n";
        let mut s = parse(text).unwrap();
        assert_eq!(s.num_vars(), 3);
        assert_eq!(s.solve(), SatResult::Sat);
        // -1 forces x1 false; 1 -2 forces x2 false; 2 3 forces x3 true.
        assert_eq!(s.value(Var::from_index(0)), Some(false));
        assert_eq!(s.value(Var::from_index(1)), Some(false));
        assert_eq!(s.value(Var::from_index(2)), Some(true));
    }

    #[test]
    fn parse_unsat() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let mut s = parse(text).unwrap();
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn clause_spanning_lines() {
        let text = "p cnf 2 1\n1\n2 0\n";
        let mut s = parse(text).unwrap();
        assert_eq!(s.num_clauses(), 1);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(
            parse("1 2 0\n"),
            Err(ParseDimacsError::BadHeader { line: 1 })
        ));
    }

    #[test]
    fn bad_literal_rejected() {
        assert!(matches!(
            parse("p cnf 2 1\n1 x 0\n"),
            Err(ParseDimacsError::BadLiteral { line: 2, .. })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            parse("p cnf 1 1\n2 0\n"),
            Err(ParseDimacsError::VariableOutOfRange { line: 2, var: 2 })
        ));
    }

    #[test]
    fn write_round_trip() {
        let v: Vec<Var> = (0..3).map(Var::from_index).collect();
        let clauses = vec![
            vec![v[0].positive(), v[1].negative()],
            vec![v[1].positive(), v[2].positive()],
        ];
        let text = write(3, &clauses);
        let mut s = parse(&text).unwrap();
        assert_eq!(s.num_vars(), 3);
        assert_eq!(s.num_clauses(), 2);
        assert_eq!(s.solve(), SatResult::Sat);
    }
}
