//! A CDCL SAT solver built for HFTA's functional timing analysis.
//!
//! Functional (false-path-aware) timing analysis reduces "is this output
//! stable by time *t*?" to a Boolean tautology check, which this crate
//! decides by refutation: the stability condition's complement is
//! encoded to CNF and handed to [`Solver`]. The solver is a
//! self-contained conflict-driven clause-learning implementation:
//!
//! * two-literal watching for unit propagation,
//! * first-UIP conflict analysis with recursive clause minimization,
//! * exponential VSIDS decision heuristic with phase saving,
//! * Luby restarts and learnt-clause database reduction,
//! * incremental solving under assumptions ([`Solver::solve_with`]).
//!
//! [`CnfBuilder`] provides Tseitin-style encodings of the gate
//! primitives used by the timing engine, and [`dimacs`] reads/writes the
//! standard DIMACS CNF exchange format.
//!
//! # Example
//!
//! ```
//! use hfta_sat::{Solver, SatResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[a.positive(), b.positive()]);
//! solver.add_clause(&[a.negative()]);
//! match solver.solve() {
//!     SatResult::Sat => assert_eq!(solver.value(b), Some(true)),
//!     SatResult::Unsat => unreachable!("formula is satisfiable"),
//! }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
pub mod dimacs;
mod domain;
mod simplify;
mod solver;
mod types;

pub use cnf::CnfBuilder;
pub use domain::{Domain, VarSet};
pub use solver::{
    BudgetExhausted, BudgetedSatResult, SatResult, SolveBudget, SolveEpisode, Solver, SolverStats,
};
pub use types::{Lit, Var};
