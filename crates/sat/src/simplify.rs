//! Between-query inprocessing: subsumption and self-subsuming
//! resolution over the learnt-clause database.
//!
//! A long-lived shared solver (see [`crate::Domain`]) accumulates
//! learnt clauses across thousands of stability queries. Many become
//! redundant: satisfied outright by level-0 units, duplicated or
//! subsumed by stronger later learnings, or carrying literals that a
//! sibling clause can resolve away. [`Solver::inprocess`] runs one
//! bounded pass between queries:
//!
//! * learnt clauses satisfied by a level-0 assignment are deleted;
//! * level-0-false literals are stripped (strengthening by units);
//! * a learnt clause subsumed by another learnt clause is deleted;
//! * self-subsuming resolution removes one literal per clause per
//!   pass (`C = A ∨ l`, `D ⊇ A ∨ ¬l` → drop `¬l` from `D`; at most
//!   one removal per clause per pass, because two removals justified
//!   against the *original* clause need not be jointly sound).
//!
//! The pass works over a flat literal arena with per-literal
//! occurrence lists and 64-bit variable signatures (a subset test
//! prefilter that is sign-insensitive, so it also covers the flipped
//! literal of self-subsuming resolution). Original (problem) clauses
//! are never touched, reason clauses of current level-0 assignments
//! are skipped, and every derived clause is implied by the formula —
//! so inprocessing never changes any future verdict, only the work to
//! reach it. Counters land in
//! [`SolverStats::clauses_subsumed`](crate::SolverStats) and
//! [`SolverStats::clauses_strengthened`](crate::SolverStats).

use crate::solver::{LBool, Solver};
use crate::{Lit, Var};

/// One learnt clause's slice of the flat arena.
struct Entry {
    start: usize,
    len: usize,
    /// Index into `Solver::clauses`.
    cidx: u32,
    /// OR of `1 << (var % 64)` over the literals: `C ⊆ D` implies
    /// `sig(C) & !sig(D) == 0`. Variable-based, so the test also
    /// prefilters the one-flipped-literal case.
    sig: u64,
    dead: bool,
    /// Literal to remove (self-subsuming resolution), at most one per
    /// pass.
    remove: Option<Lit>,
    /// Whether level-0-false literals were stripped on arena entry.
    unit_stripped: bool,
}

fn var_sig(v: Var) -> u64 {
    1u64 << (v.index() % 64)
}

impl Solver {
    /// Runs one inprocessing pass over the learnt-clause database:
    /// deletes learnt clauses satisfied at level 0 or subsumed by
    /// another learnt clause, strips level-0-false literals, and
    /// applies self-subsuming resolution (one literal removal per
    /// clause per pass). Returns
    /// `(clauses deleted, clauses strengthened)`.
    ///
    /// Every transformation replaces a clause with one implied by the
    /// formula, so no future verdict changes — only the work to reach
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if called mid-solve (the solver must be at decision
    /// level 0, as it always is between `solve` calls).
    pub fn inprocess(&mut self) -> (u64, u64) {
        assert!(
            self.trail_lim.is_empty(),
            "inprocessing runs at level 0, between queries"
        );
        if !self.ok {
            return (0, 0);
        }
        self.stats.inprocessings += 1;
        let mut subsumed = 0u64;
        let mut strengthened = 0u64;

        // Phase 1: collect candidates into the flat arena. Skip
        // non-learnt, deleted, and locked clauses (a clause that is the
        // reason of an assigned watch variable may be dereferenced by a
        // later conflict analysis). Clauses satisfied at level 0 are
        // deleted outright; level-0-false literals are stripped.
        let mut arena: Vec<Lit> = Vec::new();
        let mut entries: Vec<Entry> = Vec::new();
        for cidx in 0..self.clauses.len() {
            let c = &self.clauses[cidx];
            if !c.learnt || c.deleted || c.lits.len() < 2 {
                continue;
            }
            let locked = c.lits.iter().take(2).any(|l| {
                let v = l.var().index();
                self.reason[v] == Some(cidx as u32) && self.assign[v] != LBool::Undef
            });
            if locked {
                continue;
            }
            if c.lits.iter().any(|&l| self.lit_value(l) == LBool::True) {
                self.clauses[cidx].deleted = true;
                self.stats.learnt_clauses = self.stats.learnt_clauses.saturating_sub(1);
                subsumed += 1;
                continue;
            }
            let start = arena.len();
            let mut sig = 0u64;
            let mut stripped = false;
            for &l in &c.lits {
                if self.lit_value(l) == LBool::False {
                    stripped = true;
                } else {
                    arena.push(l);
                    sig |= var_sig(l.var());
                }
            }
            entries.push(Entry {
                start,
                len: arena.len() - start,
                cidx: u32::try_from(cidx).expect("clause count overflow"),
                sig,
                dead: false,
                remove: None,
                unit_stripped: stripped,
            });
        }

        // Occurrence lists over the arena, indexed by literal code.
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); 2 * self.num_vars()];
        for (ei, e) in entries.iter().enumerate() {
            for &l in &arena[e.start..e.start + e.len] {
                occ[l.code()].push(u32::try_from(ei).expect("entry count overflow"));
            }
        }

        // Phase 2: scan in ascending-length order (short clauses
        // subsume long ones; ties broken by arena order for
        // determinism). All checks run against the original arena
        // content — mutations are applied in phase 3.
        let mut order: Vec<u32> = (0..entries.len() as u32).collect();
        order.sort_by_key(|&i| (entries[i as usize].len, i));
        let clause_of = |e: &Entry| e.start..e.start + e.len;
        for &ci in &order {
            let ci = ci as usize;
            if entries[ci].dead {
                continue;
            }
            let (c_start, c_len, c_sig) = (entries[ci].start, entries[ci].len, entries[ci].sig);
            let c_lits = c_start..c_start + c_len;
            // Pick the literal with the fewest occurrences to scan.
            let pivot = arena[c_lits.clone()]
                .iter()
                .copied()
                .min_by_key(|l| occ[l.code()].len())
                .expect("non-empty clause");
            // Forward subsumption: C ⊆ D deletes D.
            for &di in &occ[pivot.code()] {
                let di = di as usize;
                if di == ci || entries[di].dead {
                    continue;
                }
                let d = &entries[di];
                if d.len < c_len || c_sig & !d.sig != 0 {
                    continue;
                }
                let d_slice = &arena[clause_of(d)];
                if arena[c_lits.clone()].iter().all(|l| d_slice.contains(l)) {
                    entries[di].dead = true;
                }
            }
            // Self-subsuming resolution: C = A ∨ l, D ⊇ A ∨ ¬l → D
            // loses ¬l. One removal per D per pass.
            for li in c_lits.clone() {
                let l = arena[li];
                for &di in &occ[(!l).code()] {
                    let di = di as usize;
                    if di == ci || entries[di].dead || entries[di].remove.is_some() {
                        continue;
                    }
                    let d = &entries[di];
                    if d.len < c_len || c_sig & !d.sig != 0 {
                        continue;
                    }
                    let d_slice = &arena[clause_of(d)];
                    let rest_subset = arena[c_lits.clone()]
                        .iter()
                        .all(|&q| q == l || d_slice.contains(&q));
                    if rest_subset {
                        entries[di].remove = Some(!l);
                    }
                }
            }
        }

        // Phase 3: apply. Deletions first, then strengthened
        // replacements (delete old + attach new), then unit
        // propagation for any strengthened-to-unit clause.
        let mut units: Vec<Lit> = Vec::new();
        for e in &entries {
            let cidx = e.cidx as usize;
            if e.dead {
                self.clauses[cidx].deleted = true;
                self.stats.learnt_clauses = self.stats.learnt_clauses.saturating_sub(1);
                subsumed += 1;
                continue;
            }
            if e.remove.is_none() && !e.unit_stripped {
                continue;
            }
            let new_lits: Vec<Lit> = arena[e.start..e.start + e.len]
                .iter()
                .copied()
                .filter(|&l| Some(l) != e.remove)
                .collect();
            self.clauses[cidx].deleted = true;
            self.stats.learnt_clauses = self.stats.learnt_clauses.saturating_sub(1);
            strengthened += 1;
            match new_lits.len() {
                0 => self.ok = false,
                1 => units.push(new_lits[0]),
                _ => {
                    self.attach_clause(new_lits, true);
                }
            }
        }
        for l in units {
            match self.lit_value(l) {
                LBool::True => {}
                LBool::False => self.ok = false,
                LBool::Undef => {
                    self.unchecked_enqueue(l, None);
                }
            }
        }
        if self.ok && self.propagate().is_some() {
            self.ok = false;
        }
        self.stats.clauses_subsumed += subsumed;
        self.stats.clauses_strengthened += strengthened;
        (subsumed, strengthened)
    }
}

#[cfg(test)]
mod tests {
    use crate::{SatResult, Solver};

    fn lits(codes: &[i32]) -> Vec<crate::Lit> {
        codes
            .iter()
            .map(|&c| {
                let v = crate::Var::from_index((c.unsigned_abs() - 1) as usize);
                v.lit(c > 0)
            })
            .collect()
    }

    /// Force-learn a clause by attaching it as learnt directly
    /// (`attach_clause` maintains the learnt counter).
    fn learn(solver: &mut Solver, codes: &[i32]) {
        solver.attach_clause(lits(codes), true);
    }

    #[test]
    fn subsumption_deletes_weaker_learnt() {
        let mut s = Solver::new();
        for _ in 0..4 {
            s.new_var();
        }
        learn(&mut s, &[1, 2]);
        learn(&mut s, &[1, 2, 3]);
        learn(&mut s, &[1, 2, 4]);
        let (subsumed, strengthened) = s.inprocess();
        assert_eq!(subsumed, 2);
        assert_eq!(strengthened, 0);
        assert_eq!(s.stats().learnt_clauses, 1);
        assert_eq!(s.stats().inprocessings, 1);
    }

    #[test]
    fn self_subsuming_resolution_strengthens() {
        let mut s = Solver::new();
        for _ in 0..3 {
            s.new_var();
        }
        // C = (1 ∨ 2), D = (¬1 ∨ 2 ∨ 3): resolving on 1 shows
        // D can lose ¬1, leaving (2 ∨ 3).
        learn(&mut s, &[1, 2]);
        learn(&mut s, &[-1, 2, 3]);
        let (subsumed, strengthened) = s.inprocess();
        assert_eq!(subsumed, 0);
        assert_eq!(strengthened, 1);
        assert_eq!(s.stats().learnt_clauses, 2);
        // Behaviour is unchanged: ¬2 ∧ ¬3 conflicts with the database
        // both before and after strengthening, and a free assignment
        // still exists.
        assert_eq!(s.solve_with(&lits(&[-2, -3])), SatResult::Unsat);
        assert_eq!(s.solve_with(&lits(&[2])), SatResult::Sat);
    }

    #[test]
    fn satisfied_learnts_are_dropped_and_false_lits_stripped() {
        let mut s = Solver::new();
        for _ in 0..4 {
            s.new_var();
        }
        s.add_clause(&lits(&[1])); // level-0 unit: 1 = true
        learn(&mut s, &[1, 2]); // satisfied → deleted
        learn(&mut s, &[-1, 3, 4]); // ¬1 false → stripped to (3 ∨ 4)
        let (subsumed, strengthened) = s.inprocess();
        assert_eq!(subsumed, 1);
        assert_eq!(strengthened, 1);
        assert_eq!(s.stats().learnt_clauses, 1);
    }

    #[test]
    fn inprocessing_preserves_verdicts() {
        // A small pigeonhole-ish formula: run queries, inprocess,
        // re-run the same queries — verdicts must match.
        let mut s = Solver::new();
        let vars: Vec<_> = (0..6).map(|_| s.new_var()).collect();
        // pigeons 0..2 into holes 0..1: p_i_h = vars[i*2+h]
        for i in 0..3 {
            let c: Vec<_> = (0..2).map(|h| vars[i * 2 + h].positive()).collect();
            s.add_clause(&c);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[vars[i * 2 + h].negative(), vars[j * 2 + h].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        // Solver is permanently unsat; inprocess must be a no-op.
        let before = *s.stats();
        assert_eq!(s.inprocess(), (0, 0));
        assert_eq!(s.stats().inprocessings, before.inprocessings);
    }

    #[test]
    fn verdicts_match_with_and_without_inprocessing() {
        // Same formula solved twice: one solver inprocesses between
        // queries, the other doesn't. Every verdict must agree.
        let build = || {
            let mut s = Solver::new();
            let v: Vec<_> = (0..8).map(|_| s.new_var()).collect();
            // A chain of implications plus some xor-ish constraints.
            for w in v.windows(2) {
                s.add_clause(&[w[0].negative(), w[1].positive()]);
            }
            s.add_clause(&[v[0].positive(), v[7].positive()]);
            s.add_clause(&[v[3].negative(), v[5].negative(), v[6].positive()]);
            (s, v)
        };
        let (mut plain, pv) = build();
        let (mut inp, iv) = build();
        for i in 0..8 {
            let a = [pv[i].lit(i % 2 == 0)];
            let b = [iv[i].lit(i % 2 == 0)];
            let r1 = plain.solve_with(&a);
            inp.inprocess();
            let r2 = inp.solve_with(&b);
            assert_eq!(r1, r2, "query {i} diverged");
        }
    }
}
