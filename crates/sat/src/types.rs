use std::fmt;
use std::ops::Not;

/// A propositional variable.
///
/// Variables are dense indices created by
/// [`Solver::new_var`](crate::Solver::new_var) or
/// [`CnfBuilder::new_var`](crate::CnfBuilder::new_var).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Returns the dense index of this variable.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> Var {
        Var(u32::try_from(index).expect("variable index overflow"))
    }

    /// The positive literal of this variable.
    #[must_use]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[must_use]
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given polarity
    /// (`true` ⇒ positive).
    #[must_use]
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | sign` (sign bit set ⇒ negated), the classic
/// MiniSat layout, so a literal indexes watch lists directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The variable underlying this literal.
    #[must_use]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if this is a positive (unnegated) literal.
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code of the literal (`var << 1 | sign`), usable as an
    /// array index.
    #[must_use]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::code`].
    ///
    /// # Panics
    ///
    /// Panics if `code` does not fit in `u32`.
    #[must_use]
    pub fn from_code(code: usize) -> Lit {
        Lit(u32::try_from(code).expect("literal code overflow"))
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var::from_index(3);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn codes_round_trip() {
        let l = Var::from_index(5).negative();
        assert_eq!(Lit::from_code(l.code()), l);
        assert_eq!(l.code(), 11);
    }

    #[test]
    fn display() {
        let v = Var::from_index(0);
        assert_eq!(v.positive().to_string(), "x1");
        assert_eq!(v.negative().to_string(), "!x1");
    }
}
